"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` needs PEP 660 (which requires wheel); offline boxes can
use `python setup.py develop` instead, which only needs setuptools.
"""
from setuptools import setup

setup()
