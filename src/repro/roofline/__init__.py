"""Analytical roofline fast path: closed-form energy/delay/EDPSE prediction.

``repro.roofline`` approximates what a full discrete-event simulation would
report for one (workload spec, GPU configuration) pair — instruction mix,
memory-transaction counts, interconnect traffic, delay, and Eq.-4 energy —
without running the engine.  Predictions price through the *real*
:class:`~repro.core.energy_model.EnergyModel`, so DVFS V²/f scaling across
operating points is exact even where the predicted counters are approximate.

The package has three faces:

* :mod:`repro.roofline.model` — the predictor itself;
* :mod:`repro.roofline.calibration` — fits the model's free scalars against
  the golden simulations and validates the committed error bound
  (``ROOFLINE_bounds.json``, enforced by CI);
* :mod:`repro.roofline.screen` — grid screening: score every candidate
  analytically, pick the top-k worth simulating, and record the
  screened-vs-simulated disposition.  Screening never alters a simulated
  result or a cache key — only which grid points get simulated.

See ``docs/MODELING.md`` (roofline section) for the model form and the
calibration procedure.
"""

from repro.roofline.calibration import (
    DEFAULT_CALIBRATION,
    RooflineCalibration,
    fit_calibration,
    validate_calibration,
)
from repro.roofline.model import RooflinePredictor, RooflinePrediction
from repro.roofline.screen import ScreenDisposition, screen_operating_points

__all__ = [
    "DEFAULT_CALIBRATION",
    "RooflineCalibration",
    "RooflinePredictor",
    "RooflinePrediction",
    "ScreenDisposition",
    "fit_calibration",
    "screen_operating_points",
    "validate_calibration",
]
