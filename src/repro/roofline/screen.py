"""Grid screening: score every candidate analytically, simulate the top-k.

The screen is a *filter*, never a substitute: the selected candidates go
through the unmodified simulation path with the unmodified configurations,
so every simulated result and every cache key is bit-identical to what the
exhaustive sweep would have produced for the same points.  The only thing
screening changes is which points get simulated at all — and the
:class:`ScreenDisposition` records exactly that choice, so a manifest reader
can tell a screened sweep's gaps from missing data.

Ranking goes through :mod:`repro.dvfs.selection`, the same deterministic
tie-break the exact search uses, so "top-k plus guard" is well defined even
when predictions tie.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dvfs.config import ClockDomain
from repro.dvfs.operating_point import K40_VF_CURVE, OperatingPoint, VfCurve
from repro.dvfs.selection import top_candidates
from repro.errors import ExperimentError
from repro.gpu.config import GpuConfig
from repro.workloads.spec import WorkloadSpec

#: Screen modes the sweep layers accept (``None`` meaning exact/exhaustive).
SCREEN_MODES = ("roofline",)


def validate_screen(screen: str | None) -> str | None:
    """Normalize and validate a ``screen=`` argument (None passes through)."""
    if screen is None:
        return None
    if screen not in SCREEN_MODES:
        raise ExperimentError(
            f"screen mode must be one of {SCREEN_MODES} or None, got {screen!r}"
        )
    return screen


@dataclass(frozen=True)
class ScreenEntry:
    """One analytically scored grid candidate."""

    label: str
    frequency_hz: float
    predicted_score: float
    #: The roofline bound that set the predicted delay.
    bound: str
    #: True when the screen selected this candidate for simulation.
    simulated: bool

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "frequency_hz": self.frequency_hz,
            "predicted_score": self.predicted_score,
            "bound": self.bound,
            "simulated": self.simulated,
        }


@dataclass(frozen=True)
class ScreenDisposition:
    """Which grid points a screened sweep simulated, and why.

    ``entries`` is ordered by predicted rank (best first), so the first
    ``simulated_points`` entries are exactly the simulated set.  When the
    roofline model does not cover the run (``fallback`` is set), the screen
    degrades to exhaustive: every point is simulated, nothing is scored,
    and the reason is recorded — mirroring the sharded engine's recorded
    fallback to the single-process path.
    """

    mode: str
    metric: str
    top_k: int
    guard: int
    entries: tuple[ScreenEntry, ...]
    #: Why screening was skipped (``None`` when the screen actually ranked):
    #: ``"idle"`` — idle states configured, but idle goldens are excluded
    #: from the roofline calibration; ``"phase-schedule"`` — the workload
    #: has a phase schedule the closed-form counter model cannot represent.
    fallback: str | None = None

    @property
    def scored_points(self) -> int:
        return len(self.entries)

    @property
    def simulated_points(self) -> int:
        return sum(1 for entry in self.entries if entry.simulated)

    @property
    def skipped_points(self) -> int:
        return self.scored_points - self.simulated_points

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "metric": self.metric,
            "top_k": self.top_k,
            "guard": self.guard,
            "scored_points": self.scored_points,
            "simulated_points": self.simulated_points,
            # Only present on fallback runs, so screened manifests written
            # before this field existed parse (and serialize) identically.
            **({} if self.fallback is None else {"fallback": self.fallback}),
            "entries": [entry.to_json() for entry in self.entries],
        }

    @classmethod
    def from_json(cls, data: dict) -> "ScreenDisposition":
        return cls(
            mode=data["mode"],
            metric=data["metric"],
            top_k=data["top_k"],
            guard=data["guard"],
            fallback=data.get("fallback"),
            entries=tuple(
                ScreenEntry(
                    label=entry["label"],
                    frequency_hz=entry["frequency_hz"],
                    predicted_score=entry["predicted_score"],
                    bound=entry.get("bound", ""),
                    simulated=entry["simulated"],
                )
                for entry in data["entries"]
            ),
        )


def screen_fallback_reason(spec: WorkloadSpec, config: GpuConfig) -> str | None:
    """Why the roofline screen must not prune this (spec, config) — or None.

    The calibration excludes the idle goldens (sleep-state pricing is not in
    the closed-form model), and phase-scheduled workloads have per-kernel
    instruction mixes the expectation-counter model cannot represent.  In
    either case a screened sweep silently pruning on garbage scores would be
    a correctness bug, so the screen degrades to exhaustive instead.
    """
    if config.idle is not None:
        return "idle"
    if spec.phases is not None:
        return "phase-schedule"
    return None


def screen_operating_points(
    predictor,
    spec: WorkloadSpec,
    config: GpuConfig,
    points: tuple[OperatingPoint, ...],
    curve: VfCurve = K40_VF_CURVE,
    domain: ClockDomain = ClockDomain.CORE,
    metric: str = "edp",
    top_k: int = 3,
    guard: int = 1,
    expand=None,
) -> tuple[tuple[OperatingPoint, ...], ScreenDisposition]:
    """Rank ``points`` analytically; select the top ``top_k + guard``.

    Returns the selected points in *grid order* (so the caller's simulation
    pairs enumerate identically to an exhaustive sweep restricted to those
    points) plus the full ranked disposition.

    ``expand`` maps a point to the pointed :class:`GpuConfig` that would be
    simulated for it; it MUST be the same expansion the caller's exact path
    uses, so the screened subset shares the exact path's cache keys.  The
    default is :func:`~repro.dvfs.sweetspot.with_operating_point` on
    ``domain`` (the sweet-spot search's expansion).
    """
    if expand is None:
        from repro.dvfs.sweetspot import with_operating_point

        def expand(point):
            return with_operating_point(config, point, curve, domain=domain)

    if top_k < 1:
        raise ExperimentError(f"screen top-k must be >= 1, got {top_k}")
    if guard < 0:
        raise ExperimentError(f"screen guard must be >= 0, got {guard}")

    reason = screen_fallback_reason(spec, config)
    if reason is not None:
        entries = tuple(
            ScreenEntry(
                label=point.label(),
                frequency_hz=point.frequency_hz,
                predicted_score=0.0,
                bound="",
                simulated=True,
            )
            for point in points
        )
        disposition = ScreenDisposition(
            mode="roofline",
            metric=metric,
            top_k=top_k,
            guard=guard,
            entries=entries,
            fallback=reason,
        )
        return tuple(points), disposition

    predictions = {
        point: predictor.predict(spec, expand(point)) for point in points
    }
    budget = min(len(points), top_k + guard)
    ranked = top_candidates(
        list(points),
        len(points),
        score=lambda point: predictions[point].score(metric),
        tie_key=lambda point: (point.frequency_hz, point.label()),
    )
    selected = set(ranked[:budget])
    entries = tuple(
        ScreenEntry(
            label=point.label(),
            frequency_hz=point.frequency_hz,
            predicted_score=predictions[point].score(metric),
            bound=predictions[point].bound,
            simulated=point in selected,
        )
        for point in ranked
    )
    disposition = ScreenDisposition(
        mode="roofline",
        metric=metric,
        top_k=top_k,
        guard=guard,
        entries=entries,
    )
    chosen = tuple(point for point in points if point in selected)
    return chosen, disposition
