"""The roofline model's free parameters and their committed defaults.

Kept in a leaf module so :mod:`repro.roofline.model` (which consumes the
parameters) and :mod:`repro.roofline.calibration` (which fits them against
simulation) never import each other.

The committed defaults are the output of
``python -m repro.tools.roofline_bounds --fit`` over the golden spec x
config pairs (see ``ROOFLINE_bounds.json``); physically they are hit
probabilities and overlap factors, so every value is a bounded, unitless
scalar.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ConfigError


@dataclass(frozen=True)
class RooflineCalibration:
    """Free scalars of the roofline predictor.

    Hit probabilities are expectations over the simulator's deterministic
    but spec-dependent access streams; the two delay scalars absorb what
    the closed form cannot see (queueing, barrier skew, partial overlap).
    """

    #: L1 hit probability of hot-block (reuse-class) loads.
    l1_hit_reuse: float = 0.9
    #: L2 hit probability of streaming loads (compulsory-miss dominated;
    #: fitted).
    l2_hit_stream: float = 0.05
    #: L2 hit probability of halo loads (a neighbour recently streamed
    #: them; fitted).
    l2_hit_halo: float = 0.5
    #: Ceiling on any modeled L2 hit probability.
    l2_hit_cap: float = 0.95
    #: Shared-region L2 hit probability per unit of L2-capacity coverage
    #: (``total_l2_bytes / shared_footprint_bytes``), clamped to the cap.
    l2_shared_coverage: float = 0.5
    #: Fraction of local store write-allocates whose dirty line eventually
    #: writes back to DRAM (fitted; the tiny goldens mostly fit in L2).
    writeback_fraction: float = 0.1
    #: Share of the on-module L2 pipeline latency a store charges the warp.
    store_latency_weight: float = 1.0
    #: With per-GPM core clocks, how much the chip's finish time leans on
    #: the slowest module (0 = mean of the modules, 1 = pure straggler;
    #: fitted).
    straggler_weight: float = 0.65
    #: Effective memory-level parallelism of the warp body's software
    #: pipeline (depth 2 in the engine).
    pipeline_overlap: float = 2.0
    #: Global multiplier on the latency-chain delay bound (fitted).
    latency_scale: float = 0.7174

    def __post_init__(self) -> None:
        for name in (
            "l1_hit_reuse",
            "l2_hit_stream",
            "l2_hit_halo",
            "l2_hit_cap",
            "l2_shared_coverage",
            "writeback_fraction",
            "straggler_weight",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"calibration {name!r} is a probability in [0, 1];"
                    f" got {value!r}"
                )
        for name in ("store_latency_weight", "pipeline_overlap", "latency_scale"):
            value = getattr(self, name)
            if value <= 0.0:
                raise ConfigError(
                    f"calibration {name!r} must be positive, got {value!r}"
                )

    def to_json(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json(cls, data: dict[str, float]) -> "RooflineCalibration":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown calibration parameters: {sorted(unknown)}"
            )
        return cls(**data)


#: The committed calibration every production prediction uses.  Refit with
#: ``python -m repro.tools.roofline_bounds --fit`` and keep in lockstep with
#: ``ROOFLINE_bounds.json`` (CI cross-checks the two).
DEFAULT_CALIBRATION = RooflineCalibration()
