"""The closed-form roofline predictor.

The predictor mirrors the simulator's *accounting* exactly where the spec
makes it exact (instruction counts via the generator's largest-remainder
apportionment) and in *expectation* where the simulator's behaviour is
statistical (cache hits, NUMA routing, interconnect hops).  It builds a
predicted :class:`~repro.gpu.counters.CounterSet`, derives delay as a
roofline — the slowest of the issue-throughput, DRAM-bandwidth,
link-bandwidth, and latency-chain bounds — and prices energy through the
real :class:`~repro.core.energy_model.EnergyModel` at the configuration's
operating point, so the V² / f·V² DVFS scaling across candidate points is
exact even though the counters are approximate.

Power-capped configurations are predicted by a closed-form stand-in for the
:class:`~repro.dvfs.governor.PowerCapGovernor`: walk the V/f ladder from the
top and settle on the highest core point whose *predicted* chip power fits
the budget.

Counter semantics mirrored from :mod:`repro.memory.hierarchy`:

* every global line access counts one ``l1_rf_txns``; shared-memory accesses
  count ``shared_rf_txns`` instead;
* an L1 load miss moves :data:`~repro.units.SECTORS_PER_LINE` sectors from
  L2 (``l2_l1_txns``); an L2 miss moves them from DRAM (``dram_l2_txns``);
* a remote load sends a 32 B request header to the home GPM, probes the home
  L2 (hit: home ``l2_l1_txns``; miss: home ``dram_l2_txns``), and returns a
  128 B payload — all bytes counted per link hop;
* stores bypass L1 tags: local stores write-allocate in L2 (dirty evictions
  become DRAM writebacks), remote stores ship the 128 B payload to the home
  GPM's DRAM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.energy_model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.dvfs.config import DvfsConfig
from repro.errors import ExperimentError
from repro.gpu.config import GpuConfig, TopologyKind
from repro.gpu.counters import CounterSet
from repro.roofline.calibration_params import (
    DEFAULT_CALIBRATION,
    RooflineCalibration,
)
from repro.units import (
    CACHE_LINE_BYTES,
    SECTOR_BYTES,
    SECTORS_PER_LINE,
    cycles_to_seconds,
    gbps_to_bytes_per_cycle,
)
from repro.workloads.generator import _apportion_mix
from repro.workloads.spec import WorkloadSpec

#: Request-header bytes of a remote access (mirrors repro.memory.hierarchy).
REQUEST_HEADER_BYTES: int = 32


def ring_mean_hops(num_gpms: int) -> float:
    """Exact mean shortest-path hop count of a bidirectional ring."""
    if num_gpms <= 1:
        return 0.0
    total = sum(min(d, num_gpms - d) for d in range(1, num_gpms))
    return total / (num_gpms - 1)


def mesh_mean_hops(num_gpms: int) -> float:
    """Exact mean torus hop count over the near-square mesh layout."""
    if num_gpms <= 1:
        return 0.0
    from repro.interconnect.mesh import grid_shape

    columns, rows = grid_shape(num_gpms)

    def axis_mean(extent: int) -> float:
        if extent <= 1:
            return 0.0
        return sum(min(d, extent - d) for d in range(extent)) / extent

    # Mean over uniformly random (src != dst): the per-axis means include the
    # dst == src cell, so rescale by n/(n-1) after summing the axes.
    mean_incl_self = axis_mean(columns) + axis_mean(rows)
    return mean_incl_self * num_gpms / (num_gpms - 1)


def _mean_hops(config: GpuConfig, neighbor: bool) -> float:
    """Mean link hops of one remote transfer.

    ``neighbor=True`` models halo traffic (the adjacent CTA's GPM — one hop
    on ring and mesh); ``False`` models uniformly scattered shared-region
    traffic.  A switch route is always two links (GPM -> switch -> GPM).
    """
    if config.interconnect is None or config.num_gpms <= 1:
        return 0.0
    kind = config.interconnect.kind
    if kind is TopologyKind.SWITCH:
        return 2.0
    if neighbor:
        return 1.0
    if kind is TopologyKind.MESH:
        return mesh_mean_hops(config.num_gpms)
    return ring_mean_hops(config.num_gpms)


def _switch_traversals(config: GpuConfig) -> float:
    if (
        config.interconnect is not None
        and config.interconnect.kind is TopologyKind.SWITCH
    ):
        return 1.0
    return 0.0


@dataclass(frozen=True)
class RooflinePrediction:
    """One analytical stand-in for a simulation result."""

    workload: str
    config_label: str
    num_gpms: int
    #: Predicted chip counters (float-valued expectations, no rounding).
    counters: CounterSet
    delay_s: float
    energy: EnergyBreakdown
    #: The roofline bound that set the delay ("issue", "dram", "link",
    #: "latency") — which wall the workload hit.
    bound: str
    #: Core operating point the prediction was priced at (the configured
    #: point, or the ladder point a predicted power cap settled on).
    effective_core_hz: float

    @property
    def energy_j(self) -> float:
        return self.energy.total

    @property
    def edp(self) -> float:
        return self.energy_j * self.delay_s

    @property
    def ed2p(self) -> float:
        return self.energy_j * self.delay_s**2

    @property
    def mean_power_w(self) -> float:
        return 0.0 if self.delay_s == 0.0 else self.energy_j / self.delay_s

    def score(self, metric: str) -> float:
        if metric == "edp":
            return self.edp
        if metric == "ed2p":
            return self.ed2p
        raise ExperimentError(f"unknown roofline metric {metric!r}")


@dataclass(frozen=True)
class _ClassTraffic:
    """Expected per-access-class behaviour feeding counters and latency."""

    loads: float
    stores: float
    remote_fraction: float
    l1_hit: float        # local-load L1 hit probability
    l2_hit: float        # L2 hit probability after an L1 miss (and at home)
    neighbor: bool       # remote traffic goes one hop, not uniform


class RooflinePredictor:
    """Closed-form (spec, config) -> (counters, delay, energy) predictor."""

    def __init__(self, calibration: RooflineCalibration | None = None):
        self.calibration = calibration or DEFAULT_CALIBRATION

    # ----------------------------------------------------------------- traffic

    def _shared_l2_hit(self, spec: WorkloadSpec, config: GpuConfig) -> float:
        """Capacity-aware L2 hit probability for shared-region traffic.

        The shared region scatters across every module's L2 under page
        interleaving; the hit probability falls off as the region outgrows
        the chip's aggregate L2.
        """
        cal = self.calibration
        if spec.shared_footprint_bytes <= 0:
            return cal.l2_hit_cap
        coverage = config.total_l2_bytes / spec.shared_footprint_bytes
        return min(cal.l2_hit_cap, cal.l2_shared_coverage * coverage)

    def _classes(
        self, spec: WorkloadSpec, config: GpuConfig
    ) -> dict[str, _ClassTraffic]:
        cal = self.calibration
        n = config.num_gpms
        accesses = float(spec.total_accesses)
        lds = accesses * spec.shared_mem_fraction
        global_accesses = accesses - lds
        loads = global_accesses * (1.0 - spec.store_fraction)
        stores = global_accesses * spec.store_fraction

        if n > 1:
            ctas_per_gpm = max(1.0, spec.total_ctas / n)
            halo_remote = min(1.0, 2.0 / ctas_per_gpm)
        else:
            halo_remote = 0.0
        shared_remote = spec.expected_shared_remote_fraction(n)
        shared_l2 = self._shared_l2_hit(spec, config)

        def cls(
            frac: float, remote: float, l1: float, l2: float, neighbor: bool
        ) -> _ClassTraffic:
            return _ClassTraffic(
                loads=loads * frac,
                stores=stores * frac,
                remote_fraction=remote,
                l1_hit=l1,
                l2_hit=l2,
                neighbor=neighbor,
            )

        return {
            "stream": cls(
                spec.frac_stream, 0.0, 0.0, cal.l2_hit_stream, False
            ),
            "reuse": cls(
                spec.frac_reuse, 0.0, cal.l1_hit_reuse, cal.l2_hit_cap, False
            ),
            "halo": cls(
                spec.frac_halo, halo_remote, 0.0, cal.l2_hit_halo, True
            ),
            "shared": cls(
                spec.frac_shared, shared_remote, 0.0, shared_l2, False
            ),
        }

    # ---------------------------------------------------------------- counters

    def predict_counters(
        self, spec: WorkloadSpec, config: GpuConfig
    ) -> CounterSet:
        """Expected chip counters (no delay-dependent fields filled in)."""
        cal = self.calibration
        counters = CounterSet()

        # Instruction counts are exact: the generator apportions the compute
        # mix per segment with largest remainders, identically per segment.
        total_segments = (
            spec.total_ctas
            * spec.warps_per_cta
            * spec.kernels
            * spec.segments_per_warp
        )
        for opcode, per_segment in _apportion_mix(
            spec.compute_mix, spec.compute_per_segment
        ).items():
            counters.count_instruction(opcode, per_segment * total_segments)

        accesses = float(spec.total_accesses)
        lds = accesses * spec.shared_mem_fraction
        counters.shared_rf_txns = lds
        counters.l1_rf_txns = accesses - lds

        classes = self._classes(spec, config)
        l2_l1 = 0.0
        dram_l2 = 0.0
        local_accesses = lds
        remote_accesses = 0.0
        inter_bytes = 0.0
        byte_hops = 0.0
        switch_bytes = 0.0
        switch_factor = _switch_traversals(config)
        for traffic in classes.values():
            remote = traffic.remote_fraction
            local_loads = traffic.loads * (1.0 - remote)
            remote_loads = traffic.loads * remote
            local_stores = traffic.stores * (1.0 - remote)
            remote_stores = traffic.stores * remote
            local_accesses += local_loads + local_stores
            remote_accesses += remote_loads + remote_stores

            # Local loads: L1 miss -> L2 sectors; L2 miss -> DRAM sectors.
            l1_misses = local_loads * (1.0 - traffic.l1_hit)
            l2_l1 += SECTORS_PER_LINE * l1_misses
            dram_l2 += SECTORS_PER_LINE * l1_misses * (1.0 - traffic.l2_hit)

            # Remote loads: home-L2 probe, payload both ways on the links.
            l2_l1 += SECTORS_PER_LINE * remote_loads * traffic.l2_hit
            dram_l2 += (
                SECTORS_PER_LINE * remote_loads * (1.0 - traffic.l2_hit)
            )
            load_bytes = remote_loads * (
                REQUEST_HEADER_BYTES + CACHE_LINE_BYTES
            )

            # Stores bypass L1: local write-allocate in L2 (dirty evictions
            # write back to DRAM), remote payloads land in the home DRAM.
            l2_l1 += SECTORS_PER_LINE * local_stores
            dram_l2 += (
                SECTORS_PER_LINE * local_stores * cal.writeback_fraction
            )
            dram_l2 += SECTORS_PER_LINE * remote_stores
            store_bytes = remote_stores * CACHE_LINE_BYTES

            hops = _mean_hops(config, traffic.neighbor)
            inter_bytes += load_bytes + store_bytes
            byte_hops += (load_bytes + store_bytes) * hops
            switch_bytes += (load_bytes + store_bytes) * switch_factor

        counters.l2_l1_txns = l2_l1
        counters.dram_l2_txns = dram_l2
        counters.inter_gpm_bytes = inter_bytes
        counters.inter_gpm_byte_hops = byte_hops
        counters.switch_byte_traversals = switch_bytes
        counters.local_accesses = local_accesses
        counters.remote_accesses = remote_accesses
        return counters

    # ------------------------------------------------------------------- delay

    def _domain_ratios(
        self, config: GpuConfig, dvfs: DvfsConfig | None
    ) -> tuple[float, float, float]:
        """(core_f, dram_f, interconnect_f) frequency ratios vs. the anchor.

        With per-GPM core clocks the chip finishes when its *slowest* module
        does, but remote traffic still progresses at the home modules' pace —
        so the effective core ratio is a harmonic blend of the mean and the
        straggler, weighted by the calibrated ``straggler_weight``.
        """
        if dvfs is None:
            return 1.0, 1.0, 1.0
        core_f, _core_v = dvfs.mean_core_ratios(config.num_gpms)
        if dvfs.core_per_gpm:
            w = self.calibration.straggler_weight
            min_f = min(
                dvfs.curve.frequency_ratio(point)
                for point in dvfs.core_per_gpm
            )
            core_f = 1.0 / ((1.0 - w) / core_f + w / min_f)
        return (
            core_f,
            dvfs.curve.frequency_ratio(dvfs.dram),
            dvfs.curve.frequency_ratio(dvfs.interconnect),
        )

    def _mean_access_latency(
        self,
        spec: WorkloadSpec,
        config: GpuConfig,
        classes: dict[str, _ClassTraffic],
        ratios: tuple[float, float, float],
    ) -> float:
        """Expected anchor-cycle latency of one warp memory access."""
        cal = self.calibration
        core_f, dram_f, ic_f = ratios
        lat = config.gpm.latencies
        dram_lat = config.gpm.dram.latency_cycles / dram_f
        link = config.interconnect
        link_lat = 0.0 if link is None else link.link_latency_cycles / ic_f
        link_rate = (
            0.0
            if link is None
            else gbps_to_bytes_per_cycle(
                link.per_gpm_bandwidth_gbps, config.gpm.clock_hz
            )
            * ic_f
        )

        accesses = float(spec.total_accesses)
        if accesses == 0.0:
            return 0.0
        lds = accesses * spec.shared_mem_fraction
        weighted = lds * (lat.shared / core_f)
        for traffic in classes.values():
            remote = traffic.remote_fraction
            l1_lat = lat.l1 / core_f
            l2_lat = (lat.l1 + lat.l2) / core_f
            dram_path = l2_lat + dram_lat
            local_load_lat = (
                traffic.l1_hit * l1_lat
                + (1.0 - traffic.l1_hit)
                * (traffic.l2_hit * l2_lat + (1.0 - traffic.l2_hit) * dram_path)
            )
            hops = _mean_hops(config, traffic.neighbor)
            # Round trip: header out, home probe, payload back.
            serialization = (
                0.0
                if link_rate == 0.0
                else (REQUEST_HEADER_BYTES + CACHE_LINE_BYTES) / link_rate
            )
            remote_load_lat = (
                l1_lat
                + 2.0 * hops * link_lat
                + serialization
                + traffic.l2_hit * l2_lat
                + (1.0 - traffic.l2_hit) * dram_path
            )
            load_lat = (
                (1.0 - remote) * local_load_lat + remote * remote_load_lat
            )
            # Stores are fire-and-forget past the L2 front; the warp only
            # pays the on-module pipeline.
            store_lat = cal.store_latency_weight * l2_lat
            weighted += traffic.loads * load_lat + traffic.stores * store_lat
        return weighted / accesses

    def predict_delay_cycles(
        self,
        spec: WorkloadSpec,
        config: GpuConfig,
        dvfs: DvfsConfig | None = None,
        counters: CounterSet | None = None,
    ) -> tuple[float, str]:
        """(anchor cycles, binding bound) for one pair at one DVFS setting."""
        cal = self.calibration
        dvfs = dvfs if dvfs is not None else config.dvfs
        ratios = self._domain_ratios(config, dvfs)
        core_f, dram_f, ic_f = ratios
        if counters is None:
            counters = self.predict_counters(spec, config)
        gpm = config.gpm

        # Issue-throughput roof: every SM issuing flat out.
        t_issue = spec.total_warp_instructions / (
            config.total_sms * gpm.issue_rate * core_f
        )

        # DRAM-bandwidth roof: sector traffic over the per-GPM stacks.
        dram_rate = gbps_to_bytes_per_cycle(
            gpm.dram.bandwidth_gbps, gpm.clock_hz
        )
        t_dram = (counters.dram_l2_txns * SECTOR_BYTES) / (
            config.num_gpms * dram_rate * dram_f
        )

        # Link-bandwidth roof: byte-hops over the aggregate link capacity
        # (each GPM's I/O budget is split across its links, so the network
        # serializes ~num_gpms x per-GPM bandwidth of byte-hops per cycle).
        t_link = 0.0
        if config.interconnect is not None and counters.inter_gpm_byte_hops:
            link_rate = gbps_to_bytes_per_cycle(
                config.interconnect.per_gpm_bandwidth_gbps, gpm.clock_hz
            )
            t_link = counters.inter_gpm_byte_hops / (
                config.num_gpms * link_rate * ic_f
            )

        # Latency roof: CTA waves through the slot grid, each warp walking
        # its segment chain with the software-pipelined overlap the engine
        # actually achieves (depth 2).
        slots = config.num_gpms * gpm.num_sms * gpm.slots_per_sm
        waves = math.ceil(spec.total_ctas / slots)
        mean_lat = self._mean_access_latency(spec, config, self._classes(spec, config), ratios)
        t_warp = spec.segments_per_warp * (
            spec.compute_per_segment / core_f
            + spec.accesses_per_segment * mean_lat / cal.pipeline_overlap
        )
        t_latency = cal.latency_scale * spec.kernels * waves * t_warp

        bounds = {
            "issue": t_issue,
            "dram": t_dram,
            "link": t_link,
            "latency": t_latency,
        }
        bound = max(bounds, key=lambda name: bounds[name])
        return bounds[bound], bound

    # ------------------------------------------------------------------ energy

    def _finish(
        self,
        spec: WorkloadSpec,
        config: GpuConfig,
        dvfs: DvfsConfig | None,
        effective_core_hz: float,
    ) -> RooflinePrediction:
        counters = self.predict_counters(spec, config)
        cycles, bound = self.predict_delay_cycles(
            spec, config, dvfs=dvfs, counters=counters
        )
        core_f, _dram_f, _ic_f = self._domain_ratios(config, dvfs)
        busy = spec.total_warp_instructions / (config.gpm.issue_rate * core_f)
        counters.sm_busy_cycles = min(busy, cycles * config.total_sms)
        counters.sm_idle_cycles = max(
            0.0, cycles * config.total_sms - counters.sm_busy_cycles
        )
        counters.elapsed_cycles = cycles
        delay_s = cycles_to_seconds(cycles, config.gpm.clock_hz)
        params = EnergyParams.for_operating_point(config, dvfs=dvfs)
        energy = EnergyModel(params).evaluate(counters, delay_s)
        return RooflinePrediction(
            workload=spec.abbr,
            config_label=config.label(),
            num_gpms=config.num_gpms,
            counters=counters,
            delay_s=delay_s,
            energy=energy,
            bound=bound,
            effective_core_hz=effective_core_hz,
        )

    def predict(
        self, spec: WorkloadSpec, config: GpuConfig
    ) -> RooflinePrediction:
        """Predict counters, delay, and energy for one (spec, config) pair.

        A ``power_cap_watts`` configuration is predicted at the capping
        governor's *own* waterfill allocation (uniform priorities, the
        steady state it oscillates around): the governor budgets with its
        worst-case :class:`~repro.dvfs.governor.GpmPowerModel`, so reusing
        that arithmetic — not the predicted mean power — is what lands on
        the rungs the simulated run actually dwells at.
        """
        if spec.phases is not None:
            raise ExperimentError(
                f"{spec.abbr}: the roofline model does not cover"
                " phase-scheduled workloads (per-kernel mixes break the"
                " expectation counters); run the simulator instead"
            )
        dvfs = config.dvfs
        core_hz = (
            dvfs.core.frequency_hz
            if dvfs is not None and not dvfs.core_per_gpm
            else config.gpm.clock_hz
        )
        if config.power_cap_watts is None:
            return self._finish(spec, config, dvfs, core_hz)

        from repro.dvfs.governor import PowerCapGovernor
        from repro.dvfs.operating_point import K40_VF_CURVE

        curve = dvfs.curve if dvfs is not None else K40_VF_CURVE
        allocation = PowerCapGovernor(
            curve=curve, cap_watts=config.power_cap_watts
        ).initial_points(config.num_gpms)
        base = dvfs if dvfs is not None else DvfsConfig(curve=curve)
        capped = replace(base, core_per_gpm=tuple(allocation))
        mean_hz = sum(point.frequency_hz for point in allocation) / len(
            allocation
        )
        return self._finish(spec, config, capped, mean_hz)

    def predict_pairs(
        self, pairs: list[tuple[WorkloadSpec, GpuConfig]]
    ) -> list[RooflinePrediction]:
        """Vector convenience mirroring :meth:`SweepRunner.run`'s shape."""
        return [self.predict(spec, config) for spec, config in pairs]
