"""Fit and validate the roofline predictor against the golden simulations.

The golden suite (two micro-workloads x five configurations, see
:mod:`repro.tools.regen_goldens`) is the only simulation the calibration ever
runs: each pair simulates once, then every candidate calibration is scored
analytically against those reference numbers.  The committed outcome lives in
two places that CI keeps in lockstep:

* :data:`repro.roofline.calibration_params.DEFAULT_CALIBRATION` — the fitted
  scalars, baked into source;
* ``ROOFLINE_bounds.json`` — the per-golden-case relative errors those scalars
  achieve, plus ceilings with margin.  ``python -m repro.tools.roofline_bounds``
  regenerates it (``--write``) and fails CI when the committed default's error
  exceeds a committed ceiling (``--check``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.energy_model import EnergyParams
from repro.gpu.config import GpuConfig
from repro.gpu.simulator import simulate
from repro.roofline.calibration_params import (
    DEFAULT_CALIBRATION,
    RooflineCalibration,
)
from repro.roofline.model import RooflinePredictor
from repro.workloads.generator import build_workload
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "DEFAULT_CALIBRATION",
    "RooflineCalibration",
    "CaseError",
    "ValidationReport",
    "ReferenceCase",
    "fit_calibration",
    "golden_pairs",
    "simulate_reference",
    "validate_calibration",
]


def golden_pairs() -> list[tuple[str, WorkloadSpec, GpuConfig]]:
    """Every roofline-scoreable golden (case_name, spec, config), in order.

    Two golden shapes are excluded, matching the screen's automatic
    exhaustive fallbacks (docs/WORKLOADS.md §4): idle-configured goldens —
    the roofline model is idle-blind (it prices every cycle at active power
    and knows nothing about gap gating), so validating it against a
    sleeping run would fold the sleep savings into the committed error
    bound as noise — and phase-scheduled goldens, which the predictor
    refuses outright (per-kernel mixes break the expectation counters).
    """
    from repro.tools.regen_goldens import (
        GOLDEN_CONFIGS,
        GOLDEN_SPECS,
        golden_cases,
    )

    return [
        (case_name, GOLDEN_SPECS[spec_key], GOLDEN_CONFIGS[config_key])
        for case_name, spec_key, config_key in golden_cases()
        if GOLDEN_CONFIGS[config_key].idle is None
        and GOLDEN_SPECS[spec_key].phases is None
    ]


@dataclass(frozen=True)
class ReferenceCase:
    """What one golden simulation actually reported."""

    case: str
    spec: WorkloadSpec
    config: GpuConfig
    delay_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        return self.energy_j * self.delay_s


def simulate_reference(
    pairs: list[tuple[str, WorkloadSpec, GpuConfig]] | None = None,
) -> list[ReferenceCase]:
    """Simulate the golden pairs once; the fit reuses these for every candidate.

    Energy is priced exactly as the experiment layer prices it: through
    :meth:`EnergyParams.for_operating_point` with the run's DVFS residency, so
    capped and mixed-clock configurations are judged at their true scales.
    """
    reference: list[ReferenceCase] = []
    for case_name, spec, config in pairs or golden_pairs():
        result = simulate(build_workload(spec), config)
        params = EnergyParams.for_operating_point(
            config, residency=result.residency
        )
        reference.append(
            ReferenceCase(
                case=case_name,
                spec=spec,
                config=config,
                delay_s=result.seconds,
                energy_j=result.energy_breakdown(params).total,
            )
        )
    return reference


def _rel_err(predicted: float, simulated: float) -> float:
    if simulated == 0.0:
        return 0.0 if predicted == 0.0 else float("inf")
    return abs(predicted - simulated) / simulated


@dataclass(frozen=True)
class CaseError:
    """Predicted-vs-simulated relative error of one golden case."""

    case: str
    predicted_delay_s: float
    simulated_delay_s: float
    predicted_energy_j: float
    simulated_energy_j: float
    bound: str

    @property
    def delay_rel_err(self) -> float:
        return _rel_err(self.predicted_delay_s, self.simulated_delay_s)

    @property
    def energy_rel_err(self) -> float:
        return _rel_err(self.predicted_energy_j, self.simulated_energy_j)

    @property
    def edp_rel_err(self) -> float:
        return _rel_err(
            self.predicted_energy_j * self.predicted_delay_s,
            self.simulated_energy_j * self.simulated_delay_s,
        )

    def to_json(self) -> dict:
        return {
            "predicted_delay_s": self.predicted_delay_s,
            "simulated_delay_s": self.simulated_delay_s,
            "predicted_energy_j": self.predicted_energy_j,
            "simulated_energy_j": self.simulated_energy_j,
            "delay_rel_err": self.delay_rel_err,
            "energy_rel_err": self.energy_rel_err,
            "edp_rel_err": self.edp_rel_err,
            "bound": self.bound,
        }


@dataclass(frozen=True)
class ValidationReport:
    """One calibration's error against every golden case."""

    calibration: RooflineCalibration
    cases: tuple[CaseError, ...]

    @property
    def max_delay_rel_err(self) -> float:
        return max(case.delay_rel_err for case in self.cases)

    @property
    def max_energy_rel_err(self) -> float:
        return max(case.energy_rel_err for case in self.cases)

    @property
    def max_edp_rel_err(self) -> float:
        return max(case.edp_rel_err for case in self.cases)

    @property
    def objective(self) -> float:
        """The scalar the fit minimizes: the worst error anywhere."""
        return max(
            self.max_delay_rel_err,
            self.max_energy_rel_err,
            self.max_edp_rel_err,
        )

    def to_json(self) -> dict:
        return {
            "calibration": self.calibration.to_json(),
            "cases": {case.case: case.to_json() for case in self.cases},
            "max_rel_err": {
                "delay": self.max_delay_rel_err,
                "energy": self.max_energy_rel_err,
                "edp": self.max_edp_rel_err,
            },
        }


def validate_calibration(
    calibration: RooflineCalibration | None = None,
    reference: list[ReferenceCase] | None = None,
) -> ValidationReport:
    """Score one calibration against the golden simulations."""
    calibration = calibration or DEFAULT_CALIBRATION
    reference = reference if reference is not None else simulate_reference()
    predictor = RooflinePredictor(calibration)
    cases = tuple(
        CaseError(
            case=ref.case,
            predicted_delay_s=(pred := predictor.predict(ref.spec, ref.config)).delay_s,
            simulated_delay_s=ref.delay_s,
            predicted_energy_j=pred.energy_j,
            simulated_energy_j=ref.energy_j,
            bound=pred.bound,
        )
        for ref in reference
    )
    return ValidationReport(calibration=calibration, cases=cases)


#: Coarse fit grids.  The probabilities are physical knobs the closed form
#: cannot derive from the spec alone; everything else in the calibration is
#: pinned to its engine-derived default.
_L2_STREAM_GRID = tuple(round(0.05 * i, 2) for i in range(0, 16))
_WRITEBACK_GRID = tuple(round(0.1 * i, 1) for i in range(0, 11))
_L2_HALO_GRID = (0.3, 0.5, 0.7, 0.9)
_STRAGGLER_GRID = (0.0, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95)


def _geometric_midpoint_scale(
    calibration: RooflineCalibration, reference: list[ReferenceCase]
) -> float:
    """The latency_scale minimizing the worst log-delay error.

    With the goldens latency-bound, delay is ~linear in ``latency_scale``;
    the geometric midpoint of the extreme (simulated / predicted) delay
    ratios then equalizes the worst over- and under-prediction.
    """
    predictor = RooflinePredictor(calibration)
    ratios = [
        ref.delay_s / predictor.predict(ref.spec, ref.config).delay_s
        for ref in reference
    ]
    scale = (max(ratios) * min(ratios)) ** 0.5 * calibration.latency_scale
    return round(scale, 4)


def fit_calibration(
    reference: list[ReferenceCase] | None = None,
    base: RooflineCalibration | None = None,
) -> ValidationReport:
    """Fit the free scalars against the goldens; returns the winning report.

    Coarse grid search over the cache-behaviour probabilities, with
    ``latency_scale`` set analytically per candidate — the objective is the
    worst relative error (delay, energy, or EDP) over every golden case, so
    the fit optimizes exactly what ``ROOFLINE_bounds.json`` pins.
    """
    reference = reference if reference is not None else simulate_reference()
    base = base or RooflineCalibration()
    best: ValidationReport | None = None
    for l2_stream in _L2_STREAM_GRID:
        for writeback in _WRITEBACK_GRID:
            for l2_halo in _L2_HALO_GRID:
                for straggler in _STRAGGLER_GRID:
                    candidate = RooflineCalibration(
                        l1_hit_reuse=base.l1_hit_reuse,
                        l2_hit_stream=l2_stream,
                        l2_hit_halo=l2_halo,
                        l2_hit_cap=base.l2_hit_cap,
                        l2_shared_coverage=base.l2_shared_coverage,
                        writeback_fraction=writeback,
                        store_latency_weight=base.store_latency_weight,
                        straggler_weight=straggler,
                        pipeline_overlap=base.pipeline_overlap,
                        latency_scale=1.0,
                    )
                    scaled = RooflineCalibration(
                        **{
                            **candidate.to_json(),
                            "latency_scale": _geometric_midpoint_scale(
                                candidate, reference
                            ),
                        }
                    )
                    report = validate_calibration(scaled, reference)
                    if best is None or report.objective < best.objective:
                        best = report
    assert best is not None
    return best
