"""Per-run provenance manifests written next to cached sweep results.

A cached :class:`~repro.experiments.results.RunRecord` answers *what* a
simulation produced; the manifest answers *where it came from*: the exact
config fingerprint and workload-spec hash that keyed the cache entry, the
``RESULTS_VERSION`` the record was produced under, how long the simulation
took, and on which host.  When a figure looks wrong months later, the
manifest is the difference between re-deriving provenance and reading it.

Manifests are advisory: the sweep cache never *reads* them for correctness
(the content-hash key does that), so a missing or stale manifest can only
cost debugging convenience, never poison a result.
"""

from __future__ import annotations

import json
import os
import platform
import socket
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1


def host_info() -> dict:
    """Stable facts about the machine producing a result."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


@dataclass
class RunManifest:
    """Provenance for one cached (workload, configuration) simulation."""

    cache_key: str
    workload: str
    config_label: str
    results_version: int
    spec_hash: str
    config_fingerprint: dict
    wall_time_s: float
    #: Engine callbacks dispatched by the producing simulation (0 when the
    #: manifest predates throughput accounting).
    events_processed: int = 0
    #: Simulator throughput (events_processed over the simulation's own wall
    #: clock, excluding workload build time) — makes per-run throughput
    #: regressions visible without the bench harness.
    events_per_sec: float = 0.0
    #: Per-domain operating-point residency of the producing run
    #: (``DvfsResidency.to_json()``); ``None`` when the manifest predates
    #: residency accounting.
    dvfs_residency: dict | None = None
    #: Per-GPM core-domain energy attribution of the producing run
    #: (list of ``GpmEnergy.as_dict()``); ``None`` when the run had no
    #: DVFS/residency pricing or predates per-GPM attribution.
    per_gpm_energy: list | None = None
    #: Roofline-screening provenance when this simulation was selected by a
    #: screened sweep (mode, metric, top_k, guard, predicted rank); ``None``
    #: for exhaustive sweeps and manifests predating screening.  Advisory —
    #: screening never changes the result or the cache key, only which grid
    #: points were simulated at all.
    screen: dict | None = None
    host: dict = field(default_factory=host_info)
    created_at: str = ""
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.created_at:
            self.created_at = datetime.now(timezone.utc).isoformat()

    # ----------------------------------------------------------- serialization

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "RunManifest":
        return cls(
            cache_key=data["cache_key"],
            workload=data["workload"],
            config_label=data["config_label"],
            results_version=data["results_version"],
            spec_hash=data["spec_hash"],
            config_fingerprint=data["config_fingerprint"],
            wall_time_s=data["wall_time_s"],
            events_processed=data.get("events_processed", 0),
            events_per_sec=data.get("events_per_sec", 0.0),
            dvfs_residency=data.get("dvfs_residency"),
            per_gpm_energy=data.get("per_gpm_energy"),
            screen=data.get("screen"),
            host=data.get("host", {}),
            created_at=data.get("created_at", ""),
            schema_version=data.get("schema_version", MANIFEST_SCHEMA_VERSION),
        )

    # ---------------------------------------------------------------------- io

    @staticmethod
    def path_for(record_path: Path) -> Path:
        """Manifest path corresponding to a cached record path."""
        return record_path.with_suffix(".manifest.json")

    def write(self, path: str | Path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(".tmp")
        with tmp.open("w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
        tmp.replace(target)
        return target

    @classmethod
    def read(cls, path: str | Path) -> "RunManifest":
        with Path(path).open() as handle:
            return cls.from_json(json.load(handle))


#: Bump when the service-manifest layout changes incompatibly.
SERVICE_MANIFEST_SCHEMA_VERSION = 1


@dataclass
class ServiceManifest:
    """Provenance for one job served by :mod:`repro.service`.

    Where :class:`RunManifest` describes how a cached *simulation* was
    produced, a ``ServiceManifest`` describes how one *request* was served:
    which lane scheduled it, whether the result came from the store, an
    in-flight coalesce, or a fresh simulation, and how long each stage
    took.  Every response from ``POST /v1/jobs`` carries one.
    """

    job_id: str
    cache_key: str
    workload: str
    config_label: str
    client: str
    lane: str
    #: ``"hit"`` / ``"miss"`` / ``"coalesced"`` — how the result was served.
    cache: str
    #: Terminal job state (``completed`` for hits, which never queue).
    state: str
    queue_wait_s: float
    exec_s: float
    total_s: float
    results_version: int
    spec_hash: str
    #: Roofline prediction attached when the request asked for screening
    #: provenance (predicted energy/delay/EDP vs. what was served); ``None``
    #: otherwise.  Advisory only — never part of the cache identity.
    screen: dict | None = None
    created_at: str = ""
    schema_version: int = SERVICE_MANIFEST_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.created_at:
            self.created_at = datetime.now(timezone.utc).isoformat()

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "ServiceManifest":
        return cls(
            job_id=data["job_id"],
            cache_key=data["cache_key"],
            workload=data["workload"],
            config_label=data["config_label"],
            client=data["client"],
            lane=data["lane"],
            cache=data["cache"],
            state=data["state"],
            queue_wait_s=data["queue_wait_s"],
            exec_s=data["exec_s"],
            total_s=data["total_s"],
            results_version=data["results_version"],
            spec_hash=data["spec_hash"],
            screen=data.get("screen"),
            created_at=data.get("created_at", ""),
            schema_version=data.get(
                "schema_version", SERVICE_MANIFEST_SCHEMA_VERSION
            ),
        )
