"""Named metric registry shared by simulator components.

Components register metrics by name the first time they record into them:

    cta_cycles = engine.metrics.accumulator("sm.cta_cycles")
    ...
    cta_cycles.add(end - start)

A registry is always present on the engine, so recording sites never branch;
the cost of a disabled observability stack is just the underlying
:class:`~repro.sim.stats.Accumulator`/:class:`~repro.sim.stats.Histogram`
updates, which are O(1) and only occur at coarse-grained points (CTA retire,
remote access completion, DRAM service, interconnect transfer).

Registries serialize to plain JSON (`to_json`) carrying the *exact* merge
state (count/mean/M2 for accumulators, raw buckets for histograms), so
per-worker registries from :class:`~repro.experiments.runner.SweepRunner`
processes round-trip through :class:`~repro.experiments.results.RunRecord`
and combine losslessly via :meth:`MetricsRegistry.merge` — the parallel
Welford combine makes merging associative and commutative up to float
rounding.
"""

from __future__ import annotations

from repro.sim.stats import Accumulator, Histogram


class MetricsRegistry:
    """Name -> metric mapping with cross-process merge and serialization."""

    __slots__ = ("_accumulators", "_histograms")

    def __init__(self) -> None:
        self._accumulators: dict[str, Accumulator] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ registration

    def accumulator(self, name: str) -> Accumulator:
        """Return the accumulator registered under ``name``, creating it."""
        metric = self._accumulators.get(name)
        if metric is None:
            metric = Accumulator()
            self._accumulators[name] = metric
        return metric

    def histogram(self, name: str, bucket_width: float) -> Histogram:
        """Return the histogram registered under ``name``, creating it.

        Re-registration with a different ``bucket_width`` is a bug in the
        instrumentation and raises.
        """
        metric = self._histograms.get(name)
        if metric is None:
            metric = Histogram(bucket_width, name=name)
            self._histograms[name] = metric
        elif metric.bucket_width != bucket_width:
            raise ValueError(
                f"histogram {name!r} already registered with bucket width"
                f" {metric.bucket_width}, not {bucket_width}"
            )
        return metric

    @property
    def accumulators(self) -> dict[str, Accumulator]:
        return dict(self._accumulators)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def names(self) -> list[str]:
        return sorted(self._accumulators) + sorted(self._histograms)

    def count(self, name: str) -> int:
        """Observation count of one metric by name (0 when never recorded).

        Counter-style metrics (one ``add(1.0)`` per event, the
        :mod:`repro.service` convention) read their value through this
        without the caller caring whether the name is an accumulator or a
        histogram.
        """
        metric = self._accumulators.get(name)
        if metric is not None:
            return metric.count
        histogram = self._histograms.get(name)
        if histogram is not None:
            return histogram.total
        return 0

    def __len__(self) -> int:
        return len(self._accumulators) + len(self._histograms)

    def __bool__(self) -> bool:
        return len(self) > 0

    # ------------------------------------------------------------------- merge

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (returns ``self``).

        Metrics present in only one registry are adopted as-is; shared names
        combine via the parallel Welford/bucket-sum merges.
        """
        for name, theirs in other._accumulators.items():
            self.accumulator(name).merge(theirs)
        for name, theirs in other._histograms.items():
            self.histogram(name, theirs.bucket_width).merge(theirs)
        return self

    # ----------------------------------------------------------- serialization

    def to_json(self) -> dict:
        """Exact, merge-preserving state as plain JSON data."""
        return {
            "accumulators": {
                name: metric.to_json()
                for name, metric in sorted(self._accumulators.items())
            },
            "histograms": {
                name: metric.to_json()
                for name, metric in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_json(cls, data: dict | None) -> "MetricsRegistry":
        registry = cls()
        if not data:
            return registry
        for name, state in data.get("accumulators", {}).items():
            registry._accumulators[name] = Accumulator.from_json(state)
        for name, state in data.get("histograms", {}).items():
            histogram = Histogram.from_json(state)
            histogram.name = name
            registry._histograms[name] = histogram
        return registry

    def snapshot(self) -> dict:
        """Human-oriented summary (means/quantiles), for reports and the CLI."""
        summary: dict[str, dict] = {}
        for name, metric in sorted(self._accumulators.items()):
            if metric.count == 0:
                continue
            summary[name] = {
                "count": metric.count,
                "mean": metric.mean,
                "min": metric.minimum,
                "max": metric.maximum,
                "stddev": metric.stddev,
            }
        for name, metric in sorted(self._histograms.items()):
            if metric.total == 0:
                continue
            summary[name] = {
                "count": metric.total,
                "p50": metric.quantile(0.5),
                "p99": metric.quantile(0.99),
            }
        return summary

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._accumulators)} accumulators,"
            f" {len(self._histograms)} histograms)"
        )
