"""Observability layer: tracing, metrics, and run provenance.

Three independent facilities, all opt-in and all near-zero-cost when off:

* :mod:`repro.trace.tracer` — a :class:`Tracer` interface with a no-op
  :class:`NullTracer` default and a :class:`ChromeTracer` that exports Chrome
  ``trace_event`` JSON (viewable at https://ui.perfetto.dev).  The simulator's
  engine, CTA scheduler, memory hierarchy, and interconnect all emit through
  whatever tracer the engine carries.
* :mod:`repro.trace.metrics` — a :class:`MetricsRegistry` of named
  accumulators and histograms that components record into; registries merge
  losslessly across sweep worker processes.
* :mod:`repro.trace.manifest` — :class:`RunManifest` provenance records
  written beside cached sweep results.

See ``docs/OBSERVABILITY.md`` for the capture/inspect workflow.
"""

from repro.trace.manifest import MANIFEST_SCHEMA_VERSION, RunManifest, host_info
from repro.trace.metrics import MetricsRegistry
from repro.trace.tracer import (
    NULL_TRACER,
    ChromeTracer,
    NullTracer,
    TraceError,
    Tracer,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "NULL_TRACER",
    "ChromeTracer",
    "MetricsRegistry",
    "NullTracer",
    "RunManifest",
    "TraceError",
    "Tracer",
    "host_info",
]
