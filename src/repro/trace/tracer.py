"""Tracers: opt-in event recording with a zero-cost-when-off null path.

The simulator components never know which tracer is installed; they hold the
engine's ``tracer`` attribute and guard every emission site with
``if tracer.enabled:`` so that a disabled run pays exactly one attribute load
and branch per *instrumentation site execution* — never any argument
marshalling.  Two tracers ship:

* :class:`NullTracer` — the default.  ``enabled`` is ``False`` and every
  method is a no-op, so an untraced simulation is byte-identical to a run
  with no tracer wired at all.
* :class:`ChromeTracer` — records begin/end/instant/complete/counter events
  in the Chrome ``trace_event`` JSON format, viewable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.

A *track* is a string naming one timeline (e.g. ``"sm3.slot1"``,
``"gpm0.mem"``, ``"interconnect"``); the Chrome tracer maps each track to a
stable thread id under a single process, emitting ``thread_name`` metadata so
the viewer labels timelines by track.  Timestamps are simulation *cycles*
reported in the format's microsecond field — one viewer microsecond equals
one simulated cycle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any


class TraceError(ValueError):
    """Raised when trace emission violates the event-stream discipline."""


class Tracer:
    """Interface shared by all tracers; the base class itself records nothing.

    Subclasses that record must set :attr:`enabled` to ``True``; emission
    sites in the simulator only build event arguments behind an
    ``if tracer.enabled:`` guard.
    """

    enabled: bool = False

    def begin(
        self, track: str, name: str, ts: float, args: dict | None = None
    ) -> None:
        """Open a duration span named ``name`` on ``track`` at time ``ts``."""

    def end(self, track: str, ts: float) -> None:
        """Close the innermost open span on ``track`` at time ``ts``."""

    def instant(
        self, track: str, name: str, ts: float, args: dict | None = None
    ) -> None:
        """Record a zero-duration marker on ``track``."""

    def complete(
        self,
        track: str,
        name: str,
        ts: float,
        dur: float,
        args: dict | None = None,
    ) -> None:
        """Record a closed span of ``dur`` cycles starting at ``ts``."""

    def counter(self, track: str, name: str, ts: float, value: float) -> None:
        """Record a sampled counter value (rendered as a line chart)."""


class NullTracer(Tracer):
    """The always-off tracer installed by default."""

    __slots__ = ()


#: Shared default instance; components compare against ``tracer.enabled``,
#: never against this identity, so substituting a custom tracer is safe.
NULL_TRACER = NullTracer()


class ChromeTracer(Tracer):
    """Records Chrome ``trace_event`` JSON for Perfetto.

    Events are kept in emission order; :meth:`events` applies a stable sort by
    timestamp, which preserves each track's internal ordering because a
    track's timestamps never decrease (enforced at emission time for spans).
    """

    enabled = True

    #: pid all tracks live under (one simulated GPU == one trace process).
    PID = 1

    def __init__(self, process_name: str = "repro-sim"):
        self.process_name = process_name
        self._events: list[dict[str, Any]] = []
        self._tids: dict[str, int] = {}
        # Per-track open-span stack and last span timestamp, enforcing the
        # nesting discipline Perfetto needs to render B/E pairs.
        self._open: dict[str, list[str]] = {}
        self._last_ts: dict[str, float] = {}

    # ------------------------------------------------------------------ record

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
        return tid

    def _check_ts(self, track: str, ts: float) -> None:
        last = self._last_ts.get(track)
        if last is not None and ts < last:
            raise TraceError(
                f"track {track!r}: span timestamp {ts} precedes {last}"
            )
        self._last_ts[track] = ts

    def begin(
        self, track: str, name: str, ts: float, args: dict | None = None
    ) -> None:
        self._check_ts(track, ts)
        self._open.setdefault(track, []).append(name)
        event: dict[str, Any] = {
            "name": name, "ph": "B", "ts": ts,
            "pid": self.PID, "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def end(self, track: str, ts: float) -> None:
        stack = self._open.get(track)
        if not stack:
            raise TraceError(f"track {track!r}: end with no open span")
        self._check_ts(track, ts)
        name = stack.pop()
        self._events.append({
            "name": name, "ph": "E", "ts": ts,
            "pid": self.PID, "tid": self._tid(track),
        })

    def instant(
        self, track: str, name: str, ts: float, args: dict | None = None
    ) -> None:
        event: dict[str, Any] = {
            "name": name, "ph": "i", "ts": ts, "s": "t",
            "pid": self.PID, "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def complete(
        self,
        track: str,
        name: str,
        ts: float,
        dur: float,
        args: dict | None = None,
    ) -> None:
        if dur < 0:
            raise TraceError(f"track {track!r}: negative duration {dur}")
        event: dict[str, Any] = {
            "name": name, "ph": "X", "ts": ts, "dur": dur,
            "pid": self.PID, "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(self, track: str, name: str, ts: float, value: float) -> None:
        self._events.append({
            "name": name, "ph": "C", "ts": ts,
            "pid": self.PID, "tid": self._tid(track),
            "args": {"value": value},
        })

    # ------------------------------------------------------------------ export

    def __len__(self) -> int:
        return len(self._events)

    def open_spans(self) -> dict[str, list[str]]:
        """Tracks with unbalanced begins (should be empty after a run)."""
        return {track: list(stack) for track, stack in self._open.items() if stack}

    def events(self) -> list[dict[str, Any]]:
        """Data events, stably sorted by timestamp (metadata excluded)."""
        return sorted(self._events, key=lambda event: event["ts"])

    def _metadata(self) -> list[dict[str, Any]]:
        meta: list[dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": self.PID, "tid": 0,
            "args": {"name": self.process_name},
        }]
        for track, tid in sorted(self._tids.items(), key=lambda item: item[1]):
            meta.append({
                "name": "thread_name", "ph": "M",
                "pid": self.PID, "tid": tid, "args": {"name": track},
            })
            meta.append({
                "name": "thread_sort_index", "ph": "M",
                "pid": self.PID, "tid": tid, "args": {"sort_index": tid},
            })
        return meta

    def export(self) -> dict[str, Any]:
        """The full Chrome trace object (deterministic for identical runs)."""
        return {
            "traceEvents": self._metadata() + self.events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.trace.ChromeTracer",
                "time_unit": "1 viewer microsecond == 1 simulated cycle",
            },
        }

    def write(self, path: str | Path) -> Path:
        """Serialize the trace to ``path`` and return it."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as handle:
            json.dump(self.export(), handle)
        return target

    def __repr__(self) -> str:
        return (
            f"ChromeTracer({self.process_name!r}, {len(self._events)} events,"
            f" {len(self._tids)} tracks)"
        )
