"""Turns a :class:`WorkloadSpec` into executable kernels and warp programs.

Address-space layout (per workload)::

    [0, footprint)                      CTA-partitioned arrays: CTA i owns
                                        the slice [i*region, (i+1)*region)
    [shared_base, +shared_footprint)    globally shared region (tables,
                                        graph edges, reduction targets)

Because CTAs are distributed in contiguous chunks and pages are placed first
touch, a CTA's own slice lands in its GPM's DRAM stack and halo accesses land
on the same GPM except at partition boundaries.  The shared region is marked
for page *interleaving* (``Workload.interleaved_base``): multi-GPU systems
stripe shared allocations across memories so no single module hotspots, and
under striping ~(N-1)/N of shared-region traffic is remote — the gather/graph
traffic class of the NUMA-GPU papers.

Address streams are generated **vectorized per warp** with SplitMix64 over
structured keys: a warp's program is a pure function of (workload seed,
kernel, CTA, warp), identical across runs and GPM counts — strong scaling
must present the same memory behaviour to every configuration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.isa.kernel import Kernel, Workload
from repro.isa.opcodes import MemSpace, Opcode
from repro.isa.program import MemAccess, Segment, WarpProgram
from repro.units import CACHE_LINE_BYTES, PAGE_BYTES
from repro.workloads.patterns import mix_key, splitmix64_array
from repro.workloads.spec import WorkloadSpec

_U64 = float(1 << 64)
_LINE = CACHE_LINE_BYTES


def _apportion_mix(mix: dict[Opcode, float], total: int) -> dict[Opcode, int]:
    """Largest-remainder apportionment of ``total`` instructions over a mix."""
    if total == 0:
        return {}
    weight_sum = sum(mix.values())
    shares = {
        opcode: total * weight / weight_sum for opcode, weight in mix.items()
    }
    counts = {opcode: int(share) for opcode, share in shares.items()}
    shortfall = total - sum(counts.values())
    by_remainder = sorted(
        mix, key=lambda opcode: shares[opcode] - counts[opcode], reverse=True
    )
    for opcode in by_remainder[:shortfall]:
        counts[opcode] += 1
    return {opcode: count for opcode, count in counts.items() if count > 0}


def shared_region_base(spec: WorkloadSpec) -> int:
    """Start address of the workload's shared (interleaved) region."""
    footprint_pages = (spec.footprint_bytes + PAGE_BYTES - 1) // PAGE_BYTES
    return (footprint_pages + 1) * PAGE_BYTES


class WarpProgramBuilder:
    """``program_factory`` for one kernel of one workload.

    Instances are lightweight and stateless across calls; one is attached to
    each :class:`~repro.isa.kernel.Kernel` and invoked lazily per warp.
    """

    def __init__(self, spec: WorkloadSpec, kernel_index: int):
        self.spec = spec
        self.kernel_index = kernel_index
        self._compute_counts = _apportion_mix(
            spec.compute_mix, spec.compute_per_segment
        )
        self._shared_base = shared_region_base(spec)
        def threshold(fraction: float) -> np.uint64:
            """Cumulative-fraction threshold for strict `key < t` selection."""
            return np.uint64(min(int(fraction * _U64), (1 << 64) - 1))

        self._t_stream = threshold(spec.frac_stream)
        self._t_reuse = threshold(spec.frac_stream + spec.frac_reuse)
        self._t_halo = threshold(
            spec.frac_stream + spec.frac_reuse + spec.frac_halo
        )
        self._t_store = threshold(spec.store_fraction)
        self._t_lds = threshold(spec.shared_mem_fraction)
        n = spec.segments_per_warp * spec.accesses_per_segment
        self._seg = np.arange(n, dtype=np.uint64) // np.uint64(
            max(1, spec.accesses_per_segment)
        )
        self._slot = np.arange(n, dtype=np.uint64) % np.uint64(
            max(1, spec.accesses_per_segment)
        )

    def _addresses(self, cta_id: int, warp_id: int):
        """Vectorized address/flag synthesis for one warp's whole program.

        Returns (addresses, is_store, is_lds) aligned arrays of length
        segments_per_warp * accesses_per_segment.
        """
        spec = self.spec
        base_key = np.uint64(
            mix_key(spec.seed, self.kernel_index, cta_id, warp_id)
        )
        lane = splitmix64_array(
            base_key
            ^ (self._seg * np.uint64(0x9E3779B97F4A7C15))
            ^ (self._slot * np.uint64(0xC2B2AE3D27D4EB4F))
        )
        pick = splitmix64_array(lane)
        store_key = splitmix64_array(lane ^ np.uint64(0x5A5A5A5A5A5A5A5A))
        lds_key = splitmix64_array(lane ^ np.uint64(0xA5A5A5A5A5A5A5A5))

        region = spec.cta_region_bytes
        region_lines = max(1, region // _LINE)
        base = cta_id * region

        position = (
            (
                np.uint64(self.kernel_index * spec.segments_per_warp)
                + self._seg
            )
            * np.uint64(max(1, spec.accesses_per_segment))
            + self._slot
        ) * np.uint64(spec.warps_per_cta) + np.uint64(warp_id)

        # Class 1: strided stream through the CTA's own slice.
        stream_offsets = (
            (position * np.uint64(spec.stride_lines)) % np.uint64(region_lines)
        ) * np.uint64(_LINE)
        stream_addr = np.uint64(base) + stream_offsets

        # Class 2: hot-block reuse within the slice.
        hot_lines = max(1, min(spec.hot_block_bytes, region) // _LINE)
        hot_idx = ((lane >> np.uint64(32)) * np.uint64(hot_lines)) >> np.uint64(32)
        reuse_addr = np.uint64(base) + hot_idx * np.uint64(_LINE)

        # Class 3: halo — adjacent CTA's slice at the same stream position.
        direction = np.where((lane & np.uint64(2)) == 0, 1, -1)
        partner = cta_id + direction
        partner = np.where(
            (partner < 0) | (partner >= spec.total_ctas),
            cta_id - direction,
            partner,
        ).astype(np.uint64)
        halo_offsets = (position % np.uint64(region_lines)) * np.uint64(_LINE)
        halo_addr = partner * np.uint64(region) + halo_offsets

        # Class 4: uniform random over the shared (interleaved) region.
        shared_lines = max(1, spec.shared_footprint_bytes // _LINE)
        shared_idx = (
            (splitmix64_array(lane ^ np.uint64(0x3C6EF372FE94F82B)) >> np.uint64(32))
            * np.uint64(shared_lines)
        ) >> np.uint64(32)
        shared_addr = np.uint64(self._shared_base) + shared_idx * np.uint64(_LINE)

        addresses = np.where(
            pick < self._t_stream,
            stream_addr,
            np.where(
                pick < self._t_reuse,
                reuse_addr,
                np.where(pick < self._t_halo, halo_addr, shared_addr),
            ),
        )
        is_store = (store_key < self._t_store) & (pick < self._t_stream)
        is_lds = lds_key < self._t_lds
        return addresses, is_store, is_lds

    def __call__(self, cta_id: int, warp_id: int) -> WarpProgram:
        spec = self.spec
        acc = spec.accesses_per_segment
        segments: list[Segment] = []
        if acc == 0:
            segment = Segment(compute=self._compute_counts)
            return WarpProgram([segment] * spec.segments_per_warp)

        addresses, is_store, is_lds = self._addresses(cta_id, warp_id)
        addr_list = addresses.tolist()
        store_list = is_store.tolist()
        lds_list = is_lds.tolist()
        index = 0
        for _segment in range(spec.segments_per_warp):
            accesses = []
            for _slot in range(acc):
                if lds_list[index]:
                    accesses.append(
                        MemAccess(
                            address=int(addr_list[index]) % (64 * 1024),
                            size=_LINE,
                            space=MemSpace.SHARED,
                        )
                    )
                else:
                    accesses.append(
                        MemAccess(
                            address=int(addr_list[index]),
                            size=_LINE,
                            is_store=bool(store_list[index]),
                        )
                    )
                index += 1
            segments.append(
                Segment(compute=self._compute_counts, accesses=tuple(accesses))
            )
        return WarpProgram(segments)


def build_workload(spec: WorkloadSpec) -> Workload:
    """Materialize a workload's kernel launch sequence from its spec."""
    if spec.kernels <= 0:
        raise TraceError(f"{spec.name}: needs at least one kernel")
    kernels = [
        Kernel(
            name=f"{spec.abbr}.k{index}",
            num_ctas=spec.total_ctas,
            warps_per_cta=spec.warps_per_cta,
            program_factory=WarpProgramBuilder(spec, index),
        )
        for index in range(spec.kernels)
    ]
    tags = ("short-kernels",) if spec.short_kernels else ()
    return Workload(
        name=spec.abbr,
        kernels=kernels,
        category=spec.category,
        description=spec.description,
        tags=tags,
        interleaved_base=shared_region_base(spec),
    )
