"""Turns a :class:`WorkloadSpec` into executable kernels and warp programs.

Address-space layout (per workload)::

    [0, footprint)                      CTA-partitioned arrays: CTA i owns
                                        the slice [i*region, (i+1)*region)
    [shared_base, +shared_footprint)    globally shared region (tables,
                                        graph edges, reduction targets)

Because CTAs are distributed in contiguous chunks and pages are placed first
touch, a CTA's own slice lands in its GPM's DRAM stack and halo accesses land
on the same GPM except at partition boundaries.  The shared region is marked
for page *interleaving* (``Workload.interleaved_base``): multi-GPU systems
stripe shared allocations across memories so no single module hotspots, and
under striping ~(N-1)/N of shared-region traffic is remote — the gather/graph
traffic class of the NUMA-GPU papers.

Address streams are generated **vectorized per CTA chunk** with SplitMix64
over structured keys: a warp's program is a pure function of (workload seed,
kernel, CTA, warp), identical across runs and GPM counts — strong scaling
must present the same memory behaviour to every configuration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.isa.kernel import Kernel, Workload
from repro.isa.opcodes import MemSpace, Opcode
from repro.isa.program import MemAccess, Segment, WarpProgram
from repro.units import CACHE_LINE_BYTES, PAGE_BYTES
from repro.workloads.patterns import mix_key, splitmix64_array
from repro.workloads.spec import WorkloadSpec

_U64 = float(1 << 64)
_LINE = CACHE_LINE_BYTES


def _apportion_mix(mix: dict[Opcode, float], total: int) -> dict[Opcode, int]:
    """Largest-remainder apportionment of ``total`` instructions over a mix."""
    if total == 0:
        return {}
    weight_sum = sum(mix.values())
    shares = {
        opcode: total * weight / weight_sum for opcode, weight in mix.items()
    }
    counts = {opcode: int(share) for opcode, share in shares.items()}
    shortfall = total - sum(counts.values())
    by_remainder = sorted(
        mix, key=lambda opcode: shares[opcode] - counts[opcode], reverse=True
    )
    for opcode in by_remainder[:shortfall]:
        counts[opcode] += 1
    return {opcode: count for opcode, count in counts.items() if count > 0}


def shared_region_base(spec: WorkloadSpec) -> int:
    """Start address of the workload's shared (interleaved) region."""
    footprint_pages = (spec.footprint_bytes + PAGE_BYTES - 1) // PAGE_BYTES
    return (footprint_pages + 1) * PAGE_BYTES


class WarpProgramBuilder:
    """``program_factory`` for one kernel of one workload.

    One builder is attached to each :class:`~repro.isa.kernel.Kernel` and
    invoked lazily as CTAs are dispatched.  Address synthesis is vectorized
    over *chunks* of :attr:`CHUNK_CTAS` consecutive CTAs at once (all warps,
    all segments): every synthesized value is a pure elementwise function of
    (seed, kernel, CTA, warp, position), so the batched math is bit-identical
    to computing each warp alone, while one numpy pass over
    ``chunk * warps * accesses`` elements amortizes the array-call overhead
    that dominates when arrays are one warp long.  Chunks are cached (bounded
    by :attr:`MAX_CHUNKS`, oldest evicted) so a 32-GPM run still never holds
    the full trace in memory.
    """

    #: Consecutive CTAs synthesized per vectorized batch.  Partitions are
    #: contiguous and consumed in order, so aligned chunks get near-perfect
    #: reuse before eviction.
    CHUNK_CTAS = 16

    #: Resident-chunk bound: one in-flight chunk per GPM partition (up to 32
    #: modules) plus slack for partition-boundary overlap.
    MAX_CHUNKS = 64

    def __init__(self, spec: WorkloadSpec, kernel_index: int):
        self.spec = spec
        self.kernel_index = kernel_index
        self._compute_counts = _apportion_mix(
            spec.compute_mix, spec.compute_per_segment
        )
        self._shared_base = shared_region_base(spec)
        def threshold(fraction: float) -> np.uint64:
            """Cumulative-fraction threshold for strict `key < t` selection."""
            return np.uint64(min(int(fraction * _U64), (1 << 64) - 1))

        self._t_stream = threshold(spec.frac_stream)
        self._t_reuse = threshold(spec.frac_stream + spec.frac_reuse)
        self._t_halo = threshold(
            spec.frac_stream + spec.frac_reuse + spec.frac_halo
        )
        self._t_store = threshold(spec.store_fraction)
        self._t_lds = threshold(spec.shared_mem_fraction)
        acc = spec.accesses_per_segment
        n = spec.segments_per_warp * acc
        self._seg = np.arange(n, dtype=np.uint64) // np.uint64(max(1, acc))
        self._slot = np.arange(n, dtype=np.uint64) % np.uint64(max(1, acc))
        # Key/position components that do not depend on the CTA or warp are
        # folded once so per-chunk synthesis is pure elementwise work.
        self._lane_mix = (
            self._seg * np.uint64(0x9E3779B97F4A7C15)
        ) ^ (self._slot * np.uint64(0xC2B2AE3D27D4EB4F))
        self._position_base = (
            (np.uint64(kernel_index * spec.segments_per_warp) + self._seg)
            * np.uint64(max(1, acc))
            + self._slot
        ) * np.uint64(spec.warps_per_cta)
        self._warp_ids = np.arange(
            spec.warps_per_cta, dtype=np.uint64
        ).reshape(1, spec.warps_per_cta, 1)
        # Validate the compute mix once (Segment rejects non-compute opcodes
        # and negative counts); every segment then reuses the aggregate costs
        # through Segment.prebuilt.
        probe = Segment(compute=self._compute_counts)
        self._segment_slots = probe.issue_slots + float(acc)
        self._segment_instructions = probe.total_instructions + acc
        self._empty_program = (
            WarpProgram([probe] * spec.segments_per_warp) if acc == 0 else None
        )
        self._chunks: dict[int, list[list[WarpProgram]]] = {}

    def _synthesize(self, cta_lo: int, cta_hi: int):
        """Vectorized address/flag synthesis for a run of consecutive CTAs.

        Returns (addresses, is_store, is_lds) aligned arrays of shape
        ``(cta_hi - cta_lo, warps_per_cta, segments * accesses)``.
        """
        spec = self.spec
        num = cta_hi - cta_lo
        warps = spec.warps_per_cta
        seed = spec.seed
        kernel = self.kernel_index
        keys = np.array(
            [
                mix_key(seed, kernel, cta_id, warp_id)
                for cta_id in range(cta_lo, cta_hi)
                for warp_id in range(warps)
            ],
            dtype=np.uint64,
        ).reshape(num, warps, 1)
        lane = splitmix64_array(keys ^ self._lane_mix)
        pick = splitmix64_array(lane)
        store_key = splitmix64_array(lane ^ np.uint64(0x5A5A5A5A5A5A5A5A))
        lds_key = splitmix64_array(lane ^ np.uint64(0xA5A5A5A5A5A5A5A5))

        region = spec.cta_region_bytes
        region_lines = max(1, region // _LINE)
        ctas_u64 = np.arange(cta_lo, cta_hi, dtype=np.uint64).reshape(num, 1, 1)
        ctas_i64 = np.arange(cta_lo, cta_hi, dtype=np.int64).reshape(num, 1, 1)
        bases = ctas_u64 * np.uint64(region)

        position = self._position_base + self._warp_ids

        # Class 1: strided stream through the CTA's own slice.
        stream_offsets = (
            (position * np.uint64(spec.stride_lines)) % np.uint64(region_lines)
        ) * np.uint64(_LINE)
        stream_addr = bases + stream_offsets

        # Class 2: hot-block reuse within the slice.
        hot_lines = max(1, min(spec.hot_block_bytes, region) // _LINE)
        hot_idx = ((lane >> np.uint64(32)) * np.uint64(hot_lines)) >> np.uint64(32)
        reuse_addr = bases + hot_idx * np.uint64(_LINE)

        # Class 3: halo — adjacent CTA's slice at the same stream position.
        direction = np.where((lane & np.uint64(2)) == 0, 1, -1)
        partner = ctas_i64 + direction
        partner = np.where(
            (partner < 0) | (partner >= spec.total_ctas),
            ctas_i64 - direction,
            partner,
        ).astype(np.uint64)
        halo_offsets = (position % np.uint64(region_lines)) * np.uint64(_LINE)
        halo_addr = partner * np.uint64(region) + halo_offsets

        # Class 4: uniform random over the shared (interleaved) region.
        shared_lines = max(1, spec.shared_footprint_bytes // _LINE)
        shared_idx = (
            (splitmix64_array(lane ^ np.uint64(0x3C6EF372FE94F82B)) >> np.uint64(32))
            * np.uint64(shared_lines)
        ) >> np.uint64(32)
        shared_addr = np.uint64(self._shared_base) + shared_idx * np.uint64(_LINE)

        addresses = np.where(
            pick < self._t_stream,
            stream_addr,
            np.where(
                pick < self._t_reuse,
                reuse_addr,
                np.where(pick < self._t_halo, halo_addr, shared_addr),
            ),
        )
        is_store = (store_key < self._t_store) & (pick < self._t_stream)
        is_lds = lds_key < self._t_lds
        return addresses, is_store, is_lds

    def _build_chunk(self, start: int) -> list[list[WarpProgram]]:
        """Materialize programs for CTAs ``[start, start + CHUNK_CTAS)``."""
        spec = self.spec
        end = min(start + self.CHUNK_CTAS, spec.total_ctas)
        addresses, is_store, is_lds = self._synthesize(start, end)
        addr_list = addresses.tolist()
        store_list = is_store.tolist()
        lds_list = is_lds.tolist()
        segs = spec.segments_per_warp
        acc = spec.accesses_per_segment
        warps = spec.warps_per_cta
        compute = self._compute_counts
        slots = self._segment_slots
        instructions = self._segment_instructions
        prebuilt = Segment.prebuilt
        shared = MemSpace.SHARED
        chunk: list[list[WarpProgram]] = []
        for cta_offset in range(end - start):
            cta_addr = addr_list[cta_offset]
            cta_store = store_list[cta_offset]
            cta_lds = lds_list[cta_offset]
            programs: list[WarpProgram] = []
            for warp in range(warps):
                addr_row = cta_addr[warp]
                store_row = cta_store[warp]
                lds_row = cta_lds[warp]
                index = 0
                segments: list[Segment] = []
                for _segment in range(segs):
                    accesses = []
                    append = accesses.append
                    for _slot in range(acc):
                        if lds_row[index]:
                            append(
                                MemAccess(
                                    addr_row[index] % (64 * 1024),
                                    _LINE,
                                    space=shared,
                                )
                            )
                        else:
                            append(
                                MemAccess(
                                    addr_row[index], _LINE, store_row[index]
                                )
                            )
                        index += 1
                    segments.append(
                        prebuilt(compute, tuple(accesses), slots, instructions)
                    )
                programs.append(WarpProgram(segments))
            chunk.append(programs)
        return chunk

    def _cta_programs(self, cta_id: int) -> list[WarpProgram]:
        start = cta_id - cta_id % self.CHUNK_CTAS
        chunks = self._chunks
        chunk = chunks.get(start)
        if chunk is None:
            chunk = self._build_chunk(start)
            chunks[start] = chunk
            if len(chunks) > self.MAX_CHUNKS:
                del chunks[next(iter(chunks))]
        return chunk[cta_id - start]

    def prewarm(self) -> None:
        """Materialize every chunk now, if the whole grid fits the cache.

        Kernels whose chunk count fits :attr:`MAX_CHUNKS` would end up fully
        resident anyway; synthesizing them eagerly moves the chunk builds out
        of the simulation loop (where they are pure overhead in throughput
        accounting) into workload construction.  Larger grids keep the lazy
        bounded-cache behaviour — never the full trace in memory.
        """
        if self._empty_program is not None:
            return
        total_chunks = -(-self.spec.total_ctas // self.CHUNK_CTAS)
        if total_chunks > self.MAX_CHUNKS:
            return
        for start in range(0, self.spec.total_ctas, self.CHUNK_CTAS):
            if start not in self._chunks:
                self._chunks[start] = self._build_chunk(start)

    def build_cta(self, cta_id: int) -> list[WarpProgram]:
        """All warp programs of one CTA, in warp order.

        The returned list may be shared with the builder's chunk cache —
        callers must treat it as read-only.
        """
        if self._empty_program is not None:
            return [self._empty_program] * self.spec.warps_per_cta
        return self._cta_programs(cta_id)

    def __call__(self, cta_id: int, warp_id: int) -> WarpProgram:
        if self._empty_program is not None:
            return self._empty_program
        return self._cta_programs(cta_id)[warp_id]


def build_workload(spec: WorkloadSpec) -> Workload:
    """Materialize a workload's kernel launch sequence from its spec.

    Phase-scheduled specs expand into one kernel per schedule slot, each
    generated from that phase's effective spec; the *global* kernel index
    keys the address/mix synthesis, so two phases never replay the same
    stream even when their overrides coincide.  The footprint (and with it
    the interleaved shared-region base) is global to the spec, so every
    phase sees the same KV-cache-like shared region.
    """
    if spec.kernels <= 0:
        raise TraceError(f"{spec.name}: needs at least one kernel")
    kernels = []
    for index, kernel_spec in enumerate(spec.kernel_specs()):
        builder = WarpProgramBuilder(kernel_spec, index)
        builder.prewarm()
        kernels.append(
            Kernel(
                name=f"{spec.abbr}.k{index}",
                num_ctas=kernel_spec.total_ctas,
                warps_per_cta=kernel_spec.warps_per_cta,
                program_factory=builder,
            )
        )
    tags = ("short-kernels",) if spec.short_kernels else ()
    return Workload(
        name=spec.abbr,
        kernels=kernels,
        category=spec.category,
        description=spec.description,
        tags=tags,
        interleaved_base=shared_region_base(spec),
    )
