"""LLM-inference-shaped workloads: prefill/decode phases and tenant mixes.

The 18 Table II applications run one homogeneous kernel schedule; LLM
serving does not.  A request alternates between two regimes with opposite
resource shapes:

* **prefill** — the prompt is processed in large batched GEMMs:
  compute-dense, high CTA parallelism, streaming weight reads.  Maps to a
  phase with many CTAs, a deep FFMA/tensor-style mix, and stream-dominant
  accesses.
* **decode** — one token at a time against a growing KV cache:
  memory-latency bound, very few CTAs (batch≈1 per user), and most traffic
  is re-reads of a region *every* GPM touches.  Maps to a phase with few
  CTAs, a load-heavy segment, and shared-region-dominant accesses — the
  interleaved shared region plays the KV cache, so under first touch its
  pages scatter across GPMs exactly like the paper's ``frac_shared``
  traffic class.

The multi-tenant composer interleaves phase schedules from independent
"users" (one power cap — ``GpuConfig.power_cap_watts`` — over all of them),
with per-tenant seed offsets so no two tenants replay the same address
stream.  These shapes stress the capping governor and the idle governors
(decode waves straggle; prefill bursts sprint) in ways uniform kernels
cannot — see ``docs/WORKLOADS.md``.

The registry here is deliberately separate from ``WORKLOAD_SPECS``: the
Table II suite feeds the paper's scaling/validation figures and must not
change membership, while these specs feed the ``llmstudy`` figure and the
service.  ``suite.get_spec`` consults both.
"""

from __future__ import annotations

import zlib

from repro.errors import ConfigError
from repro.isa.kernel import WorkloadCategory
from repro.isa.opcodes import Opcode
from repro.workloads.spec import PhaseSpec, WorkloadSpec

#: Phase names the generators (and service recipes) understand.
PHASE_NAMES = ("prefill", "decode")

#: Compute-dense prefill mix: batched GEMM inner loops.
PREFILL_MIX = {Opcode.FFMA32: 0.8, Opcode.FADD32: 0.1, Opcode.IMAD32: 0.1}

#: Decode mix: address math dominates the little compute there is.
DECODE_MIX = {Opcode.IMAD32: 0.6, Opcode.FFMA32: 0.4}


def prefill_phase(
    ctas: int = 1024,
    kernels: int = 2,
    name: str = "prefill",
    seed_offset: int = 0,
) -> PhaseSpec:
    """A compute-dense, high-parallelism prompt-processing phase."""
    return PhaseSpec(
        name=name,
        kernels=kernels,
        total_ctas=ctas,
        compute_per_segment=16,
        compute_mix=dict(PREFILL_MIX),
        accesses_per_segment=2,
        frac_stream=0.8,
        frac_reuse=0.1,
        frac_halo=0.0,
        frac_shared=0.1,
        store_fraction=0.15,
        seed_offset=seed_offset,
    )


def decode_phase(
    ctas: int = 32,
    kernels: int = 4,
    name: str = "decode",
    seed_offset: int = 0,
) -> PhaseSpec:
    """A memory-latency-bound, KV-cache-streaming token-generation phase."""
    return PhaseSpec(
        name=name,
        kernels=kernels,
        total_ctas=ctas,
        compute_per_segment=2,
        compute_mix=dict(DECODE_MIX),
        accesses_per_segment=8,
        frac_stream=0.15,
        frac_reuse=0.1,
        frac_halo=0.0,
        frac_shared=0.75,
        store_fraction=0.05,
        seed_offset=seed_offset,
    )


def make_phase(
    phase: str, ctas: int, kernels: int, name: str | None = None,
    seed_offset: int = 0,
) -> PhaseSpec:
    """Build one named phase; rejects unknown phase names up front."""
    if phase not in PHASE_NAMES:
        raise ConfigError(
            f"unknown phase name {phase!r}; known: {list(PHASE_NAMES)}"
        )
    builder = prefill_phase if phase == "prefill" else decode_phase
    return builder(
        ctas=ctas, kernels=kernels, name=name or phase,
        seed_offset=seed_offset,
    )


def _llm_base(
    name: str,
    abbr: str,
    description: str,
    phases: tuple[PhaseSpec, ...],
    category: WorkloadCategory = WorkloadCategory.MEMORY,
    total_ctas: int = 1024,
    seed: int = 17,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        abbr=abbr,
        category=category,
        description=description,
        input_label="synthetic serving trace",
        total_ctas=total_ctas,
        warps_per_cta=4,
        segments_per_warp=12,
        footprint_bytes=64 * 1024 * 1024,   # model weights + activations
        shared_footprint_bytes=16 * 1024 * 1024,  # the KV cache
        hot_block_bytes=8 * 1024,
        phases=phases,
        seed=seed,
    )


def serving_spec(
    rounds: int = 2,
    prefill_ctas: int = 1024,
    prefill_kernels: int = 2,
    decode_ctas: int = 32,
    decode_kernels: int = 4,
    abbr: str = "LLMServe",
) -> WorkloadSpec:
    """Phase-alternating serving: prefill burst, then a decode tail, × rounds."""
    if rounds <= 0:
        raise ConfigError(f"serving rounds must be positive, got {rounds}")
    phases = []
    for round_index in range(rounds):
        phases.append(prefill_phase(
            ctas=prefill_ctas, kernels=prefill_kernels,
            name=f"prefill{round_index}", seed_offset=2 * round_index,
        ))
        phases.append(decode_phase(
            ctas=decode_ctas, kernels=decode_kernels,
            name=f"decode{round_index}", seed_offset=2 * round_index + 1,
        ))
    return _llm_base(
        name="LLM serving (prefill/decode alternation)",
        abbr=abbr,
        description=(
            "Phase-alternating LLM inference: compute-dense prefill bursts"
            " followed by memory-latency-bound decode tails over a shared"
            " KV-cache region."
        ),
        phases=tuple(phases),
        total_ctas=prefill_ctas,
    )


def tenant_seed_offset(client: str, index: int) -> int:
    """Deterministic per-tenant seed decorrelation (stable across runs)."""
    return (zlib.crc32(client.encode("utf-8")) & 0x3FF) + 7 * index


def validate_clients(clients: tuple[str, ...]) -> tuple[str, ...]:
    """Check a tenant list: non-empty, string ids, no duplicates."""
    clients = tuple(clients)
    if not clients:
        raise ConfigError("tenant list must name at least one client")
    for client in clients:
        if not isinstance(client, str) or not client:
            raise ConfigError("tenant client ids must be non-empty strings")
    duplicates = sorted({c for c in clients if clients.count(c) > 1})
    if duplicates:
        raise ConfigError(
            f"duplicate tenant client id(s): {', '.join(duplicates)}"
        )
    return clients


def schedule_spec(
    entries: tuple[tuple[str, int, int], ...] | list,
    clients: tuple[str, ...] | list[str] | None = None,
    abbr: str = "LLMCustom",
) -> WorkloadSpec:
    """Build a phased spec from explicit (phase, ctas, kernels) entries.

    This is the wire-recipe composer behind ``repro submit --phases``: each
    entry names a known phase shape with its CTA count and kernel count.
    With ``clients``, the whole schedule is replicated per tenant with
    seed-decorrelated streams (every validation error — unknown phase name,
    zero-CTA phase, duplicate client id — raises ``ConfigError`` here, at
    composition time, never later inside the engine).
    """
    entries = tuple(tuple(entry) for entry in entries)
    if not entries:
        raise ConfigError("phase schedule must name at least one phase")
    phases = []
    if clients is None:
        for index, (phase, ctas, kernels) in enumerate(entries):
            phases.append(make_phase(
                phase, ctas=ctas, kernels=kernels,
                name=f"{phase}{index}", seed_offset=index,
            ))
    else:
        clients = validate_clients(clients)
        for tenant_index, client in enumerate(clients):
            base_offset = tenant_seed_offset(client, tenant_index)
            for index, (phase, ctas, kernels) in enumerate(entries):
                phases.append(make_phase(
                    phase, ctas=ctas, kernels=kernels,
                    name=f"{client}.{phase}{index}",
                    seed_offset=base_offset + index,
                ))
    label = "custom phase schedule" if clients is None else (
        f"custom phase schedule x {len(clients)} tenants"
    )
    return _llm_base(
        name=f"LLM serving ({label})",
        abbr=abbr,
        description="Recipe-composed LLM phase schedule.",
        phases=tuple(phases),
        total_ctas=max(ctas for _phase, ctas, _kernels in entries),
    )


def multi_tenant_spec(
    clients: tuple[str, ...] | list[str],
    prefill_ctas: int = 256,
    prefill_kernels: int = 1,
    decode_ctas: int = 16,
    decode_kernels: int = 2,
    abbr: str = "LLMTenants",
) -> WorkloadSpec:
    """Interleave prefill/decode schedules from independent users.

    Kernels alternate tenant-by-tenant (round-robin over clients, prefill
    round first, then the decode rounds), modeling concurrent requests
    multiplexed onto one chip under one ``power_cap_watts``.  Duplicate
    client ids are rejected: each tenant must contribute an independent
    (seed-decorrelated) stream.
    """
    clients = validate_clients(tuple(clients))
    phases = []
    for index, client in enumerate(clients):
        phases.append(prefill_phase(
            ctas=prefill_ctas, kernels=prefill_kernels,
            name=f"{client}.prefill",
            seed_offset=tenant_seed_offset(client, index),
        ))
    for index, client in enumerate(clients):
        phases.append(decode_phase(
            ctas=decode_ctas, kernels=decode_kernels,
            name=f"{client}.decode",
            seed_offset=tenant_seed_offset(client, index) + 1,
        ))
    return _llm_base(
        name=f"LLM multi-tenant mix ({len(clients)} users)",
        abbr=abbr,
        description=(
            "Concurrent LLM users sharing one chip: per-tenant prefill"
            " bursts followed by interleaved decode tails, all under the"
            " configured power cap."
        ),
        phases=tuple(phases),
        total_ctas=max(prefill_ctas, decode_ctas),
    )


#: The registry the suite's lookup helpers merge with ``WORKLOAD_SPECS``.
LLM_WORKLOAD_SPECS: dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    LLM_WORKLOAD_SPECS[spec.abbr] = spec


_register(_llm_base(
    name="LLM prefill (prompt processing)",
    abbr="LLMPrefill",
    description=(
        "Pure prompt-processing: batched-GEMM-shaped compute-dense kernels"
        " at high CTA parallelism."
    ),
    category=WorkloadCategory.COMPUTE,
    phases=(prefill_phase(kernels=4),),
))

_register(_llm_base(
    name="LLM decode (token generation)",
    abbr="LLMDecode",
    description=(
        "Pure token generation: few-CTA, memory-latency-bound kernels"
        " streaming a KV-cache-like shared region."
    ),
    phases=(decode_phase(kernels=8),),
    total_ctas=32,
))

_register(serving_spec())

_register(multi_tenant_spec(("tenant0", "tenant1", "tenant2")))
