"""The Table II workload suite (plus LLM serving) as synthetic traces."""

from repro.workloads.spec import PhaseSpec, WorkloadSpec
from repro.workloads.generator import build_workload
from repro.workloads.llm import (
    LLM_WORKLOAD_SPECS,
    decode_phase,
    multi_tenant_spec,
    prefill_phase,
    serving_spec,
)
from repro.workloads.suite import (
    SCALING_SUBSET,
    WORKLOAD_SPECS,
    all_specs,
    get_spec,
    scaling_workloads,
    validation_workloads,
)

__all__ = [
    "PhaseSpec",
    "WorkloadSpec",
    "build_workload",
    "LLM_WORKLOAD_SPECS",
    "decode_phase",
    "multi_tenant_spec",
    "prefill_phase",
    "serving_spec",
    "SCALING_SUBSET",
    "WORKLOAD_SPECS",
    "all_specs",
    "get_spec",
    "scaling_workloads",
    "validation_workloads",
]
