"""The Table II workload suite as parameterized synthetic traces."""

from repro.workloads.spec import WorkloadSpec
from repro.workloads.generator import build_workload
from repro.workloads.suite import (
    SCALING_SUBSET,
    WORKLOAD_SPECS,
    get_spec,
    scaling_workloads,
    validation_workloads,
)

__all__ = [
    "WorkloadSpec",
    "build_workload",
    "SCALING_SUBSET",
    "WORKLOAD_SPECS",
    "get_spec",
    "scaling_workloads",
    "validation_workloads",
]
