"""Workload specifications: the macro-characteristics knobs of each trace.

A :class:`WorkloadSpec` captures everything the scaling study actually depends
on about an application: its instruction mix, memory intensity, working-set
footprint, temporal locality, inter-CTA sharing (which becomes inter-GPM
traffic under distributed scheduling + first-touch placement), and its kernel
launch structure.  The generator turns a spec into concrete warp programs.

Access-type fractions partition every warp's global accesses:

* ``frac_stream`` — sequential sweep of the CTA's own partition (compulsory
  misses; perfectly local under first touch).
* ``frac_reuse`` — re-accesses of a small per-CTA hot block (cache-friendly).
* ``frac_halo`` — accesses to an adjacent CTA's partition (stencil halos);
  remote only when the neighbor CTA landed on another GPM, so the remote
  share of halo traffic is ~2/num_ctas_per_gpm — growing with GPM count
  exactly like a surface-to-volume ratio.
* ``frac_shared`` — uniform random accesses into a globally shared region
  (graph edges, lookup tables, reduction targets); under first touch its
  pages scatter across GPMs, making ~(N-1)/N of this traffic remote.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.isa.kernel import WorkloadCategory
from repro.isa.opcodes import Opcode

#: WorkloadSpec fields a phase may override (everything shape-local; the
#: footprint stays global so the interleaved shared region has one base).
PHASE_OVERRIDABLE = (
    "total_ctas",
    "warps_per_cta",
    "segments_per_warp",
    "compute_per_segment",
    "compute_mix",
    "accesses_per_segment",
    "shared_footprint_bytes",
    "hot_block_bytes",
    "frac_stream",
    "frac_reuse",
    "frac_halo",
    "frac_shared",
    "store_fraction",
    "shared_mem_fraction",
    "stride_lines",
)

_FRACTION_FIELDS = ("frac_stream", "frac_reuse", "frac_halo", "frac_shared")


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a phase-scheduled workload (e.g. prefill or decode).

    A phase names a contiguous run of ``kernels`` kernel launches and may
    override the shape-local knobs of the parent :class:`WorkloadSpec`
    (``None`` means "inherit").  The four access fractions must be
    overridden together or not at all, since they partition the accesses.
    ``seed_offset`` decorrelates the phase's (and, through the multi-tenant
    composer, each tenant's) address streams from the parent seed.
    """

    name: str
    kernels: int = 1
    total_ctas: int | None = None
    warps_per_cta: int | None = None
    segments_per_warp: int | None = None
    compute_per_segment: int | None = None
    compute_mix: dict[Opcode, float] | None = None
    accesses_per_segment: int | None = None
    shared_footprint_bytes: int | None = None
    hot_block_bytes: int | None = None
    frac_stream: float | None = None
    frac_reuse: float | None = None
    frac_halo: float | None = None
    frac_shared: float | None = None
    store_fraction: float | None = None
    shared_mem_fraction: float | None = None
    stride_lines: int | None = None
    seed_offset: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("phase name must be non-empty")
        overridden = [
            field_name for field_name in _FRACTION_FIELDS
            if getattr(self, field_name) is not None
        ]
        if overridden and len(overridden) != len(_FRACTION_FIELDS):
            raise ConfigError(
                f"phase {self.name!r}: access fractions must be overridden"
                " together (they partition the accesses)"
            )

    def overrides(self) -> dict:
        """The non-``None`` :data:`PHASE_OVERRIDABLE` fields, by name."""
        return {
            field_name: getattr(self, field_name)
            for field_name in PHASE_OVERRIDABLE
            if getattr(self, field_name) is not None
        }


@dataclass(frozen=True)
class WorkloadSpec:
    """Parametric description of one Table II application."""

    name: str
    abbr: str
    category: WorkloadCategory
    description: str = ""
    input_label: str = ""

    # -- launch structure -----------------------------------------------------
    total_ctas: int = 2048
    warps_per_cta: int = 4
    kernels: int = 3
    segments_per_warp: int = 15   # per kernel
    short_kernels: bool = False   # many sub-sensor-window launches (Fig. 4b)

    # -- compute behaviour ----------------------------------------------------
    compute_per_segment: int = 8
    compute_mix: dict[Opcode, float] = field(
        default_factory=lambda: {Opcode.FFMA32: 1.0}
    )

    # -- memory behaviour -----------------------------------------------------
    accesses_per_segment: int = 4
    footprint_bytes: int = 32 * 1024 * 1024
    shared_footprint_bytes: int = 4 * 1024 * 1024
    hot_block_bytes: int = 4 * 1024
    frac_stream: float = 0.7
    frac_reuse: float = 0.1
    frac_halo: float = 0.1
    frac_shared: float = 0.1
    store_fraction: float = 0.2
    shared_mem_fraction: float = 0.0   # of all accesses, diverted to LDS
    stride_lines: int = 1

    #: Optional phase schedule (LLM-style serving: prefill/decode/tenant
    #: interleavings).  When set, ``kernels`` is derived as the sum of the
    #: per-phase kernel counts and each kernel is generated from that
    #: phase's *effective* spec (the parent spec with the phase overrides
    #: applied — see :meth:`phase_specs`).
    phases: tuple[PhaseSpec, ...] | None = None

    seed: int = 1

    def __post_init__(self) -> None:
        if self.phases is not None:
            if not self.phases:
                raise ConfigError(
                    f"{self.name}: phase schedule must name at least one phase"
                )
            object.__setattr__(
                self, "phases", tuple(self.phases)
            )
            object.__setattr__(
                self, "kernels", sum(phase.kernels for phase in self.phases)
            )
            # Building every effective spec validates each phase eagerly
            # (a zero-CTA decode phase fails here, at construction, not
            # deep inside the generator).
            self.phase_specs()
        if self.total_ctas <= 0 or self.warps_per_cta <= 0:
            raise ConfigError(f"{self.name}: grid dimensions must be positive")
        if self.kernels <= 0 or self.segments_per_warp <= 0:
            raise ConfigError(f"{self.name}: kernel structure must be positive")
        if self.compute_per_segment < 0 or self.accesses_per_segment < 0:
            raise ConfigError(f"{self.name}: negative per-segment work")
        if self.compute_per_segment == 0 and self.accesses_per_segment == 0:
            raise ConfigError(f"{self.name}: segments would be empty")
        if not self.compute_mix and self.compute_per_segment > 0:
            raise ConfigError(f"{self.name}: compute mix is empty")
        for opcode, weight in self.compute_mix.items():
            if not opcode.is_compute:
                raise ConfigError(
                    f"{self.name}: {opcode} is not a compute opcode"
                )
            if weight <= 0:
                raise ConfigError(f"{self.name}: non-positive mix weight")
        fractions = (
            self.frac_stream + self.frac_reuse + self.frac_halo + self.frac_shared
        )
        if abs(fractions - 1.0) > 1e-9:
            raise ConfigError(
                f"{self.name}: access fractions sum to {fractions}, not 1.0"
            )
        for frac_name in ("store_fraction", "shared_mem_fraction"):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{self.name}: {frac_name} out of [0, 1]")
        if self.footprint_bytes < self.total_ctas * 128:
            raise ConfigError(
                f"{self.name}: footprint smaller than one line per CTA"
            )
        if self.hot_block_bytes <= 0 or self.shared_footprint_bytes <= 0:
            raise ConfigError(f"{self.name}: region sizes must be positive")
        if self.stride_lines <= 0:
            raise ConfigError(f"{self.name}: stride_lines must be positive")

    # ---------------------------------------------------------------- derived

    def phase_specs(self) -> tuple[tuple[PhaseSpec, "WorkloadSpec"], ...]:
        """Each phase paired with its *effective* (flat) spec.

        The effective spec is this spec with the phase's overrides applied,
        ``kernels`` set to the phase's kernel count, the seed offset folded
        in, and ``phases`` cleared — so it is an ordinary single-schedule
        spec the generator (and its validation) already understands.
        """
        if self.phases is None:
            return ()
        return tuple(
            (
                phase,
                dataclasses.replace(
                    self,
                    name=f"{self.name}:{phase.name}",
                    kernels=phase.kernels,
                    seed=self.seed + phase.seed_offset,
                    phases=None,
                    **phase.overrides(),
                ),
            )
            for phase in self.phases
        )

    def kernel_specs(self) -> tuple["WorkloadSpec", ...]:
        """The effective spec governing each kernel launch, in launch order.

        Flat specs repeat themselves ``kernels`` times; phased specs expand
        the schedule.  ``len(spec.kernel_specs()) == spec.kernels`` always.
        """
        if self.phases is None:
            return (self,) * self.kernels
        return tuple(
            effective
            for phase, effective in self.phase_specs()
            for _ in range(phase.kernels)
        )

    @property
    def cta_region_bytes(self) -> int:
        """Bytes of the partitioned footprint owned by each CTA."""
        return (self.footprint_bytes // self.total_ctas) // 128 * 128

    @property
    def total_warp_instructions(self) -> int:
        """Total dynamic warp instructions across the whole workload."""
        if self.phases is not None:
            return sum(
                effective.total_warp_instructions
                for _phase, effective in self.phase_specs()
            )
        per_segment = self.compute_per_segment + self.accesses_per_segment
        return (
            self.total_ctas
            * self.warps_per_cta
            * self.kernels
            * self.segments_per_warp
            * per_segment
        )

    @property
    def total_accesses(self) -> int:
        if self.phases is not None:
            return sum(
                effective.total_accesses
                for _phase, effective in self.phase_specs()
            )
        return (
            self.total_ctas
            * self.warps_per_cta
            * self.kernels
            * self.segments_per_warp
            * self.accesses_per_segment
        )

    @property
    def memory_intensity(self) -> float:
        """Accesses per instruction — the C/M axis of Table II."""
        total = self.total_warp_instructions
        return 0.0 if total == 0 else self.total_accesses / total

    def expected_shared_remote_fraction(self, num_gpms: int) -> float:
        """Remote share of ``frac_shared`` traffic under first touch."""
        if num_gpms <= 1:
            return 0.0
        return (num_gpms - 1) / num_gpms
