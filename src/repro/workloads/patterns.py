"""Deterministic access-pattern primitives for the workload generators.

All randomness is derived from SplitMix64 over structured keys, so a warp's
address stream is a pure function of (workload seed, kernel, CTA, warp,
position) — identical across runs, machines, and GPM counts.  That last
property matters: strong scaling must present *the same* memory behaviour to
every configuration, or speedups would be generator artifacts.
"""

from __future__ import annotations

import numpy as np

_MASK64 = (1 << 64) - 1


def splitmix64(state: int) -> int:
    """One SplitMix64 step: a high-quality 64-bit mix of the input."""
    z = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def mix_key(*parts: int) -> int:
    """Fold several integers into one 64-bit key (order-sensitive)."""
    state = 0x243F6A8885A308D3
    for part in parts:
        state = splitmix64((state ^ (part & _MASK64)) & _MASK64)
    return state


def uniform_index(key: int, n: int) -> int:
    """Map a 64-bit key to a uniform index in [0, n)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return (splitmix64(key) * n) >> 64


def stream_offset(position: int, region_bytes: int, line_bytes: int) -> int:
    """Sequential streaming offset: wraps around the region line by line."""
    lines = region_bytes // line_bytes
    if lines == 0:
        return 0
    return (position % lines) * line_bytes


def strided_offset(
    position: int, region_bytes: int, line_bytes: int, stride_lines: int
) -> int:
    """Strided sweep covering the region with a fixed line stride.

    A stride co-prime with the line count visits every line exactly once per
    wrap, like column-major traversal of a row-major array.
    """
    lines = region_bytes // line_bytes
    if lines == 0:
        return 0
    return ((position * stride_lines) % lines) * line_bytes


def hot_block_offset(
    key: int, block_bytes: int, line_bytes: int
) -> int:
    """Random offset within a small hot block (temporal-reuse traffic)."""
    lines = max(1, block_bytes // line_bytes)
    return uniform_index(key, lines) * line_bytes


def random_offset(key: int, region_bytes: int, line_bytes: int) -> int:
    """Uniform random line offset within a region (graph/gather traffic)."""
    lines = max(1, region_bytes // line_bytes)
    return uniform_index(key, lines) * line_bytes


def splitmix64_array(states: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 over a uint64 array (wrapping arithmetic)."""
    z = (states + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)).astype(
        np.uint64
    )
    z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)).astype(
        np.uint64
    )
    return z ^ (z >> np.uint64(31))


def uniform_indices(keys: np.ndarray, n: int) -> np.ndarray:
    """Vectorized map of 64-bit keys to uniform indices in [0, n).

    Uses the top bits via 128-bit-free arithmetic: multiply-shift on the high
    32 bits, which is unbiased enough for trace synthesis.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    high = (splitmix64_array(keys) >> np.uint64(32)).astype(np.uint64)
    return ((high * np.uint64(n)) >> np.uint64(32)).astype(np.int64)


def neighbor_cta(cta_id: int, num_ctas: int, key: int) -> int:
    """A halo partner: one of the two adjacent CTAs, clamped at grid edges."""
    if num_ctas == 1:
        return 0
    direction = 1 if (splitmix64(key) & 1) == 0 else -1
    partner = cta_id + direction
    if partner < 0 or partner >= num_ctas:
        partner = cta_id - direction
    return partner
