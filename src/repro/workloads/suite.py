"""The Table II application suite as synthetic workload specifications.

Each spec encodes the macro behaviour of its namesake — instruction mix,
memory intensity, footprint, temporal locality, inter-CTA sharing, and launch
structure — at dimensions scaled for pure-Python simulation (DESIGN.md §2).
Categories (C = compute intensive, M = memory bandwidth intensive) follow
Table II, as does the 14-workload scaling subset (all but BFS, LuleshUns,
MnCtct, and Srad-v1, which lack the parallelism to fill a 32x GPU).

Two Fig. 4b mechanisms are encoded here:

* RSBench and CoMD have very low memory-subsystem utilization (1 access per
  long compute segment), so the silicon's utilization-gated memory power is
  invisible to the transaction-count model.
* MiniAMR and BFS launch many very short kernels (``short_kernels=True``),
  defeating the 15 ms power sensor.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.isa.kernel import Workload, WorkloadCategory
from repro.isa.opcodes import Opcode
from repro.units import KIB, MIB
from repro.workloads.generator import build_workload
from repro.workloads.spec import WorkloadSpec

C = WorkloadCategory.COMPUTE
M = WorkloadCategory.MEMORY

WORKLOAD_SPECS: dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    if spec.abbr in WORKLOAD_SPECS:
        raise ConfigError(f"duplicate workload {spec.abbr!r}")
    WORKLOAD_SPECS[spec.abbr] = spec


# --------------------------------------------------------------------- compute

_register(WorkloadSpec(
    name="Back Propagation", abbr="BPROP", category=C, input_label="65536",
    description="Neural-network training sweeps: FMA-dominated layers with "
    "sigmoid activations, weight blocks reused across layers.",
    kernels=4, segments_per_warp=1, compute_per_segment=54,
    accesses_per_segment=3,
    compute_mix={Opcode.FFMA32: 0.55, Opcode.FADD32: 0.25,
                 Opcode.EXP232: 0.12, Opcode.RCP32: 0.08},
    footprint_bytes=32 * MIB, shared_footprint_bytes=2 * MIB,
    hot_block_bytes=8 * KIB, shared_mem_fraction=0.15,
    frac_stream=0.30, frac_reuse=0.50, frac_halo=0.10, frac_shared=0.10,
    store_fraction=0.15, seed=101,
))

_register(WorkloadSpec(
    name="B+Tree", abbr="BTREE", category=C, input_label="1 Million",
    description="Key lookups over a B+tree: integer compares descending a "
    "shared, heavily cached upper tree into per-CTA leaves.",
    kernels=2, segments_per_warp=1, compute_per_segment=60,
    accesses_per_segment=5,
    compute_mix={Opcode.IADD32: 0.30, Opcode.ISUB32: 0.20, Opcode.AND32: 0.20,
                 Opcode.IMAD32: 0.15, Opcode.XOR32: 0.15},
    footprint_bytes=16 * MIB, shared_footprint_bytes=1 * MIB,
    hot_block_bytes=8 * KIB,
    frac_stream=0.20, frac_reuse=0.35, frac_halo=0.05, frac_shared=0.40,
    store_fraction=0.05, seed=102,
))

_register(WorkloadSpec(
    name="Classic Molecular Dynamics", abbr="CoMD", category=C,
    input_label="49 bodies",
    description="Pair-force computation: long FMA/SQRT bursts per neighbor, "
    "positions staged through shared memory; memory subsystem nearly idle.",
    kernels=3, segments_per_warp=1, compute_per_segment=96,
    accesses_per_segment=2,
    compute_mix={Opcode.FFMA32: 0.50, Opcode.FMUL32: 0.30,
                 Opcode.SQRT32: 0.10, Opcode.RCP32: 0.10},
    footprint_bytes=8 * MIB, shared_footprint_bytes=1 * MIB,
    hot_block_bytes=8 * KIB, shared_mem_fraction=0.30,
    frac_stream=0.30, frac_reuse=0.50, frac_halo=0.20, frac_shared=0.00,
    store_fraction=0.10, seed=103,
))

_register(WorkloadSpec(
    name="Hotspot", abbr="Hotspot", category=C, input_label="1024x1024",
    description="2D thermal stencil: iterative sweeps with halo exchange and "
    "strong per-tile reuse.",
    kernels=4, segments_per_warp=1, compute_per_segment=45,
    accesses_per_segment=3,
    compute_mix={Opcode.FFMA32: 0.55, Opcode.FADD32: 0.30, Opcode.FMUL32: 0.15},
    footprint_bytes=16 * MIB, shared_footprint_bytes=1 * MIB,
    hot_block_bytes=8 * KIB,
    frac_stream=0.45, frac_reuse=0.35, frac_halo=0.15, frac_shared=0.05,
    store_fraction=0.25, seed=104,
))

_register(WorkloadSpec(
    name="Lulesh (unstructured)", abbr="LuleshUns", category=C,
    input_label="Unstrc Mesh",
    description="Shock hydrodynamics on an unstructured mesh: FP64 kernels "
    "with indirect gathers through a shared connectivity table.",
    kernels=3, segments_per_warp=1, compute_per_segment=60,
    accesses_per_segment=4,
    compute_mix={Opcode.FFMA64: 0.40, Opcode.FADD64: 0.20,
                 Opcode.FMUL64: 0.10, Opcode.FFMA32: 0.30},
    footprint_bytes=24 * MIB, shared_footprint_bytes=8 * MIB,
    hot_block_bytes=8 * KIB,
    frac_stream=0.30, frac_reuse=0.30, frac_halo=0.10, frac_shared=0.30,
    store_fraction=0.20, seed=105,
))

_register(WorkloadSpec(
    name="Path Finder", abbr="PathF", category=C, input_label="1 Million",
    description="Dynamic-programming wavefront: integer min-plus updates row "
    "by row with neighbor reads.",
    kernels=6, segments_per_warp=1, compute_per_segment=20,
    accesses_per_segment=2,
    compute_mix={Opcode.IADD32: 0.40, Opcode.ISUB32: 0.30,
                 Opcode.IMAD32: 0.20, Opcode.OR32: 0.10},
    footprint_bytes=8 * MIB, shared_footprint_bytes=1 * MIB,
    hot_block_bytes=4 * KIB,
    frac_stream=0.50, frac_reuse=0.30, frac_halo=0.20, frac_shared=0.00,
    store_fraction=0.30, seed=106,
))

_register(WorkloadSpec(
    name="RSBench", abbr="RSBench", category=C, input_label="1 Million",
    description="Multipole cross-section lookups: transcendental-heavy "
    "evaluation against small shared resonance tables; DRAM nearly idle.",
    kernels=2, segments_per_warp=1, compute_per_segment=112,
    accesses_per_segment=2,
    compute_mix={Opcode.SIN32: 0.15, Opcode.COS32: 0.15, Opcode.LOG232: 0.15,
                 Opcode.EXP232: 0.15, Opcode.FFMA32: 0.20, Opcode.FMUL32: 0.20},
    footprint_bytes=8 * MIB, shared_footprint_bytes=1 * MIB,
    hot_block_bytes=8 * KIB,
    frac_stream=0.20, frac_reuse=0.40, frac_halo=0.00, frac_shared=0.40,
    store_fraction=0.05, seed=107,
))

_register(WorkloadSpec(
    name="SRAD (v1)", abbr="Srad-v1", category=C,
    input_label="100, 0.5, 502x458",
    description="Speckle-reducing anisotropic diffusion: stencil sweeps with "
    "exponential/sqrt coefficient evaluation.",
    kernels=6, segments_per_warp=1, compute_per_segment=28,
    accesses_per_segment=2,
    compute_mix={Opcode.FFMA32: 0.50, Opcode.FADD32: 0.30,
                 Opcode.EXP232: 0.10, Opcode.SQRT32: 0.10},
    footprint_bytes=12 * MIB, shared_footprint_bytes=1 * MIB,
    hot_block_bytes=8 * KIB,
    frac_stream=0.40, frac_reuse=0.35, frac_halo=0.20, frac_shared=0.05,
    store_fraction=0.25, seed=108,
))

# --------------------------------------------------------------------- memory

_register(WorkloadSpec(
    name="Adaptive Mesh Refinement", abbr="MiniAMR", category=M,
    input_label="15,000",
    description="3D stencil over adaptively refined blocks: many short "
    "kernels, block-boundary exchange, scattered refinement metadata.",
    kernels=12, segments_per_warp=1, compute_per_segment=3,
    accesses_per_segment=2, short_kernels=True,
    compute_mix={Opcode.FFMA32: 0.60, Opcode.FADD32: 0.40},
    footprint_bytes=64 * MIB, shared_footprint_bytes=8 * MIB,
    hot_block_bytes=4 * KIB,
    frac_stream=0.50, frac_reuse=0.10, frac_halo=0.20, frac_shared=0.20,
    store_fraction=0.25, seed=109,
))

_register(WorkloadSpec(
    name="Breadth First Search", abbr="BFS", category=M,
    input_label="Graph1MW",
    description="Level-synchronous BFS: one short kernel per frontier, "
    "edge-list gathers scattered across the whole graph.",
    kernels=10, segments_per_warp=1, compute_per_segment=2,
    accesses_per_segment=2, short_kernels=True,
    compute_mix={Opcode.IADD32: 0.50, Opcode.AND32: 0.25, Opcode.OR32: 0.25},
    footprint_bytes=32 * MIB, shared_footprint_bytes=16 * MIB,
    hot_block_bytes=4 * KIB,
    frac_stream=0.25, frac_reuse=0.10, frac_halo=0.05, frac_shared=0.60,
    store_fraction=0.15, seed=110,
))

_register(WorkloadSpec(
    name="Kmeans clustering", abbr="Kmeans", category=M,
    input_label="819200",
    description="Distance evaluation: streaming point data against hot "
    "centroid blocks, cluster assignments written back.",
    kernels=3, segments_per_warp=1, compute_per_segment=20,
    accesses_per_segment=6,
    compute_mix={Opcode.FFMA32: 0.50, Opcode.FADD32: 0.30, Opcode.FMUL32: 0.20},
    footprint_bytes=48 * MIB, shared_footprint_bytes=2 * MIB,
    hot_block_bytes=4 * KIB,
    frac_stream=0.60, frac_reuse=0.25, frac_halo=0.00, frac_shared=0.15,
    store_fraction=0.10, seed=111,
))

_register(WorkloadSpec(
    name="Lulesh", abbr="Lulesh-150", category=M, input_label="size 150",
    description="Structured shock hydrodynamics: FP64 element kernels "
    "streaming nodal arrays with indirect neighbor gathers.",
    kernels=4, segments_per_warp=1, compute_per_segment=18,
    accesses_per_segment=5,
    compute_mix={Opcode.FFMA64: 0.35, Opcode.FADD64: 0.25, Opcode.FFMA32: 0.40},
    footprint_bytes=48 * MIB, shared_footprint_bytes=8 * MIB,
    hot_block_bytes=4 * KIB,
    frac_stream=0.50, frac_reuse=0.10, frac_halo=0.15, frac_shared=0.25,
    store_fraction=0.25, seed=112,
))

_register(WorkloadSpec(
    name="Lulesh", abbr="Lulesh-190", category=M, input_label="size 190",
    description="Lulesh at a larger mesh: the same kernels over a working "
    "set twice the size, raising bandwidth pressure.",
    kernels=4, segments_per_warp=1, compute_per_segment=18,
    accesses_per_segment=6,
    compute_mix={Opcode.FFMA64: 0.35, Opcode.FADD64: 0.25, Opcode.FFMA32: 0.40},
    footprint_bytes=96 * MIB, shared_footprint_bytes=12 * MIB,
    hot_block_bytes=4 * KIB,
    frac_stream=0.50, frac_reuse=0.10, frac_halo=0.15, frac_shared=0.25,
    store_fraction=0.25, seed=113,
))

_register(WorkloadSpec(
    name="Nekbone solver", abbr="Nekbone-12", category=M,
    input_label="size 12",
    description="Spectral-element conjugate gradient: FP64 matrix-free "
    "operators with element-boundary exchanges staged in shared memory.",
    kernels=3, segments_per_warp=1, compute_per_segment=28,
    accesses_per_segment=6,
    compute_mix={Opcode.FFMA64: 0.50, Opcode.FADD64: 0.20, Opcode.FFMA32: 0.30},
    footprint_bytes=32 * MIB, shared_footprint_bytes=2 * MIB,
    hot_block_bytes=4 * KIB, shared_mem_fraction=0.20,
    frac_stream=0.50, frac_reuse=0.20, frac_halo=0.25, frac_shared=0.05,
    store_fraction=0.20, seed=114,
))

_register(WorkloadSpec(
    name="Nekbone solver", abbr="Nekbone-18", category=M,
    input_label="size 18",
    description="Nekbone at a larger polynomial order: bigger elements, "
    "the same exchange structure, higher bandwidth demand.",
    kernels=3, segments_per_warp=1, compute_per_segment=28,
    accesses_per_segment=8,
    compute_mix={Opcode.FFMA64: 0.50, Opcode.FADD64: 0.20, Opcode.FFMA32: 0.30},
    footprint_bytes=64 * MIB, shared_footprint_bytes=4 * MIB,
    hot_block_bytes=4 * KIB, shared_mem_fraction=0.20,
    frac_stream=0.50, frac_reuse=0.20, frac_halo=0.25, frac_shared=0.05,
    store_fraction=0.20, seed=115,
))

_register(WorkloadSpec(
    name="Mini Contact", abbr="MnCtct", category=M, input_label="Mas1_2",
    description="Contact-search mini-app: candidate-pair gathers scattered "
    "across a shared surface table.",
    kernels=4, segments_per_warp=1, compute_per_segment=12,
    accesses_per_segment=4,
    compute_mix={Opcode.IADD32: 0.30, Opcode.FFMA32: 0.40, Opcode.ISUB32: 0.30},
    footprint_bytes=48 * MIB, shared_footprint_bytes=12 * MIB,
    hot_block_bytes=4 * KIB,
    frac_stream=0.30, frac_reuse=0.10, frac_halo=0.20, frac_shared=0.40,
    store_fraction=0.15, seed=116,
))

_register(WorkloadSpec(
    name="SRAD (v2)", abbr="Srad-v2", category=M, input_label="2048x2048",
    description="SRAD at a bandwidth-bound image size: streaming stencil "
    "sweeps with halo rows, little temporal reuse.",
    kernels=4, segments_per_warp=1, compute_per_segment=12,
    accesses_per_segment=4,
    compute_mix={Opcode.FFMA32: 0.50, Opcode.FADD32: 0.35, Opcode.FMUL32: 0.15},
    footprint_bytes=64 * MIB, shared_footprint_bytes=2 * MIB,
    hot_block_bytes=4 * KIB,
    frac_stream=0.65, frac_reuse=0.10, frac_halo=0.20, frac_shared=0.05,
    store_fraction=0.30, seed=117,
))

_register(WorkloadSpec(
    name="Stream Triad", abbr="Stream", category=M, input_label="2^26 elements",
    description="The bandwidth yardstick: pure streaming triad, one store "
    "per two loads, no reuse, no sharing.",
    kernels=3, segments_per_warp=1, compute_per_segment=6,
    accesses_per_segment=6,
    compute_mix={Opcode.FFMA32: 0.60, Opcode.FADD32: 0.40},
    footprint_bytes=128 * MIB, shared_footprint_bytes=1 * MIB,
    hot_block_bytes=4 * KIB,
    frac_stream=0.95, frac_reuse=0.00, frac_halo=0.00, frac_shared=0.05,
    store_fraction=0.33, seed=118,
))

# ------------------------------------------------------------------- selection

#: Workloads excluded from the scaling study (Section V-A): insufficient
#: parallelism to fill a 32x GPU.
EXCLUDED_FROM_SCALING: tuple[str, ...] = ("BFS", "LuleshUns", "MnCtct", "Srad-v1")

#: The 14-workload scaling subset, in Table II order.
SCALING_SUBSET: tuple[str, ...] = tuple(
    abbr for abbr in WORKLOAD_SPECS if abbr not in EXCLUDED_FROM_SCALING
)


def all_specs() -> dict[str, WorkloadSpec]:
    """Every registered spec: the Table II suite plus the LLM family."""
    from repro.workloads.llm import LLM_WORKLOAD_SPECS

    return {**WORKLOAD_SPECS, **LLM_WORKLOAD_SPECS}


def get_spec(abbr: str) -> WorkloadSpec:
    """Look up one spec by abbreviation (Table II or the LLM family)."""
    specs = all_specs()
    spec = specs.get(abbr)
    if spec is None:
        raise ConfigError(
            f"unknown workload {abbr!r}; known: {sorted(specs)}"
        )
    return spec


def shrunken_spec(
    abbr: str, total_ctas: int = 64, kernels: int | None = 1
) -> WorkloadSpec:
    """A scaled-down copy of a suite workload for tracing and smoke runs.

    Shrinks the grid to ``total_ctas`` CTAs (and optionally to ``kernels``
    launches) while scaling the memory footprints proportionally, so the
    shrunken workload keeps its namesake's locality character but simulates
    in well under a second.  Phase-scheduled specs shrink per phase: each
    phase's CTA count scales by the same ratio as the top-level grid and
    ``kernels`` caps the launches *per phase*, preserving the schedule's
    alternation instead of flattening it.
    """
    spec = get_spec(abbr)
    if total_ctas <= 0:
        raise ConfigError(f"total_ctas must be positive, got {total_ctas}")
    total_ctas = min(total_ctas, spec.total_ctas)
    factor = max(1, spec.total_ctas // total_ctas)
    shrunken_phases = None
    if spec.phases is not None:
        shrunken_phases = tuple(
            dataclasses.replace(
                phase,
                kernels=(
                    phase.kernels if kernels is None
                    else min(phase.kernels, kernels)
                ),
                total_ctas=(
                    None if phase.total_ctas is None
                    else max(1, phase.total_ctas // factor)
                ),
            )
            for phase in spec.phases
        )
    return dataclasses.replace(
        spec,
        total_ctas=total_ctas,
        kernels=(
            spec.kernels if kernels is None or spec.phases is not None
            else kernels
        ),
        footprint_bytes=max(spec.footprint_bytes // factor, total_ctas * 128),
        shared_footprint_bytes=max(
            spec.shared_footprint_bytes // factor, 128 * 128
        ),
        phases=shrunken_phases,
    )


def scaling_workloads() -> list[Workload]:
    """Build the 14 workloads of the multi-module scaling study."""
    return [build_workload(WORKLOAD_SPECS[abbr]) for abbr in SCALING_SUBSET]


def validation_workloads() -> list[Workload]:
    """Build all 18 workloads of the Figure 4b validation suite."""
    return [build_workload(spec) for spec in WORKLOAD_SPECS.values()]
