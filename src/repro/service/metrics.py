"""Service observability: every decision the layer makes, as metrics.

All counters, gauges, and histograms live in one PR 1
:class:`~repro.trace.MetricsRegistry`, so the service's metrics merge,
serialize, and export exactly like the simulator's own component metrics —
``GET /v1/metrics`` returns the registry JSON plus a flat ``counts`` map,
and the end-to-end tests assert scheduling behaviour purely through these
counters (see ``docs/SERVICE.md`` for the full table).

Counter convention: a counter is an accumulator whose *count* is the
metric; gauges sample a value into an accumulator (mean/max of the sampled
series); latencies record into fixed-width millisecond histograms.
"""

from __future__ import annotations

from repro.service.priority import Lane
from repro.trace.metrics import MetricsRegistry

# Admission.
ADMISSION_ACCEPTED = "service.admission.accepted"
ADMISSION_REJECTED = "service.admission.rejected"   # invalid configuration
ADMISSION_RATE_LIMITED = "service.admission.rate_limited"
ADMISSION_QUEUE_FULL = "service.admission.queue_full"

# Result store / single flight.
CACHE_HITS = "service.cache.hits"
CACHE_MISSES = "service.cache.misses"
SINGLEFLIGHT_COALESCED = "service.singleflight.coalesced"

# Execution.
SIM_RUNS = "service.sim.runs"
JOBS_COMPLETED = "service.jobs.completed"
JOBS_FAILED = "service.jobs.failed"
JOBS_EVICTED = "service.jobs.evicted"

# Queue gauges (sampled on every push/pop).
QUEUE_DEPTH = "service.queue.depth"


def lane_occupancy_metric(lane: Lane) -> str:
    return f"service.lane.{lane.value}.occupancy"


# Latency histograms (milliseconds).
QUEUE_WAIT_MS = "service.latency.queue_wait_ms"
EXEC_MS = "service.latency.exec_ms"
TOTAL_MS = "service.latency.total_ms"
LATENCY_BUCKET_MS = 5.0


class ServiceMetrics:
    """Typed facade over the service's metric names."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    # ---------------------------------------------------------------- counters

    def inc(self, name: str) -> None:
        self.registry.accumulator(name).add(1.0)

    def count(self, name: str) -> int:
        """Observed count of one counter/gauge/histogram (0 when unused)."""
        return self.registry.count(name)

    # ------------------------------------------------------------------ gauges

    def sample_queue(self, depth: int, lane_depths: dict[Lane, int]) -> None:
        self.registry.accumulator(QUEUE_DEPTH).add(float(depth))
        for lane, lane_depth in lane_depths.items():
            self.registry.accumulator(lane_occupancy_metric(lane)).add(
                float(lane_depth)
            )

    # -------------------------------------------------------------- histograms

    def observe_ms(self, name: str, seconds: float) -> None:
        self.registry.histogram(name, LATENCY_BUCKET_MS).add(seconds * 1e3)

    # ----------------------------------------------------------------- export

    def counts(self) -> dict[str, int]:
        """Flat ``name -> count`` map (the smoke/e2e assertion surface)."""
        return {
            name: self.registry.count(name)
            for name in self.registry.names()
        }

    def to_json(self) -> dict:
        return {
            "counts": self.counts(),
            "snapshot": self.registry.snapshot(),
            "registry": self.registry.to_json(),
        }
