"""Admission control: reject bad or over-budget work before it costs anything.

Three gates run, in order, before a request may touch the queue:

1. **Validation** — the request's spec and config re-run the library's own
   ``ConfigError`` checks, plus the runtime-feasibility checks a
   constructor can't do alone: an infeasible power cap (the ladder floor
   still exceeds the budget) is caught here by asking the
   :class:`~repro.dvfs.governor.PowerCapGovernor` for its initial points —
   the same up-front rejection ``repro dvfs --cap-watts`` performs.
2. **Rate limiting** — one token per submission from the client's bucket.
3. **Capacity** — the queue must admit one more job, after stale pending
   jobs have been swept.

Each gate maps to its own metric counter and :class:`~repro.errors.ServiceError`
kind, so a rejected request is observable (and billable to the right
cause) without a single cycle of engine time.
"""

from __future__ import annotations

from repro.errors import ConfigError, ServiceError
from repro.service.job import JobRequest


def validate_request(request: JobRequest) -> None:
    """Raise :class:`ConfigError` for work the engine would reject later.

    Spec and config invariants were enforced by their constructors (the
    dataclasses validate in ``__post_init__``); what remains are the
    cross-object runtime checks the simulator would otherwise hit only
    after queueing: power-cap feasibility against the V/f curve, and a
    per-GPM DVFS grid that matches the chip.
    """
    config = request.config
    if config.power_cap_watts is not None:
        from repro.dvfs.governor import PowerCapGovernor
        from repro.dvfs.operating_point import K40_VF_CURVE

        curve = config.dvfs.curve if config.dvfs is not None else K40_VF_CURVE
        # Raises ConfigError when even the ladder floor exceeds the budget.
        PowerCapGovernor(
            curve=curve, cap_watts=config.power_cap_watts
        ).initial_points(config.num_gpms)
    if config.dvfs is not None:
        # Validates per-GPM point-list length against the chip.
        config.dvfs.mean_core_ratios(config.num_gpms)


class AdmissionReject(ServiceError):
    """A request was turned away at the front door (no engine time spent)."""


def invalid(error: ConfigError) -> AdmissionReject:
    return AdmissionReject(str(error), kind="invalid-config")


def rate_limited(client: str) -> AdmissionReject:
    return AdmissionReject(
        f"client {client!r} exceeded its submission rate", kind="rate-limited"
    )


def queue_full(depth: int) -> AdmissionReject:
    return AdmissionReject(
        f"queue is full ({depth} pending jobs, none stale)", kind="queue-full"
    )
