"""``SweepRunner``-shaped facade over a running sweep service.

:class:`ServiceSweepRunner` accepts the same (workload spec, configuration)
grids as :class:`~repro.experiments.runner.SweepRunner` and returns the
same ordered ``RunRecord`` lists, but routes every pair through a
:class:`~repro.service.server.SweepService` — so experiments transparently
gain admission validation, single-flight dedup (in-grid duplicates cost
one simulation), the shared content-addressed store, and service metrics.

By default the adapter owns a private :class:`ServiceThread` for its
lifetime; pass a started thread to share one service across runners.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.results import RunRecord
from repro.gpu.config import GpuConfig
from repro.service.job import JobRequest
from repro.service.server import ServiceConfig, ServiceThread
from repro.trace.metrics import MetricsRegistry
from repro.workloads.spec import WorkloadSpec


class ServiceSweepRunner:
    """Runs sweep grids through a sweep service instead of a process pool."""

    def __init__(
        self,
        thread: ServiceThread | None = None,
        config: ServiceConfig | None = None,
        client: str = "adapter",
        timeout_s: float = 600.0,
    ) -> None:
        self._owns_thread = thread is None
        self.thread = thread or ServiceThread(config or ServiceConfig()).start()
        self.client = client
        self.timeout_s = timeout_s
        self.cache_hits = 0
        self.cache_misses = 0
        #: Pairs served by another submission's in-flight simulation.
        self.dedup_skips = 0
        #: Merged component metrics across every record returned (same
        #: aggregation contract as ``SweepRunner.metrics``).
        self.metrics = MetricsRegistry()

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        if self._owns_thread:
            self.thread.stop()

    def __enter__(self) -> "ServiceSweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------- runs

    def run(
        self, pairs: list[tuple[WorkloadSpec, GpuConfig]]
    ) -> list[RunRecord]:
        """Run every pair through the service; results in input order.

        All pairs are submitted concurrently — the service's priority
        queue orders execution and its single-flight index collapses
        in-grid duplicates onto one simulation.
        """
        shards = self.thread.config.shards
        futures = [
            self.thread.submit_async(
                JobRequest(spec=spec, config=config, shards=shards),
                client=self.client,
            )
            for spec, config in pairs
        ]
        records: list[RunRecord] = []
        for (spec, config), future in zip(pairs, futures):
            outcome = future.result(timeout=self.timeout_s)
            if outcome.cache == "hit":
                self.cache_hits += 1
            elif outcome.cache == "coalesced":
                self.dedup_skips += 1
            else:
                self.cache_misses += 1
            # Re-stamp presentation fields exactly like SweepRunner does
            # for cached records: the content key guarantees identity, the
            # label is derived data.
            records.append(
                replace(
                    RunRecord.from_json(outcome.record),
                    workload=spec.abbr,
                    config_label=config.label(),
                )
            )
        for record in records:
            if record.metrics:
                self.metrics.merge(MetricsRegistry.from_json(record.metrics))
        return records

    def run_grid(
        self,
        specs: list[WorkloadSpec],
        configs: list[GpuConfig],
        operating_points=None,
        curve=None,
    ) -> dict[str, dict[str, RunRecord]]:
        """Cartesian sweep; same shape as ``SweepRunner.run_grid``."""
        from repro.experiments.runner import expand_operating_points

        configs = expand_operating_points(configs, operating_points, curve)
        pairs = [(spec, config) for config in configs for spec in specs]
        records = self.run(pairs)
        grid: dict[str, dict[str, RunRecord]] = {}
        for record in records:
            grid.setdefault(record.config_label, {})[record.workload] = record
        return grid
