"""The sweep service: asyncio orchestration plus a local HTTP-JSON front.

:class:`SweepService` wires the subsystem together on one event loop:

* :meth:`SweepService.submit` runs admission (validation, rate limit,
  capacity-with-eviction), then serves the request from the
  content-addressed store (O(1) hit), an in-flight leader (single-flight
  coalesce), or a freshly enqueued job.
* A fixed pool of worker coroutines pops jobs in aged-priority order and
  executes them on a thread executor through the existing
  :func:`~repro.gpu.simulator.simulate` path; thread count is clamped
  ``SweepSettings``-style so ``workers x shards`` never oversubscribes the
  machine.
* Every decision increments a :class:`~repro.service.metrics.ServiceMetrics`
  counter, so the end-to-end tests (and ``GET /v1/metrics``) can assert
  scheduling behaviour without reaching into internals.

The HTTP layer is deliberately tiny — a hand-rolled HTTP/1.1 JSON protocol
over ``asyncio.start_server`` on the loopback interface (no third-party
dependencies), with ``POST /v1/jobs`` carrying the recipe format of
:func:`repro.service.job.request_from_recipe` and ``GET /v1/metrics`` /
``/v1/stats`` / ``/v1/healthz`` for observability.  :class:`ServiceThread`
runs the whole stack on a daemon thread for tests, benchmarks, the smoke
tool, and the in-process adapter.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError, ReproError, ServiceError
from repro.service import admission
from repro.service.evict import EvictionPolicy
from repro.service.job import (
    Job,
    JobOutcome,
    JobRequest,
    JobState,
    request_from_recipe,
)
from repro.service.keys import RESULTS_VERSION, spec_hash
from repro.service.limiter import RateLimiter
from repro.service.metrics import (
    ADMISSION_ACCEPTED,
    ADMISSION_QUEUE_FULL,
    ADMISSION_RATE_LIMITED,
    ADMISSION_REJECTED,
    CACHE_HITS,
    CACHE_MISSES,
    EXEC_MS,
    JOBS_COMPLETED,
    JOBS_EVICTED,
    JOBS_FAILED,
    QUEUE_WAIT_MS,
    SIM_RUNS,
    SINGLEFLIGHT_COALESCED,
    TOTAL_MS,
    ServiceMetrics,
)
from repro.service.priority import AgingPolicy
from repro.service.queue import JobQueue
from repro.service.store import ResultStore, SingleFlight
from repro.trace.manifest import ServiceManifest
from repro.trace.metrics import MetricsRegistry


def execute_request(request: JobRequest) -> tuple[dict, float]:
    """Simulate one request (thread-side); returns (record JSON, exec secs).

    This is the same build-and-simulate path the batch sweep workers run,
    so a record produced here is byte-identical to what a direct
    ``simulate()`` + ``RunRecord`` round would produce for the same pair.
    """
    from repro.experiments.runner import _record_from_result
    from repro.workloads.generator import build_workload

    start = time.perf_counter()
    workload = build_workload(request.spec)
    metrics = MetricsRegistry()
    from repro.gpu.simulator import simulate

    result = simulate(
        workload, request.config, metrics=metrics, shards=request.shards
    )
    record = _record_from_result(request.spec, request.config, result, metrics)
    return record.to_json(), time.perf_counter() - start


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs for one :class:`SweepService`."""

    #: Concurrent job executions (0 = accept/queue but never execute —
    #: useful for scheduling tests).
    workers: int = 2
    #: Per-GPM shard engines per execution (joins the core-clamp product).
    shards: int = 1
    #: Queue bounds (see :class:`~repro.service.evict.EvictionPolicy`).
    max_pending: int = 256
    max_age_s: float = 300.0
    #: Per-client token-bucket rate (``None`` = unlimited).
    rate_per_s: float | None = None
    burst: float = 32.0
    #: Lane aging interval (see :class:`~repro.service.priority.AgingPolicy`).
    aging_seconds: float = 30.0
    #: Result store placement; defaults to the shared sweep cache.
    cache_dir: Path | None = None
    use_disk_cache: bool = True
    memory_capacity: int = 1024
    #: Background stale-sweep period (``None`` = sweep only on admission).
    evict_interval_s: float | None = None
    #: HTTP bind address (port 0 = ephemeral).
    host: str = "127.0.0.1"
    port: int = 0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigError(f"workers must be >= 0, got {self.workers!r}")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards!r}")
        if self.evict_interval_s is not None and self.evict_interval_s <= 0:
            raise ConfigError(
                f"evict_interval_s must be positive, got"
                f" {self.evict_interval_s!r}"
            )

    def executor_workers(self) -> int:
        """Executor threads, budgeting cores for shard engines.

        Mirrors ``SweepRunner._worker_count``: each execution may fork up
        to ``shards`` shard workers, so concurrent executions are clamped
        such that ``workers * shards`` never exceeds the core count.
        """
        core_budget = max(1, (os.cpu_count() or 1) // self.shards)
        return max(1, min(self.workers, core_budget))


#: ServiceError kind -> HTTP status.
_STATUS_FOR_KIND = {
    "invalid-config": 400,
    "rate-limited": 429,
    "queue-full": 503,
    "evicted": 503,
    "execution-failed": 500,
    "unavailable": 503,
}

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class SweepService:
    """One service instance: queue, store, limiter, workers, HTTP front."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        registry: MetricsRegistry | None = None,
        execute=execute_request,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics(registry)
        self.queue = JobQueue(
            AgingPolicy(self.config.aging_seconds), clock=clock
        )
        self.limiter = RateLimiter(
            self.config.rate_per_s, self.config.burst, clock=clock
        )
        self.policy = EvictionPolicy(
            self.config.max_pending, self.config.max_age_s
        )
        self.store = ResultStore(
            self.config.cache_dir,
            use_disk=self.config.use_disk_cache,
            memory_capacity=self.config.memory_capacity,
        )
        self.singleflight = SingleFlight()
        self._execute = execute
        self._clock = clock
        self._ids = itertools.count(1)
        self._state_counts: dict[str, int] = {}
        self._cond: asyncio.Condition | None = None
        self._workers: list[asyncio.Task] = []
        self._sweeper: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._stopping = False

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Start the worker pool (idempotent)."""
        if self._cond is not None:
            return
        self._cond = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers(),
            thread_name_prefix="repro-service",
        )
        self._workers = [
            asyncio.create_task(self._worker(index), name=f"service-worker-{index}")
            for index in range(self.config.workers)
        ]
        if self.config.evict_interval_s is not None:
            self._sweeper = asyncio.create_task(
                self._evict_loop(), name="service-evict-sweeper"
            )

    async def stop(self) -> None:
        """Stop workers; pending jobs are evicted with an ``unavailable`` error."""
        if self._cond is None:
            return
        self._stopping = True
        async with self._cond:
            for job in list(self.queue.pending()):
                self._evict(job, "service stopping", kind="unavailable")
            self._cond.notify_all()
        if self._sweeper is not None:
            self._sweeper.cancel()
        for task in self._workers:
            task.cancel()
        await asyncio.gather(
            *self._workers,
            *( [self._sweeper] if self._sweeper else [] ),
            return_exceptions=True,
        )
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._workers = []
        self._sweeper = None
        self._cond = None
        self._stopping = False

    # ------------------------------------------------------------- submission

    async def submit(
        self, request: JobRequest, client: str = "anonymous"
    ) -> JobOutcome:
        """Serve one request; raises :class:`ServiceError` when turned away."""
        t0 = self._clock()
        try:
            admission.validate_request(request)
        except ConfigError as error:
            self.metrics.inc(ADMISSION_REJECTED)
            raise admission.invalid(error) from error
        now = self._clock()
        if not self.limiter.allow(client, now):
            self.metrics.inc(ADMISSION_RATE_LIMITED)
            raise admission.rate_limited(client)
        key = request.key()

        # O(1) hot path: the content-addressed store answers repeats.
        record = self.store.get(key)
        if record is not None:
            self.metrics.inc(ADMISSION_ACCEPTED)
            self.metrics.inc(CACHE_HITS)
            total_s = self._clock() - t0
            self.metrics.observe_ms(TOTAL_MS, total_s)
            return JobOutcome(
                record=record,
                manifest=self._manifest(
                    job_id=f"hit-{next(self._ids):06d}", request=request,
                    client=client, key=key, cache="hit",
                    state=JobState.COMPLETED.value,
                    queue_wait_s=0.0, exec_s=0.0, total_s=total_s,
                ),
                cache="hit",
            )

        # Single flight: identical in-flight work is joined, not repeated.
        leader = self.singleflight.leader_job(key)
        if leader is not None:
            self.metrics.inc(ADMISSION_ACCEPTED)
            self.metrics.inc(SINGLEFLIGHT_COALESCED)
            record = await asyncio.shield(leader.future)
            total_s = self._clock() - t0
            self.metrics.observe_ms(TOTAL_MS, total_s)
            return JobOutcome(
                record=record,
                manifest=self._manifest(
                    job_id=leader.id, request=request, client=client,
                    key=key, cache="coalesced", state=leader.state.value,
                    queue_wait_s=leader.queue_wait_s, exec_s=leader.exec_s,
                    total_s=total_s,
                ),
                cache="coalesced",
            )

        # Leader path: capacity (after a stale sweep), then enqueue.
        if self._cond is None:
            raise ServiceError("service is not started", kind="unavailable")
        async with self._cond:
            self._evict_stale(now)
            if not self.policy.admits(self.queue):
                self.metrics.inc(ADMISSION_QUEUE_FULL)
                raise admission.queue_full(len(self.queue))
            self.metrics.inc(ADMISSION_ACCEPTED)
            self.metrics.inc(CACHE_MISSES)
            job = Job(
                id=f"job-{next(self._ids):06d}",
                request=request,
                client=client,
                key=key,
                lane=request.lane(),
                submitted_at=now,
                future=asyncio.get_running_loop().create_future(),
            )
            self.singleflight.start(key, job)
            self.queue.push(job)
            self.metrics.sample_queue(len(self.queue), self.queue.lane_depths())
            self._cond.notify()
        record = await job.future
        total_s = self._clock() - t0
        self.metrics.observe_ms(TOTAL_MS, total_s)
        return JobOutcome(
            record=record,
            manifest=self._manifest(
                job_id=job.id, request=request, client=client, key=key,
                cache="miss", state=job.state.value,
                queue_wait_s=job.queue_wait_s, exec_s=job.exec_s,
                total_s=total_s,
            ),
            cache="miss",
        )

    def _manifest(
        self, *, job_id: str, request: JobRequest, client: str, key: str,
        cache: str, state: str, queue_wait_s: float, exec_s: float,
        total_s: float,
    ) -> ServiceManifest:
        return ServiceManifest(
            job_id=job_id,
            cache_key=key,
            workload=request.spec.abbr,
            config_label=request.config.label(),
            client=client,
            lane=request.lane().value,
            cache=cache,
            state=state,
            queue_wait_s=queue_wait_s,
            exec_s=exec_s,
            total_s=total_s,
            results_version=RESULTS_VERSION,
            spec_hash=spec_hash(request.spec),
            screen=self._screen_note(request),
        )

    def _screen_note(self, request: JobRequest) -> dict | None:
        """Roofline prediction for a ``screen=``-annotated request.

        Purely advisory manifest content — computed analytically (no engine
        time), never stored with the record, never part of the cache key.
        A predictor failure degrades to an error note rather than failing
        the submission.
        """
        if request.screen is None:
            return None
        try:
            from repro.roofline.model import RooflinePredictor

            prediction = RooflinePredictor().predict(
                request.spec, request.config
            )
        except ReproError as error:
            return {"mode": request.screen, "error": str(error)}
        return {
            "mode": request.screen,
            "predicted_delay_s": prediction.delay_s,
            "predicted_energy_j": prediction.energy_j,
            "predicted_edp": prediction.edp,
            "bound": prediction.bound,
        }

    # -------------------------------------------------------------- eviction

    def _evict(self, job: Job, reason: str, kind: str = "evicted") -> None:
        """Drop one pending job (caller holds the condition lock)."""
        if not self.queue.remove(job):
            return
        job.state = JobState.EVICTED
        job.finished_at = self._clock()
        self.singleflight.finish(job.key)
        self.metrics.inc(JOBS_EVICTED)
        self._count_state(JobState.EVICTED)
        if job.future is not None and not job.future.done():
            job.future.set_exception(
                ServiceError(f"job {job.id} evicted: {reason}", kind=kind)
            )

    def _evict_stale(self, now: float) -> None:
        for job in self.policy.stale(self.queue, now):
            self._evict(
                job, f"pending longer than {self.policy.max_age_s:g}s"
            )

    async def _evict_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.evict_interval_s)
            async with self._cond:
                self._evict_stale(self._clock())

    # --------------------------------------------------------------- workers

    async def _worker(self, index: int) -> None:
        while True:
            async with self._cond:
                while not self._stopping and not self.queue:
                    await self._cond.wait()
                if self._stopping:
                    return
                job = self.queue.pop_next()
                self.metrics.sample_queue(
                    len(self.queue), self.queue.lane_depths()
                )
            job.state = JobState.RUNNING
            job.started_at = self._clock()
            self.metrics.inc(SIM_RUNS)
            loop = asyncio.get_running_loop()
            try:
                record, exec_s = await loop.run_in_executor(
                    self._executor, self._execute, job.request
                )
            except asyncio.CancelledError:
                # Service stopping mid-execution: fail the waiters cleanly.
                if not job.future.done():
                    job.future.set_exception(
                        ServiceError(
                            f"job {job.id} interrupted by shutdown",
                            kind="unavailable",
                        )
                    )
                self.singleflight.finish(job.key)
                raise
            except (ReproError, Exception) as error:  # noqa: BLE001
                job.state = JobState.FAILED
                job.finished_at = self._clock()
                self.metrics.inc(JOBS_FAILED)
                self._count_state(JobState.FAILED)
                self.singleflight.finish(job.key)
                if not job.future.done():
                    job.future.set_exception(
                        ServiceError(
                            f"job {job.id} failed: {error}",
                            kind="execution-failed",
                        )
                    )
            else:
                job.exec_s = exec_s
                job.state = JobState.COMPLETED
                job.finished_at = self._clock()
                # Store before resolving: a submission arriving after the
                # flight retires must find the record in the store.
                self.store.put(job.key, record)
                self.singleflight.finish(job.key)
                self.metrics.inc(JOBS_COMPLETED)
                self._count_state(JobState.COMPLETED)
                self.metrics.observe_ms(QUEUE_WAIT_MS, job.queue_wait_s)
                self.metrics.observe_ms(EXEC_MS, exec_s)
                if not job.future.done():
                    job.future.set_result(record)

    def _count_state(self, state: JobState) -> None:
        self._state_counts[state.value] = (
            self._state_counts.get(state.value, 0) + 1
        )

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict:
        return {
            "queue_depth": len(self.queue),
            "lanes": {
                lane.value: depth
                for lane, depth in self.queue.lane_depths().items()
            },
            "inflight": len(self.singleflight),
            "workers": self.config.workers,
            "executor_workers": self.config.executor_workers(),
            "jobs": dict(sorted(self._state_counts.items())),
            "store_memory_entries": len(self.store),
        }

    # ------------------------------------------------------------------- http

    async def serve(self) -> asyncio.base_events.Server:
        """Start workers and the HTTP listener; returns the asyncio server."""
        await self.start()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return server

    async def _handle_connection(self, reader, writer) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as error:  # noqa: BLE001 — a bad request, not a crash
            status, payload = 400, {"error": str(error), "kind": "bad-request"}
        body = json.dumps(payload).encode()
        writer.write(
            (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass

    async def _handle_request(self, reader) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": f"malformed request line: {request_line!r}"}
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return await self._route(method, path, headers, body)

    async def _route(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict]:
        if path == "/v1/healthz":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, {"status": "ok", "results_version": RESULTS_VERSION}
        if path == "/v1/metrics":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, self.metrics.to_json()
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, self.stats()
        if path == "/v1/jobs":
            if method != "POST":
                return 405, {"error": "POST only"}
            client = headers.get("x-repro-client", "http")
            try:
                recipe = json.loads(body.decode() or "{}")
            except json.JSONDecodeError as error:
                return 400, {"error": f"body is not JSON: {error}",
                             "kind": "bad-request"}
            try:
                request = request_from_recipe(recipe)
            except ConfigError as error:
                # Malformed recipes are admission rejections too: they are
                # turned away before any engine time is spent.
                self.metrics.inc(ADMISSION_REJECTED)
                return 400, {"error": str(error), "kind": "invalid-config"}
            try:
                outcome = await self.submit(request, client=client)
            except ServiceError as error:
                return (
                    _STATUS_FOR_KIND.get(error.kind, 503),
                    {"error": str(error), "kind": error.kind},
                )
            return 200, outcome.to_json()
        return 404, {"error": f"no route for {path!r}"}


async def _serve_forever(config: ServiceConfig) -> None:
    service = SweepService(config)
    server = await service.serve()
    print(
        f"repro service listening on http://{service.host}:{service.port}"
        f" ({config.workers} workers, shards={config.shards},"
        f" cache={'disk+memory' if config.use_disk_cache else 'memory'})",
        flush=True,
    )
    async with server:
        await server.serve_forever()


def run_service(config: ServiceConfig) -> int:
    """Foreground entry point for ``repro serve`` (Ctrl-C to stop)."""
    try:
        asyncio.run(_serve_forever(config))
    except KeyboardInterrupt:
        print("repro service stopped", flush=True)
    return 0


class ServiceThread:
    """A full service (workers + HTTP) on a private loop in a daemon thread.

    The building block for tests, benchmarks, the smoke tool, and the
    in-process :class:`~repro.service.adapter.ServiceSweepRunner`: start,
    talk to it over HTTP or via :meth:`submit`, stop.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        registry: MetricsRegistry | None = None,
        execute=execute_request,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry
        self._execute = execute
        self.service: SweepService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.host: str | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise ServiceError("service thread failed to start in 30s")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 — surface to starter
            if not self._ready.is_set():
                self._startup_error = error
                self._ready.set()

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.service = SweepService(
            self.config, registry=self.registry, execute=self._execute
        )
        server = await self.service.serve()
        self.host, self.port = self.service.host, self.service.port
        self._ready.set()
        await self._stop_event.wait()
        server.close()
        await server.wait_closed()
        await self.service.stop()

    def stop(self) -> None:
        if self.loop is not None and self._stop_event is not None:
            self.loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------ submission

    def submit(
        self, request: JobRequest, client: str = "in-process", timeout: float = 600.0
    ) -> JobOutcome:
        """Blocking in-process submission (no HTTP round trip)."""
        return self.submit_async(request, client).result(timeout=timeout)

    def submit_async(self, request: JobRequest, client: str = "in-process"):
        """Submit from any thread; returns a ``concurrent.futures.Future``."""
        if self.loop is None or self.service is None:
            raise ServiceError("service thread is not running")
        return asyncio.run_coroutine_threadsafe(
            self.service.submit(request, client=client), self.loop
        )
