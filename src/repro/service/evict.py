"""Stale-job eviction: the policy that bounds the pending queue.

Two bounds keep the queue finite under overload:

* **Age** — a job pending longer than ``max_age_s`` is presumed abandoned
  (its client timed out or went away) and is evicted on the next sweep.
* **Depth** — when the queue holds ``max_pending`` jobs, a new admission
  first evicts whatever is stale; if nothing is, the *incoming* request is
  rejected with a queue-full error.  Rejecting the newcomer rather than the
  queue's tail keeps admission honest: a job that was admitted stays
  admitted until it runs or goes stale, so clients can rely on their
  admission decision.

Eviction only ever considers *pending* jobs: a running job is on a worker
and is never dropped (``tests/service/test_evict.py`` holds the Hypothesis
proof).  Evicted jobs resolve their waiters' futures with a
:class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.service.job import Job, JobState
from repro.service.queue import JobQueue


@dataclass(frozen=True)
class EvictionPolicy:
    """Queue bounds: depth cap and pending-age cap."""

    max_pending: int = 256
    max_age_s: float = 300.0

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ConfigError(
                f"max_pending must be >= 1, got {self.max_pending!r}"
            )
        if self.max_age_s < 0:
            raise ConfigError(
                f"max_age_s must be >= 0, got {self.max_age_s!r}"
            )

    # ----------------------------------------------------------------- policy

    def stale(self, queue: JobQueue, now: float) -> list[Job]:
        """Pending jobs whose wait exceeds ``max_age_s`` (oldest first).

        Only pending jobs are candidates by construction — the queue never
        holds running jobs — and the state is asserted anyway, because
        evicting a job a worker is executing would corrupt single-flight.
        """
        victims = [
            job
            for job in queue.pending()
            if now - job.enqueued_at > self.max_age_s
        ]
        for job in victims:
            assert job.state is JobState.PENDING, (
                f"eviction candidate {job.id} is {job.state}, not pending"
            )
        return sorted(victims, key=lambda job: job.seq)

    def admits(self, queue: JobQueue) -> bool:
        """True when the queue has room for one more admission."""
        return len(queue) < self.max_pending
