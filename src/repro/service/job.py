"""Job objects: what a client submits and what the service tracks.

A :class:`JobRequest` is the immutable submission — a (workload spec, GPU
configuration) pair plus execution knobs.  A :class:`Job` is the service's
mutable tracking record for one *admitted leader* request (coalesced
duplicates share the leader's job).  A :class:`JobOutcome` is what every
waiter receives: the cached/simulated ``RunRecord`` payload plus a
:class:`~repro.trace.manifest.ServiceManifest` describing how it was served.

``request_from_recipe`` decodes the wire format of ``POST /v1/jobs``: a flat
JSON recipe naming a Table II workload and the config axes the paper's
studies sweep (GPM count, topology, bandwidth, core operating point, power
cap).  Malformed recipes raise :class:`~repro.errors.ConfigError` — which is
exactly what admission rejects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError
from repro.gpu.config import GpuConfig
from repro.service.keys import cache_key
from repro.service.priority import Lane, classify
from repro.trace.manifest import ServiceManifest
from repro.workloads.spec import WorkloadSpec


class JobState(enum.Enum):
    """Lifecycle of one admitted job."""

    PENDING = "pending"      # admitted, waiting in a lane
    RUNNING = "running"      # on a worker; never evicted
    COMPLETED = "completed"
    FAILED = "failed"        # the simulation itself raised
    EVICTED = "evicted"      # dropped while pending (stale / queue bound)

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.EVICTED)


@dataclass(frozen=True)
class JobRequest:
    """One immutable submission: what to simulate and how."""

    spec: WorkloadSpec
    config: GpuConfig
    #: Per-GPM shard engines for the execution (bit-identical results, so
    #: deliberately outside the cache key — mirrors ``SweepSettings.shards``).
    shards: int = 1
    #: Ask the service to attach the analytical roofline prediction for this
    #: (workload, config) to the response manifest.  Advisory provenance
    #: only: like ``shards`` it never changes what is simulated or stored,
    #: so it stays outside the cache key.
    screen: str | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards!r}")
        if self.screen is not None:
            from repro.roofline.screen import SCREEN_MODES

            if self.screen not in SCREEN_MODES:
                raise ConfigError(
                    f"screen must be one of {SCREEN_MODES} or None,"
                    f" got {self.screen!r}"
                )

    def key(self) -> str:
        """Content address of this request's result."""
        return cache_key(self.spec, self.config)

    def lane(self) -> Lane:
        return classify(self.spec, self.config)


@dataclass
class Job:
    """Service-side tracking record for one admitted (leader) request."""

    id: str
    request: JobRequest
    client: str
    key: str
    lane: Lane
    state: JobState = JobState.PENDING
    #: Monotonic clock readings (service-relative seconds).
    submitted_at: float = 0.0
    enqueued_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: FIFO tiebreak within equal effective priority; set by the queue.
    seq: int = -1
    #: asyncio.Future every waiter (leader + coalesced) awaits.
    future: Any = None
    #: Wall-clock seconds the simulation took (leader's execution).
    exec_s: float = 0.0

    @property
    def queue_wait_s(self) -> float:
        if self.started_at <= 0.0:
            return 0.0
        return max(0.0, self.started_at - self.enqueued_at)


@dataclass(frozen=True)
class JobOutcome:
    """What one waiter receives back from the service."""

    #: The RunRecord payload (``RunRecord.to_json()`` form).  Single-flight
    #: waiters share the leader's object, so payloads are bit-identical.
    record: dict
    manifest: ServiceManifest
    #: ``"hit"`` (served from the store), ``"miss"`` (simulated for this
    #: request), or ``"coalesced"`` (joined an identical in-flight request).
    cache: str

    def to_json(self) -> dict:
        return {
            "cache": self.cache,
            "job": self.manifest.to_json(),
            "record": self.record,
        }


# ---------------------------------------------------------------- wire recipe

#: Recipe fields accepted by ``POST /v1/jobs`` (anything else is a typo and
#: is rejected at admission rather than silently ignored).
RECIPE_FIELDS = frozenset(
    {
        "workload", "ctas", "kernels", "full", "gpms", "topology",
        "bandwidth", "cap_watts", "core_mhz", "shards", "screen",
        "phases", "tenants",
    }
)

#: Keys one ``phases`` entry may carry (``phase`` is required).
PHASE_RECIPE_FIELDS = frozenset({"phase", "ctas", "kernels"})


def _phase_entries(phases: Any) -> tuple[tuple[str, int, int], ...]:
    """Decode/validate the ``phases`` recipe field into schedule entries."""
    if not isinstance(phases, (list, tuple)) or not phases:
        raise ConfigError(
            "phases must be a non-empty list of phase objects"
        )
    entries = []
    for entry in phases:
        if not isinstance(entry, dict):
            raise ConfigError(
                f"each phase must be an object, got {type(entry).__name__}"
            )
        unknown = set(entry) - PHASE_RECIPE_FIELDS
        if unknown:
            raise ConfigError(
                f"unknown phase field(s): {', '.join(sorted(unknown))}"
            )
        if "phase" not in entry:
            raise ConfigError("each phase entry needs a 'phase' name")
        name = entry["phase"]
        if not isinstance(name, str):
            raise ConfigError(
                f"phase name must be a string, got {type(name).__name__}"
            )
        entries.append((
            name,
            int(entry.get("ctas", 256 if name == "prefill" else 16)),
            int(entry.get("kernels", 1)),
        ))
    return tuple(entries)


def request_from_recipe(recipe: dict) -> JobRequest:
    """Decode one wire-format job recipe into a validated :class:`JobRequest`.

    The recipe spans the axes the paper's studies sweep — V/f point x
    topology x GPM count, plus an optional power cap — on any Table II
    workload (optionally shrunken).  Every constructor on this path
    validates eagerly, so a malformed recipe raises
    :class:`~repro.errors.ConfigError` before any engine time is spent.
    """
    import dataclasses

    from repro.dvfs.config import DvfsConfig
    from repro.dvfs.operating_point import K40_VF_CURVE
    from repro.gpu.config import (
        BandwidthSetting,
        TopologyKind,
        table_iii_config,
    )
    from repro.workloads.llm import schedule_spec, validate_clients
    from repro.workloads.suite import all_specs, shrunken_spec

    if not isinstance(recipe, dict):
        raise ConfigError(f"job recipe must be an object, got {type(recipe).__name__}")
    unknown = set(recipe) - RECIPE_FIELDS
    if unknown:
        raise ConfigError(
            f"unknown job recipe field(s): {', '.join(sorted(unknown))}"
        )
    phases = recipe.get("phases")
    tenants = recipe.get("tenants")
    if tenants is not None and phases is None:
        raise ConfigError("tenants requires a phases schedule")
    if phases is not None:
        # A phase schedule *is* the workload: the shrink knobs parameterize
        # Table II namesakes and cannot also apply.
        clashes = sorted(
            {"workload", "ctas", "kernels", "full"} & set(recipe)
        )
        if clashes:
            raise ConfigError(
                f"phases cannot be combined with: {', '.join(clashes)}"
            )
        if tenants is not None and not isinstance(tenants, (list, tuple)):
            raise ConfigError("tenants must be a list of client ids")
        try:
            spec = schedule_spec(
                _phase_entries(phases),
                clients=(
                    None if tenants is None
                    else validate_clients(tuple(tenants))
                ),
            )
        except (TypeError, ValueError) as error:
            raise ConfigError(str(error)) from error
    else:
        workload = recipe.get("workload")
        specs = all_specs()
        if not isinstance(workload, str) or workload not in specs:
            raise ConfigError(
                f"workload must be one of {sorted(specs)}, got {workload!r}"
            )
        try:
            if recipe.get("full"):
                spec = specs[workload]
            else:
                spec = shrunken_spec(
                    workload,
                    total_ctas=int(recipe.get("ctas", 64)),
                    # Same default as shrunken_spec; an explicit null keeps
                    # the namesake workload's own kernel count.
                    kernels=(
                        1 if "kernels" not in recipe
                        else None if recipe["kernels"] is None
                        else int(recipe["kernels"])
                    ),
                )
        except (TypeError, ValueError) as error:
            raise ConfigError(str(error)) from error
    try:
        topology = TopologyKind(recipe.get("topology", "ring"))
        bandwidth = BandwidthSetting(recipe.get("bandwidth", "2x-BW"))
        config = table_iii_config(
            int(recipe.get("gpms", 4)), bandwidth, topology=topology
        )
        if recipe.get("core_mhz") is not None:
            point = K40_VF_CURVE.point_at(float(recipe["core_mhz"]) * 1e6)
            config = dataclasses.replace(
                config, dvfs=DvfsConfig.core_only(point)
            )
        if recipe.get("cap_watts") is not None:
            config = dataclasses.replace(
                config, power_cap_watts=float(recipe["cap_watts"])
            )
        shards = int(recipe.get("shards", 1))
        screen = recipe.get("screen")
        if screen is not None:
            screen = str(screen)
    except (TypeError, ValueError) as error:
        # Enum misses and non-numeric knobs surface as ValueError/TypeError;
        # admission speaks ConfigError.
        raise ConfigError(str(error)) from error
    return JobRequest(spec=spec, config=config, shards=shards, screen=screen)


def recipe_from_request(request: JobRequest) -> dict | None:
    """Best-effort inverse of :func:`request_from_recipe` (client helpers).

    Only recipe-expressible requests encode; anything custom (hand-built
    specs, per-GPM DVFS, compression) returns ``None`` — callers fall back
    to in-process submission.
    """
    from repro.workloads.suite import all_specs

    spec, config = request.spec, request.config
    base = all_specs().get(spec.abbr)
    if base is None:
        return None
    recipe: dict = {"workload": spec.abbr, "gpms": config.num_gpms}
    if spec == base:
        recipe["full"] = True
    else:
        from repro.workloads.suite import shrunken_spec

        shrunk = shrunken_spec(
            spec.abbr, total_ctas=spec.total_ctas, kernels=spec.kernels
        )
        if spec != shrunk:
            return None
        recipe["ctas"] = spec.total_ctas
        recipe["kernels"] = spec.kernels
    if config.interconnect is not None:
        recipe["topology"] = config.interconnect.kind.value
    if config.power_cap_watts is not None:
        recipe["cap_watts"] = config.power_cap_watts
    if config.dvfs is not None:
        return None  # operating points don't round-trip through core_mhz alone
    if config.compression is not None:
        return None
    if request.shards != 1:
        recipe["shards"] = request.shards
    if request.screen is not None:
        recipe["screen"] = request.screen
    reference = request_from_recipe(recipe)
    if reference.key() != request.key():
        return None
    return recipe
