"""Stdlib HTTP client for a running sweep service.

Deliberately dependency-free (``http.client`` only) so ``repro submit``
works in the same environment that runs the server.  Server-side
rejections arrive as JSON ``{"error": ..., "kind": ...}`` bodies and are
re-raised as :class:`~repro.errors.ServiceError` with the original kind,
so a client sees the same exception surface as in-process callers.
"""

from __future__ import annotations

import http.client
import json

from repro.errors import ServiceError
from repro.service.job import JobRequest, recipe_from_request


class ServiceClient:
    """Talks JSON-over-HTTP to one :class:`~repro.service.server.SweepService`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        client_id: str = "cli",
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # ------------------------------------------------------------------- http

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {"X-Repro-Client": self.client_id}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, OSError) as error:
                raise ServiceError(
                    f"cannot reach service at {self.host}:{self.port}: {error}"
                ) from error
            try:
                data = json.loads(raw.decode() or "{}")
            except json.JSONDecodeError as error:
                raise ServiceError(
                    f"service returned non-JSON ({response.status}):"
                    f" {raw[:200]!r}"
                ) from error
            if response.status != 200:
                raise ServiceError(
                    data.get("error", f"HTTP {response.status}"),
                    kind=data.get("kind", "unavailable"),
                )
            return data
        finally:
            connection.close()

    # ------------------------------------------------------------------- api

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit_recipe(self, recipe: dict) -> dict:
        """Submit one wire-format recipe; returns the outcome JSON
        (``{"cache", "job", "record"}``)."""
        return self._request("POST", "/v1/jobs", payload=recipe)

    def submit(self, request: JobRequest) -> dict:
        """Submit an in-process :class:`JobRequest` over the wire.

        Only recipe-expressible requests can travel; anything custom raises
        ``ServiceError(kind="invalid-config")`` — use the in-process
        :meth:`ServiceThread.submit` path for those.
        """
        recipe = recipe_from_request(request)
        if recipe is None:
            raise ServiceError(
                "request is not expressible as a wire recipe; submit"
                " in-process instead",
                kind="invalid-config",
            )
        return self.submit_recipe(recipe)
