"""Sweep-as-a-service: an async job queue in front of the simulator.

``repro.service`` gives the batch :class:`~repro.experiments.runner.SweepRunner`
a production front door.  Requests flow through admission validation (bad
configurations are rejected before any engine time is spent), a priority
scheduler with size-classed lanes and aging (small interactive runs preempt
32-GPM batch sweeps, nothing starves), per-client token-bucket rate limits
and stale-job eviction, and finally a worker pool that executes through the
existing :func:`~repro.gpu.simulator.simulate` path.  Results land in a
content-addressed store keyed by the same ``RESULTS_VERSION``-aware
fingerprints the sweep cache uses (:mod:`repro.service.keys`), with
single-flight dedup so identical in-flight requests coalesce to one
simulation and repeats are O(1) cache hits.

The layer is observable end to end through PR 1's
:class:`~repro.trace.MetricsRegistry` (queue depth, lane occupancy,
admission rejections, cache hit rate, latency histograms — see
``docs/SERVICE.md``) and is driven by ``repro serve`` / ``repro submit``.

The execution-side names (``SweepService``, ``ServiceThread``,
``ServiceClient``, ``ServiceSweepRunner``) resolve lazily: they pull in the
experiment runner, which itself imports :mod:`repro.service.keys`, so eager
imports here would cycle.
"""

from repro.service.evict import EvictionPolicy
from repro.service.job import (
    Job,
    JobOutcome,
    JobRequest,
    JobState,
    request_from_recipe,
)
from repro.service.keys import (
    RESULTS_VERSION,
    cache_key,
    config_fingerprint,
    spec_fingerprint,
    spec_hash,
)
from repro.service.limiter import RateLimiter, TokenBucket
from repro.service.metrics import ServiceMetrics
from repro.service.priority import AgingPolicy, Lane, classify
from repro.service.queue import JobQueue
from repro.service.store import ResultStore, SingleFlight

#: Lazily resolved attribute -> defining submodule.
_LAZY = {
    "SweepService": "repro.service.server",
    "ServiceConfig": "repro.service.server",
    "ServiceThread": "repro.service.server",
    "ServiceClient": "repro.service.client",
    "ServiceSweepRunner": "repro.service.adapter",
}

__all__ = [
    "AgingPolicy",
    "EvictionPolicy",
    "Job",
    "JobOutcome",
    "JobQueue",
    "JobRequest",
    "JobState",
    "Lane",
    "RESULTS_VERSION",
    "RateLimiter",
    "ResultStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceSweepRunner",
    "ServiceThread",
    "SingleFlight",
    "SweepService",
    "TokenBucket",
    "cache_key",
    "classify",
    "config_fingerprint",
    "request_from_recipe",
    "spec_fingerprint",
    "spec_hash",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
