"""The pending-job queue: size-classed lanes, aged-priority popping.

Within a lane, jobs age identically, so the lane head is always the lane's
best candidate and plain FIFO deques suffice; popping compares the heads of
the non-empty lanes by :meth:`~repro.service.priority.AgingPolicy.effective_priority`
(submission order breaks ties).  That makes every operation O(#lanes) — the
queue never sorts — while still giving the scheduler the two properties the
service needs: interactive work jumps ahead of queued batch work, and aging
bounds every job's wait (see ``tests/service/test_queue.py``).

The queue is a plain synchronous data structure with an injectable clock;
the asyncio service wraps it with a condition variable, and property tests
drive it with a fake clock.
"""

from __future__ import annotations

import itertools
import time
from collections import deque

from repro.service.job import Job, JobState
from repro.service.priority import AgingPolicy, Lane


class JobQueue:
    """Pending jobs in per-lane FIFO order with aged-priority popping."""

    def __init__(
        self,
        aging: AgingPolicy | None = None,
        clock=time.monotonic,
    ) -> None:
        self.aging = aging or AgingPolicy()
        self._clock = clock
        self._lanes: dict[Lane, deque[Job]] = {lane: deque() for lane in Lane}
        self._seq = itertools.count()

    # ------------------------------------------------------------------ state

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def __bool__(self) -> bool:
        return any(self._lanes.values())

    def lane_depths(self) -> dict[Lane, int]:
        return {lane: len(jobs) for lane, jobs in self._lanes.items()}

    def pending(self) -> list[Job]:
        """Every queued job (scheduling order not implied)."""
        return [job for jobs in self._lanes.values() for job in jobs]

    # -------------------------------------------------------------- push / pop

    def push(self, job: Job, now: float | None = None) -> None:
        """Enqueue one admitted job at the tail of its lane."""
        job.seq = next(self._seq)
        job.enqueued_at = self._clock() if now is None else now
        job.state = JobState.PENDING
        self._lanes[job.lane].append(job)

    def effective_priority(self, job: Job, now: float | None = None) -> float:
        now = self._clock() if now is None else now
        return self.aging.effective_priority(job.lane, now - job.enqueued_at)

    def pop_next(self, now: float | None = None) -> Job | None:
        """Remove and return the best-priority job, or ``None`` when empty.

        Best = minimal ``(effective priority, submission seq)`` over the
        lane heads; the seq tiebreak makes equal-priority service FIFO
        across lanes, so the pop order is deterministic for a fixed clock.
        """
        now = self._clock() if now is None else now
        best_lane: Lane | None = None
        best_rank: tuple[float, int] | None = None
        for lane, jobs in self._lanes.items():
            if not jobs:
                continue
            head = jobs[0]
            rank = (self.effective_priority(head, now), head.seq)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_lane = lane
        if best_lane is None:
            return None
        return self._lanes[best_lane].popleft()

    def remove(self, job: Job) -> bool:
        """Remove one specific pending job (eviction); False when absent."""
        try:
            self._lanes[job.lane].remove(job)
        except ValueError:
            return False
        return True
