"""Size-classed scheduling lanes with aging.

Jobs are classified by how much engine time they plausibly cost — GPM count
and grid size are the dominant terms — into three lanes:

* ``INTERACTIVE`` — small chips (1-4 GPMs) with shrunken grids: the
  ``repro submit`` / notebook loop.  Served first.
* ``STANDARD`` — everything in between.
* ``BATCH`` — 16-32 GPM sweep legs and full-size grids: throughput work
  that must never block a human.

Preemption here is *queue-jumping*: a newly admitted interactive job is
popped ahead of queued batch jobs, but a batch job already on a worker is
never interrupted (the engine is deterministic and runs to completion).

Starvation is prevented by aging: a job's effective priority improves
linearly with its wait, one lane level per :attr:`AgingPolicy.aging_seconds`,
so any batch job outranks *fresh* interactive arrivals once it has waited
``aging_seconds * (BATCH.base_priority - INTERACTIVE.base_priority)``.
``tests/service/test_queue.py`` holds a Hypothesis proof of that bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpu.config import GpuConfig
from repro.workloads.spec import WorkloadSpec

#: Lane classification thresholds.
INTERACTIVE_MAX_GPMS = 4
INTERACTIVE_MAX_CTAS = 256
BATCH_MIN_GPMS = 16
BATCH_MIN_CTAS = 4096


class Lane(enum.Enum):
    """Scheduling class of one job; lower ``base_priority`` serves first."""

    INTERACTIVE = "interactive"
    STANDARD = "standard"
    BATCH = "batch"

    @property
    def base_priority(self) -> int:
        return _BASE_PRIORITY[self]


_BASE_PRIORITY = {Lane.INTERACTIVE: 0, Lane.STANDARD: 1, Lane.BATCH: 2}


def classify(spec: WorkloadSpec, config: GpuConfig) -> Lane:
    """The scheduling lane of one (workload, configuration) pair."""
    if (
        config.num_gpms >= BATCH_MIN_GPMS
        or spec.total_ctas >= BATCH_MIN_CTAS
    ):
        return Lane.BATCH
    if (
        config.num_gpms <= INTERACTIVE_MAX_GPMS
        and spec.total_ctas <= INTERACTIVE_MAX_CTAS
    ):
        return Lane.INTERACTIVE
    return Lane.STANDARD


@dataclass(frozen=True)
class AgingPolicy:
    """How fast waiting erodes a lane's priority handicap.

    ``effective_priority`` is what the queue minimizes: the lane's base
    priority expressed in seconds of handicap (one aging period per lane
    level) minus the job's wait.  It decreases
    without bound as a job waits, so every job eventually outranks every
    possible fresh arrival — the no-starvation guarantee.
    """

    aging_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.aging_seconds <= 0:
            raise ConfigError(
                f"aging_seconds must be positive, got {self.aging_seconds!r}"
            )

    def effective_priority(self, lane: Lane, waited_s: float) -> float:
        # Computed as base*aging - waited (seconds) rather than
        # base - waited/aging (periods): same ordering, but the division
        # form can round two mathematically-equal ranks apart, handing a
        # tie that belongs to the FIFO seq tiebreak to whichever side
        # rounded lower.
        return lane.base_priority * self.aging_seconds - max(0.0, waited_s)
