"""Per-client token-bucket rate limiting.

Each client identity owns one bucket: ``burst`` tokens of headroom refilled
continuously at ``rate_per_s``.  Admission spends one token per submission;
an empty bucket means the request is rejected with a rate-limit error
*before* touching the queue or the engine, so one chatty client cannot
crowd out the lanes.  ``rate_per_s=None`` disables limiting entirely (the
in-process adapter and trusted batch drivers use that).

The limiter is clock-injected and synchronous, like the queue: the service
calls it from the event loop, tests drive it with a fake clock.
"""

from __future__ import annotations

import time

from repro.errors import ConfigError


class TokenBucket:
    """One client's budget: ``burst`` capacity, ``rate_per_s`` refill."""

    __slots__ = ("rate_per_s", "burst", "tokens", "_updated_at")

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ConfigError(f"rate_per_s must be positive, got {rate_per_s!r}")
        if burst < 1:
            raise ConfigError(f"burst must be >= 1, got {burst!r}")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self.tokens = float(burst)
        self._updated_at: float | None = None

    def try_acquire(self, now: float) -> bool:
        """Spend one token if available, refilling for elapsed time first."""
        if self._updated_at is not None and now > self._updated_at:
            self.tokens = min(
                self.burst,
                self.tokens + (now - self._updated_at) * self.rate_per_s,
            )
        self._updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class RateLimiter:
    """Per-client buckets; unknown clients start with a full burst."""

    def __init__(
        self,
        rate_per_s: float | None,
        burst: float = 32.0,
        clock=time.monotonic,
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate_per_s is not None

    def allow(self, client: str, now: float | None = None) -> bool:
        """True when ``client`` may submit one more job right now."""
        if self.rate_per_s is None:
            return True
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate_per_s, self.burst)
            self._buckets[client] = bucket
        return bucket.try_acquire(self._clock() if now is None else now)

    def clients(self) -> list[str]:
        return sorted(self._buckets)
