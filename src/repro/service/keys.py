"""Content-address identity: the cache keys shared by sweeps and the service.

One (workload spec, GPU configuration) pair has exactly one key, derived
from a canonical JSON fingerprint of both plus ``RESULTS_VERSION``.  The
batch sweep cache (:mod:`repro.experiments.runner`) and the service result
store (:mod:`repro.service.store`) both key by these functions, so they can
never skew: a record cached by either layer is a hit for the other.

The emitted bytes are pinned by golden tests (``tests/service/test_keys.py``
and the pre-DVFS pins in ``tests/experiments/test_runner.py``).  Changing
any fingerprint here without a deliberate ``RESULTS_VERSION`` bump orphans
every cache entry on every machine — treat such a test failure as a bug in
the fingerprint, not as a fixture to refresh.

Fingerprint conventions (the precedent set when DVFS and power capping were
added): optional subsystems only join the fingerprint when configured, so
plain configurations keep their cache identity across library versions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.gpu.config import GpuConfig
from repro.workloads.spec import WorkloadSpec

#: Bump when simulator semantics change, invalidating every cached record.
RESULTS_VERSION = 4


def config_fingerprint(config: GpuConfig) -> dict:
    """Deterministic cache-key content for one GPU configuration."""
    return {
        "num_gpms": config.num_gpms,
        "gpm": asdict(config.gpm),
        "interconnect": (
            None if config.interconnect is None
            else {
                "kind": config.interconnect.kind.value,
                "bw": config.interconnect.per_gpm_bandwidth_gbps,
                "lat": config.interconnect.link_latency_cycles,
            }
        ),
        "domain": config.integration_domain.value,
        "placement": config.placement_policy.value,
        # Only fingerprint compression when configured, so plain configs
        # keep their cache identity across library versions.
        **(
            {}
            if config.compression is None
            else {
                "compression": {
                    "ratio": config.compression.data_ratio,
                    "lat": config.compression.codec_latency_cycles,
                    "min": config.compression.min_payload_bytes,
                }
            }
        ),
        # Same precedent for DVFS: only off-anchor configurations carry the
        # operating points in their key.
        **(
            {}
            if config.dvfs is None
            else {"dvfs": config.dvfs.fingerprint()}
        ),
        # And for power capping: the cap changes runtime behaviour (a
        # PowerCapGovernor is attached), so capped configs must never share
        # a cache entry with uncapped ones — or with a different budget.
        **(
            {}
            if config.power_cap_watts is None
            else {"power_cap_watts": config.power_cap_watts}
        ),
        # And for idle states: sleep latencies, residual power, and the
        # governor all change runtime behaviour, so idle-enabled configs get
        # their own identity while idle-off keys stay byte-stable.
        **(
            {}
            if config.idle is None
            else {"idle": config.idle.fingerprint()}
        ),
    }


def _canonical_mixes(mapping: dict) -> dict:
    """Re-key any opcode-mix dict values by opcode name (JSON-safe)."""
    return {
        key: (value if not isinstance(value, dict) else
              {opcode.value: weight for opcode, weight in value.items()})
        for key, value in mapping.items()
    }


def spec_fingerprint(spec: WorkloadSpec) -> dict:
    """Deterministic cache-key content for one workload specification."""
    fields = asdict(spec)
    phases = fields.pop("phases", None)
    return _canonical_mixes(
        {key: value for key, value in fields.items() if key != "compute_mix"}
    ) | {"mix": {op.value: w for op, w in spec.compute_mix.items()}} | (
        # The phase schedule follows the optional-subsystem precedent:
        # flat specs keep their (byte-pinned) pre-phase cache identity.
        {} if phases is None
        else {"phases": [_canonical_mixes(phase) for phase in phases]}
    )


def spec_hash(spec: WorkloadSpec) -> str:
    """Short content hash of one workload specification (manifests)."""
    blob = json.dumps(spec_fingerprint(spec), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def key_blob(spec: WorkloadSpec, config: GpuConfig) -> str:
    """The canonical JSON string a cache key hashes (golden-test surface)."""
    return json.dumps(
        {
            "version": RESULTS_VERSION,
            "spec": spec_fingerprint(spec),
            "config": config_fingerprint(config),
        },
        sort_keys=True,
        default=str,
    )


def cache_key(spec: WorkloadSpec, config: GpuConfig) -> str:
    """The content address of one (workload, configuration) result."""
    return hashlib.sha256(key_blob(spec, config).encode()).hexdigest()[:24]
