"""Content-addressed result store with single-flight dedup.

The store maps :func:`repro.service.keys.cache_key` content addresses to
``RunRecord.to_json()`` payloads through two tiers:

* a bounded in-memory LRU (the O(1) hot path a repeated paper-study config
  hits), and
* the sweep cache's own on-disk layout (``<cache_dir>/<key>.json``) — the
  *same* files :class:`~repro.experiments.runner.SweepRunner` reads and
  writes, so a result simulated by either layer is a hit for both and the
  two caches can never skew.

:class:`SingleFlight` is the companion in-flight index: the first submitter
of a key becomes the *leader* whose job simulates; everyone arriving while
it is in flight joins the leader's job and awaits the same future, so N
identical concurrent submissions cost exactly one simulation and all
waiters receive the identical (bit-for-bit, same object) payload.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path

from repro.service.job import Job


def default_cache_dir() -> Path:
    """The sweep cache directory (same resolution as the sweep runner)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / ".cache" / "sweeps"


class ResultStore:
    """Two-tier (memory LRU over shared disk) content-addressed store."""

    def __init__(
        self,
        cache_dir: Path | None = None,
        use_disk: bool = True,
        memory_capacity: int = 1024,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.use_disk = use_disk
        self.memory_capacity = memory_capacity
        self._memory: OrderedDict[str, dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    # ------------------------------------------------------------------ lookup

    def get(self, key: str) -> dict | None:
        """The stored record payload for ``key``, or ``None``."""
        record = self._memory.get(key)
        if record is not None:
            self._memory.move_to_end(key)
            return record
        if not self.use_disk:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with path.open() as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            # A corrupt entry must never poison a response; drop it and
            # let the next submission re-simulate.
            path.unlink(missing_ok=True)
            return None
        self._remember(key, record)
        return record

    # ------------------------------------------------------------------- store

    def put(self, key: str, record: dict) -> None:
        """Store one record payload under its content address."""
        self._remember(key, record)
        if not self.use_disk:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with tmp.open("w") as handle:
            json.dump(record, handle)
        tmp.replace(path)

    def _remember(self, key: str, record: dict) -> None:
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_capacity:
            self._memory.popitem(last=False)


class SingleFlight:
    """In-flight jobs by key; duplicates coalesce onto the leader's job.

    All methods run on the service's event loop, so check-then-act
    sequences here are atomic with respect to other submissions.
    """

    def __init__(self) -> None:
        self._inflight: dict[str, Job] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def leader_job(self, key: str) -> Job | None:
        """The in-flight job a duplicate submission should join, if any."""
        return self._inflight.get(key)

    def start(self, key: str, job: Job) -> None:
        assert key not in self._inflight, f"key {key} already in flight"
        self._inflight[key] = job

    def finish(self, key: str) -> None:
        """Retire a flight (after its future resolved and the store was
        updated); later submissions hit the store instead."""
        self._inflight.pop(key, None)

    def keys(self) -> list[str]:
        return sorted(self._inflight)
