"""Maintenance tools runnable as ``python -m repro.tools.<name>``.

* :mod:`repro.tools.regen_goldens` — regenerate the golden-counter snapshots
  that guard simulator semantics (``tests/regression/goldens/``).
* :mod:`repro.tools.validate_trace` — validate a Chrome ``trace_event`` JSON
  file produced by ``repro trace`` against the expected schema.
"""
