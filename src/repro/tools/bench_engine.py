"""Simulator-throughput benchmark: events/sec on the headline GPM sweep.

The paper's scaling study (Figs. 6-10) is a sweep over 1-32 GPMs, and every
simulated cycle funnels through ``Engine.run``.  This harness measures the
two numbers that bound sweep turnaround: *events per second* through the
discrete-event core and end-to-end wall-clock per configuration.  Results are
written as machine-readable JSON (``BENCH_sim.json``) so the repo carries a
perf trajectory: each PR that touches the hot path re-runs the bench and the
committed baseline shows whether throughput moved.

Cross-machine comparisons use a *normalized* events/sec: raw events/sec
divided by a small pure-Python calibration loop's Mops score measured in the
same process.  This cancels (to first order) the CPU-speed difference between
the laptop that committed the baseline and the CI runner that checks it, so
``--check`` can fail on real regressions instead of hardware deltas.

Usage::

    PYTHONPATH=src python -m repro.tools.bench_engine            # full sweep
    PYTHONPATH=src python -m repro.tools.bench_engine --quick    # CI-sized
    PYTHONPATH=src python -m repro.tools.bench_engine --quick \
        --check BENCH_sim.json --tolerance 0.2                   # perf smoke

or equivalently ``repro bench`` (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

#: Bump when the BENCH_sim.json layout changes incompatibly.  v2 adds the
#: sharded-engine columns (``sharded_*``) to every case row; the
#: single-process columns are unchanged, so ``--check`` still accepts v1
#: baselines.
BENCH_SCHEMA_VERSION = 2

#: Default allowed normalized-events/sec regression before --check fails.
DEFAULT_TOLERANCE = 0.20


@dataclass(frozen=True)
class BenchCase:
    """One (workload, configuration) throughput measurement."""

    workload: str
    gpms: int
    topology: str = "ring"
    ctas: int = 256
    kernels: int = 2

    def key(self) -> str:
        return (
            f"{self.workload}:{self.gpms}gpm:{self.topology}"
            f":{self.ctas}cta:{self.kernels}k"
        )


#: The CI-sized smoke case (always measured, quick mode measures only this).
QUICK_CASE = BenchCase(workload="Stream", gpms=4, ctas=64, kernels=1)

#: The headline sweep: the paper's 1-32 GPM axis on a memory workload.
HEADLINE_CASES: tuple[BenchCase, ...] = tuple(
    BenchCase(workload="Stream", gpms=n) for n in (1, 2, 4, 8, 16, 32)
)


def calibration_mops(iterations: int = 1_000_000, repeats: int = 3) -> float:
    """Machine-speed score: millions of trivial loop ops per second.

    A deliberately boring pure-Python loop — the same interpreter work the
    simulator's hot path is made of — measured best-of-``repeats`` so one
    scheduler hiccup cannot skew normalization.
    """
    best = float("inf")
    for _ in range(repeats):
        acc = 0
        start = time.perf_counter()
        for i in range(iterations):
            acc += i & 7
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return iterations / best / 1e6


def run_case(case: BenchCase, repeats: int = 3, shards: int | None = None) -> dict:
    """Simulate one case ``repeats`` times; report best-wall throughput.

    Every case is measured twice: through the single-process engine (the
    ``events_per_sec`` column checked by ``--check``) and through the
    per-GPM sharded engine (``sharded_*`` columns; ``shards`` defaults to
    the case's GPM count).  Sharded runs are bit-identical to single-engine
    runs, so event counts must agree; a run that cannot shard records its
    fallback reason and the fallback's measured throughput.
    """
    from repro.gpu.config import TopologyKind, table_iii_config
    from repro.gpu.simulator import simulate
    from repro.workloads.generator import build_workload
    from repro.workloads.suite import shrunken_spec

    spec = shrunken_spec(case.workload, total_ctas=case.ctas, kernels=case.kernels)
    config = table_iii_config(case.gpms, topology=TopologyKind(case.topology))
    if shards is None:
        shards = case.gpms
    best_wall = float("inf")
    events = 0
    cycles = 0.0
    for _ in range(repeats):
        workload = build_workload(spec)
        start = time.perf_counter()
        result = simulate(workload, config)
        wall = time.perf_counter() - start
        best_wall = min(best_wall, wall)
        events = result.events_processed
        cycles = result.cycles
    sharded_wall = float("inf")
    sharded_events = 0
    fallback_reason = None
    for _ in range(repeats):
        workload = build_workload(spec)
        start = time.perf_counter()
        result = simulate(workload, config, shards=shards)
        wall = time.perf_counter() - start
        sharded_wall = min(sharded_wall, wall)
        sharded_events = result.events_processed
        fallback_reason = (
            None if result.sharding is None else result.sharding.fallback_reason
        )
    return {
        **asdict(case),
        "key": case.key(),
        "events": events,
        "cycles": cycles,
        "wall_s": best_wall,
        "events_per_sec": events / best_wall if best_wall > 0 else 0.0,
        "sharded_shards": shards,
        "sharded_fallback": fallback_reason,
        "sharded_events": sharded_events,
        "sharded_wall_s": sharded_wall,
        "sharded_events_per_sec": (
            sharded_events / sharded_wall if sharded_wall > 0 else 0.0
        ),
    }


def run_bench(quick: bool = False, repeats: int = 3) -> dict:
    """Run the benchmark suite and return the BENCH_sim.json payload."""
    from repro.trace.manifest import host_info

    cases = [QUICK_CASE] if quick else [QUICK_CASE, *HEADLINE_CASES]
    mops = calibration_mops()
    rows = []
    for case in cases:
        row = run_case(case, repeats=repeats)
        row["normalized_events_per_mop"] = (
            row["events_per_sec"] / (mops * 1e6) if mops > 0 else 0.0
        )
        row["sharded_normalized_events_per_mop"] = (
            row["sharded_events_per_sec"] / (mops * 1e6) if mops > 0 else 0.0
        )
        rows.append(row)
        sharded_note = (
            "fallback" if row["sharded_fallback"] is not None
            else f"{row['sharded_shards']}sh"
        )
        print(
            f"[bench] {row['key']:<34} {row['events']:>9d} events"
            f" {row['wall_s'] * 1e3:>8.1f} ms"
            f" {row['events_per_sec'] / 1e3:>8.1f}k ev/s"
            f" | sharded {row['sharded_events_per_sec'] / 1e3:>8.1f}k ev/s"
            f" ({sharded_note})",
            file=sys.stderr,
            flush=True,
        )
    total_events = sum(row["events"] for row in rows)
    total_wall = sum(row["wall_s"] for row in rows)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": host_info(),
        "calibration_mops": mops,
        "quick": quick,
        "repeats": repeats,
        "cases": rows,
        "aggregate": {
            "events": total_events,
            "wall_s": total_wall,
            "events_per_sec": total_events / total_wall if total_wall else 0.0,
        },
    }


def check_sharded_smoke(
    current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Fail if the sharded engine is slower than the single-process engine.

    The bit-identity contract means sharding may only buy throughput, never
    change results — so the perf smoke is a simple floor: on every measured
    case, sharded events/sec must be at least ``(1 - tolerance)`` of the
    single-engine column.  Fallback runs go through the single-process path
    and should trivially pass; a failure there means the sharded dispatch
    itself grew overhead.
    """
    failures: list[str] = []
    for row in current.get("cases", []):
        single = row.get("events_per_sec", 0.0)
        sharded = row.get("sharded_events_per_sec", 0.0)
        if single <= 0.0:
            continue
        ratio = sharded / single
        if ratio < 1.0 - tolerance:
            note = row.get("sharded_fallback") or f"{row.get('sharded_shards')} shards"
            failures.append(
                f"{row['key']}: sharded engine at {ratio:.2f}x of"
                f" single-process throughput ({note};"
                f" tolerance {1.0 - tolerance:.2f}x)"
            )
    return failures


def check_regression(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare normalized throughput against a committed baseline.

    Returns a list of human-readable failure strings (empty == pass).  Only
    cases present in *both* results are compared, so a quick run can be
    checked against a committed full-sweep baseline.
    """
    failures: list[str] = []
    baseline_by_key = {row["key"]: row for row in baseline.get("cases", [])}
    compared = 0
    for row in current.get("cases", []):
        base = baseline_by_key.get(row["key"])
        if base is None:
            continue
        compared += 1
        base_norm = base.get("normalized_events_per_mop", 0.0)
        cur_norm = row.get("normalized_events_per_mop", 0.0)
        if base_norm <= 0.0:
            continue
        ratio = cur_norm / base_norm
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{row['key']}: normalized events/sec regressed to"
                f" {ratio:.2f}x of baseline"
                f" (tolerance {1.0 - tolerance:.2f}x)"
            )
    if compared == 0:
        failures.append("no overlapping cases between current run and baseline")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Measure discrete-event-core throughput (events/sec) on the"
            " headline 1-32 GPM sweep and write BENCH_sim.json."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="measure only the CI-sized smoke case",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="simulations per case; best wall-clock wins (default: 3)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_sim.json",
        help="output JSON path (default: BENCH_sim.json)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare against a committed BENCH_sim.json; exit 1 on regression",
    )
    parser.add_argument(
        "--sharded-smoke",
        action="store_true",
        help=(
            "fail if sharded events/sec falls below the single-engine column"
            " by more than --tolerance on any measured case"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=(
            "allowed fractional normalized-events/sec regression before"
            f" --check fails (default: {DEFAULT_TOLERANCE})"
        ),
    )
    args = parser.parse_args(argv)

    payload = run_bench(quick=args.quick, repeats=args.repeat)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    aggregate = payload["aggregate"]
    print(
        f"[bench] aggregate: {aggregate['events']} events in"
        f" {aggregate['wall_s']:.2f}s"
        f" = {aggregate['events_per_sec'] / 1e3:.1f}k events/sec -> {out}"
    )

    if args.check is not None:
        with Path(args.check).open() as handle:
            baseline = json.load(handle)
        failures = check_regression(payload, baseline, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"[bench] REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"[bench] check passed against {args.check}")

    if args.sharded_smoke:
        failures = check_sharded_smoke(payload, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"[bench] SHARDED SMOKE: {failure}", file=sys.stderr)
            return 1
        print("[bench] sharded smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
