"""End-to-end smoke check for the sweep service (``make service-smoke``).

Starts a real service (workers + HTTP) on an ephemeral port, then drives
the full request lifecycle over the wire and asserts the exported metrics
tell the right story:

1. an uncached submission misses, simulates once, and completes;
2. resubmitting the identical recipe hits the store without engine work;
3. an infeasible-power-cap recipe is rejected at admission (HTTP 400,
   ``kind=invalid-config``) without a worker ever seeing it.

Exits non-zero with a diagnostic on the first violated expectation, so CI
gets a one-line cause rather than a stack of JSON.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.metrics import (
    ADMISSION_ACCEPTED,
    ADMISSION_REJECTED,
    CACHE_HITS,
    CACHE_MISSES,
    JOBS_COMPLETED,
    SIM_RUNS,
)
from repro.service.server import ServiceConfig, ServiceThread

RECIPE = {"workload": "Stream", "ctas": 16, "gpms": 2}
INFEASIBLE = {"workload": "Stream", "ctas": 16, "gpms": 4, "cap_watts": 1.0}


def _expect(condition: bool, message: str) -> None:
    if not condition:
        print(f"service-smoke: FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)


def main(argv: list[str] | None = None) -> int:
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        config = ServiceConfig(workers=2, cache_dir=Path(tmp))
        with ServiceThread(config) as thread:
            client = ServiceClient(
                thread.host, thread.port, client_id="service-smoke"
            )
            health = client.healthz()
            _expect(health.get("status") == "ok", f"bad healthz: {health}")

            first = client.submit_recipe(RECIPE)
            _expect(
                first["cache"] == "miss",
                f"fresh submission should miss, got {first['cache']!r}",
            )
            second = client.submit_recipe(RECIPE)
            _expect(
                second["cache"] == "hit",
                f"resubmission should hit, got {second['cache']!r}",
            )
            _expect(
                first["record"] == second["record"],
                "hit record differs from the simulated record",
            )

            try:
                client.submit_recipe(INFEASIBLE)
                _expect(False, "infeasible cap was accepted")
            except ServiceError as error:
                _expect(
                    error.kind == "invalid-config",
                    f"wrong rejection kind: {error.kind!r}",
                )

            counts = client.metrics()["counts"]
            for name, want in {
                ADMISSION_ACCEPTED: 2,
                ADMISSION_REJECTED: 1,
                CACHE_MISSES: 1,
                CACHE_HITS: 1,
                SIM_RUNS: 1,
                JOBS_COMPLETED: 1,
            }.items():
                got = counts.get(name, 0)
                _expect(got == want, f"{name}: expected {want}, got {got}")

    print(
        "service-smoke: OK (1 miss simulated once, 1 hit served from the"
        " store, 1 infeasible cap rejected at admission)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
