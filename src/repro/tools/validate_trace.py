"""Validate a Chrome ``trace_event`` JSON file produced by ``repro trace``.

Checks the structural invariants Perfetto / chrome://tracing rely on:

* top-level object with a ``traceEvents`` list,
* every event carries ``ph``, ``pid``, ``tid`` and the per-phase required
  keys (``ts``/``name``/``dur`` as applicable),
* per-(pid, tid) duration events nest properly — every ``E`` closes an open
  ``B``, no span ends before it starts, and no track is left with open spans,
* timestamps within each track's span stack are non-decreasing.

When :mod:`jsonschema` is installed the file is additionally checked against
a JSON Schema of the event envelope; without it the hand-rolled checks alone
run (they are the stricter ones anyway).

Usage::

    PYTHONPATH=src python -m repro.tools.validate_trace trace.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: Phases repro's ChromeTracer emits.  Anything else is flagged.
KNOWN_PHASES = {"B", "E", "i", "X", "C", "M"}

#: Extra keys each phase must carry beyond ph/pid/tid.
REQUIRED_KEYS: dict[str, tuple[str, ...]] = {
    "B": ("name", "ts"),
    "E": ("ts",),
    "i": ("name", "ts"),
    "X": ("name", "ts", "dur"),
    "C": ("name", "ts", "args"),
    "M": ("name", "args"),
}

#: JSON Schema for one trace event (used only when jsonschema is available).
EVENT_SCHEMA = {
    "type": "object",
    "properties": {
        "ph": {"type": "string", "enum": sorted(KNOWN_PHASES)},
        "pid": {"type": "integer"},
        "tid": {"type": "integer"},
        "name": {"type": "string"},
        "ts": {"type": "number", "minimum": 0},
        "dur": {"type": "number", "minimum": 0},
        "args": {"type": "object"},
        "s": {"type": "string"},
        "cat": {"type": "string"},
    },
    "required": ["ph", "pid", "tid"],
}

TRACE_SCHEMA = {
    "type": "object",
    "properties": {
        "traceEvents": {"type": "array", "items": EVENT_SCHEMA},
        "displayTimeUnit": {"type": "string"},
    },
    "required": ["traceEvents"],
}


def _jsonschema_errors(data: object) -> list[str]:
    try:
        import jsonschema
    except ImportError:
        return []
    validator = jsonschema.Draft7Validator(TRACE_SCHEMA)
    return [
        f"schema: {'/'.join(str(p) for p in error.absolute_path) or '<root>'}:"
        f" {error.message}"
        for error in validator.iter_errors(data)
    ]


def validate_trace(data: object) -> list[str]:
    """Return every invariant violation found in a loaded trace (or [])."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return ["top level is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]

    # (pid, tid) -> stack of (name, ts) for open B spans.
    open_spans: dict[tuple[int, int], list[tuple[str, float]]] = {}

    for position, event in enumerate(events):
        where = f"event {position}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            errors.append(f"{where} (ph={ph}): pid/tid missing or non-integer")
            continue
        missing = [key for key in REQUIRED_KEYS[ph] if key not in event]
        if missing:
            errors.append(f"{where} (ph={ph}): missing {', '.join(missing)}")
            continue

        if ph == "M":
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where} (ph={ph}): bad ts {ts!r}")
            continue

        track = (event["pid"], event["tid"])
        stack = open_spans.setdefault(track, [])
        if ph == "B":
            if stack and ts < stack[-1][1]:
                errors.append(
                    f"{where}: B {event['name']!r} at ts={ts} starts before"
                    f" its enclosing span {stack[-1][0]!r} (ts={stack[-1][1]})"
                )
            stack.append((event["name"], ts))
        elif ph == "E":
            if not stack:
                errors.append(f"{where}: E with no open B on track {track}")
                continue
            name, begin_ts = stack.pop()
            if ts < begin_ts:
                errors.append(
                    f"{where}: span {name!r} ends at ts={ts} before its"
                    f" begin ts={begin_ts}"
                )
        elif ph == "X":
            dur = event["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X {event['name']!r} bad dur {dur!r}")

    for track, stack in open_spans.items():
        for name, ts in stack:
            errors.append(
                f"track {track}: span {name!r} opened at ts={ts} never closed"
            )

    errors.extend(_jsonschema_errors(data))
    return errors


def validate_trace_file(path: Path) -> list[str]:
    """Load ``path`` and validate it; parse failures become errors."""
    try:
        with path.open() as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: cannot load trace JSON: {exc}"]
    return validate_trace(data)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.validate_trace",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("trace", type=Path, nargs="+", help="trace JSON file(s)")
    args = parser.parse_args(argv)
    failed = False
    for path in args.trace:
        errors = validate_trace_file(path)
        if errors:
            failed = True
            print(f"{path}: INVALID ({len(errors)} problems)")
            for error in errors[:20]:
                print(f"  {error}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            with path.open() as handle:
                count = len(json.load(handle).get("traceEvents", []))
            print(f"{path}: OK ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
