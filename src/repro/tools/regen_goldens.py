"""Regenerate the golden-counter snapshots guarding simulator semantics.

The golden suite (``tests/regression/test_golden_counters.py``) pins the full
:class:`~repro.gpu.counters.CounterSet` of two tiny deterministic workloads on
a 1-GPM and a 4-GPM-ring configuration.  Any change to instruction counting,
cache behaviour, NUMA routing, or timing shows up as a golden diff.

If a diff is *intended* (you changed simulator semantics on purpose):

1. bump ``RESULTS_VERSION`` in ``repro/experiments/runner.py`` so stale sweep
   caches are invalidated, then
2. regenerate the snapshots::

       PYTHONPATH=src python -m repro.tools.regen_goldens

and commit the updated JSON along with the change that caused it.
"""

from __future__ import annotations

import argparse
import json
import math
from pathlib import Path

from repro.core.energy_model import EnergyParams
from repro.dvfs.config import DvfsConfig
from repro.dvfs.idle import IdleConfig
from repro.dvfs.operating_point import K40_VF_CURVE
from repro.experiments.runner import RESULTS_VERSION
from repro.gpu.config import (
    GpmConfig,
    GpuConfig,
    IntegrationDomain,
    InterconnectConfig,
    TopologyKind,
)
from repro.gpu.counters import CounterSet
from repro.gpu.simulator import simulate
from repro.isa.kernel import WorkloadCategory
from repro.isa.opcodes import Opcode
from repro.units import KIB
from repro.workloads.generator import build_workload
from repro.workloads.spec import PhaseSpec, WorkloadSpec

#: Where the checked-in snapshots live.
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "regression" / "goldens"

#: Relative tolerance for float counters (cycle totals); integer counters
#: must match exactly.
FLOAT_RTOL = 1e-9


def _golden_gpm() -> GpmConfig:
    return GpmConfig(num_sms=2, slots_per_sm=2)


#: Two deterministic micro-workloads: a streaming one (local traffic only
#: under first touch) and a sharing-heavy one that exercises the NUMA path.
GOLDEN_SPECS: dict[str, WorkloadSpec] = {
    "stream-micro": WorkloadSpec(
        name="Golden Stream", abbr="stream-micro",
        category=WorkloadCategory.MEMORY,
        total_ctas=32, warps_per_cta=2, kernels=2, segments_per_warp=4,
        compute_per_segment=4, accesses_per_segment=2,
        compute_mix={Opcode.FFMA32: 0.7, Opcode.FADD32: 0.3},
        footprint_bytes=512 * KIB, shared_footprint_bytes=64 * KIB,
        hot_block_bytes=2 * KIB,
        frac_stream=0.8, frac_reuse=0.2, frac_halo=0.0, frac_shared=0.0,
        store_fraction=0.25, seed=7,
    ),
    "shared-micro": WorkloadSpec(
        name="Golden Shared", abbr="shared-micro",
        category=WorkloadCategory.MEMORY,
        total_ctas=32, warps_per_cta=2, kernels=2, segments_per_warp=4,
        compute_per_segment=2, accesses_per_segment=3,
        compute_mix={Opcode.FFMA32: 0.5, Opcode.FMUL64: 0.5},
        footprint_bytes=512 * KIB, shared_footprint_bytes=128 * KIB,
        hot_block_bytes=2 * KIB, shared_mem_fraction=0.1,
        frac_stream=0.4, frac_reuse=0.1, frac_halo=0.2, frac_shared=0.3,
        store_fraction=0.3, seed=11,
    ),
    # A bursty straggler grid: 33 CTAs over 8 four-slot GPMs split
    # [5,4,...,4], so one module runs a second wave while seven sit in a
    # kernel-boundary gap long enough to clock-gate — the shape that makes
    # the idle golden below actually sleep (TestGoldenCoverage pins it).
    "bursty-micro": WorkloadSpec(
        name="Golden Bursty", abbr="bursty-micro",
        category=WorkloadCategory.MEMORY,
        total_ctas=33, warps_per_cta=2, kernels=6, segments_per_warp=4,
        compute_per_segment=4, accesses_per_segment=2,
        compute_mix={Opcode.FFMA32: 0.7, Opcode.FADD32: 0.3},
        footprint_bytes=512 * KIB, shared_footprint_bytes=64 * KIB,
        hot_block_bytes=2 * KIB,
        frac_stream=0.8, frac_reuse=0.2, frac_halo=0.0, frac_shared=0.0,
        store_fraction=0.25, seed=13,
    ),
    # A phase-scheduled prefill/decode pair: the LLM-serving shape in
    # miniature.  The compute-dense prefill phase runs wide (32 CTAs), the
    # decode phase runs a 9-CTA straggler wave streaming the interleaved
    # shared region — pinning the per-kernel effective-spec generation and
    # the phased cache-key path end to end.
    "llm-micro": WorkloadSpec(
        name="Golden LLM", abbr="llm-micro",
        category=WorkloadCategory.MEMORY,
        total_ctas=32, warps_per_cta=2, segments_per_warp=4,
        footprint_bytes=512 * KIB, shared_footprint_bytes=64 * KIB,
        hot_block_bytes=2 * KIB,
        phases=(
            PhaseSpec(
                name="prefill", kernels=2,
                compute_per_segment=8, accesses_per_segment=1,
                compute_mix={Opcode.FFMA32: 0.8, Opcode.IMAD32: 0.2},
                frac_stream=0.8, frac_reuse=0.1, frac_halo=0.0,
                frac_shared=0.1, store_fraction=0.15,
            ),
            PhaseSpec(
                name="decode", kernels=3, total_ctas=9,
                compute_per_segment=1, accesses_per_segment=4,
                compute_mix={Opcode.IMAD32: 0.6, Opcode.FFMA32: 0.4},
                frac_stream=0.15, frac_reuse=0.1, frac_halo=0.0,
                frac_shared=0.75, store_fraction=0.05, seed_offset=1,
            ),
        ),
        seed=17,
    ),
}

def _golden_interconnect() -> InterconnectConfig:
    return InterconnectConfig(
        kind=TopologyKind.RING,
        per_gpm_bandwidth_gbps=256.0,
        link_latency_cycles=15.0,
        energy_pj_per_bit=0.54,
    )


GOLDEN_CONFIGS: dict[str, GpuConfig] = {
    "1gpm": GpuConfig(gpm=_golden_gpm(), num_gpms=1, name="golden-1gpm"),
    "4gpm-ring": GpuConfig(
        gpm=_golden_gpm(),
        num_gpms=4,
        interconnect=_golden_interconnect(),
        integration_domain=IntegrationDomain.ON_PACKAGE,
        name="golden-4gpm-ring",
    ),
    # A power-capped run: pins the PowerCapGovernor's waterfilling walk and
    # the per-GPM core residency it leaves behind (150 W of a 250 W nominal).
    "4gpm-cap": GpuConfig(
        gpm=_golden_gpm(),
        num_gpms=4,
        interconnect=_golden_interconnect(),
        integration_domain=IntegrationDomain.ON_PACKAGE,
        power_cap_watts=150.0,
        name="golden-4gpm-cap",
    ),
    # A multi-domain static DVFS run: every clock domain off the anchor at
    # once (core below, interconnect above), pinning the cross-domain
    # timing-scale plumbing.
    "4gpm-multidomain": GpuConfig(
        gpm=_golden_gpm(),
        num_gpms=4,
        interconnect=_golden_interconnect(),
        integration_domain=IntegrationDomain.ON_PACKAGE,
        dvfs=DvfsConfig(
            core=K40_VF_CURVE.point_at(614.0e6),
            dram=K40_VF_CURVE.point_at(562.0e6),
            interconnect=K40_VF_CURVE.point_at(810.0e6),
        ),
        name="golden-4gpm-multidomain",
    ),
    # A mixed-clock static DVFS run: each GPM's core domain at a different
    # ladder point spanning below and above the anchor, pinning the per-GPM
    # energy attribution (Σ_g scale_g · shard_g) against regressions.
    "4gpm-mixedclock": GpuConfig(
        gpm=_golden_gpm(),
        num_gpms=4,
        interconnect=_golden_interconnect(),
        integration_domain=IntegrationDomain.ON_PACKAGE,
        dvfs=DvfsConfig(
            core_per_gpm=(
                K40_VF_CURVE.point_at(324.0e6),
                K40_VF_CURVE.point_at(562.0e6),
                K40_VF_CURVE.point_at(745.0e6),
                K40_VF_CURVE.point_at(875.0e6),
            ),
        ),
        name="golden-4gpm-mixedclock",
    ),
    # An idle-enabled run under the race-to-idle governor: pins the sleep
    # ladder's entry/exit accounting, the sleep buckets in the residency
    # snapshot, and the residual-priced per-GPM energy.
    "8gpm-idle": GpuConfig(
        gpm=_golden_gpm(),
        num_gpms=8,
        interconnect=_golden_interconnect(),
        integration_domain=IntegrationDomain.ON_PACKAGE,
        idle=IdleConfig(governor="race-to-idle"),
        name="golden-8gpm-idle",
    ),
}


def counters_to_json(counters: CounterSet) -> dict:
    """Canonical JSON form of a CounterSet (opcodes by value, sorted)."""
    return {
        "instructions": {
            opcode.value: count
            for opcode, count in sorted(
                counters.instructions.items(), key=lambda item: item[0].value
            )
        },
        "shared_rf_txns": counters.shared_rf_txns,
        "l1_rf_txns": counters.l1_rf_txns,
        "l2_l1_txns": counters.l2_l1_txns,
        "dram_l2_txns": counters.dram_l2_txns,
        "inter_gpm_bytes": counters.inter_gpm_bytes,
        "inter_gpm_byte_hops": counters.inter_gpm_byte_hops,
        "switch_byte_traversals": counters.switch_byte_traversals,
        "compression_codec_bytes": counters.compression_codec_bytes,
        "sm_busy_cycles": counters.sm_busy_cycles,
        "sm_idle_cycles": counters.sm_idle_cycles,
        "elapsed_cycles": counters.elapsed_cycles,
        "local_accesses": counters.local_accesses,
        "remote_accesses": counters.remote_accesses,
        "l1_hits": counters.l1_hits,
        "l1_misses": counters.l1_misses,
        "l2_hits": counters.l2_hits,
        "l2_misses": counters.l2_misses,
        "dirty_writebacks": counters.dirty_writebacks,
    }


def golden_run(
    spec: WorkloadSpec, config: GpuConfig
) -> tuple[dict, dict | None, dict | None]:
    """Simulate one golden pair: (counters, residency or None, energy or None).

    The residency and the priced energy (with its per-GPM attribution) are
    only part of the snapshot for configurations that move a clock domain (a
    cap or a DVFS setting) — anchor-point configs keep their original
    snapshot layout, byte for byte.
    """
    result = simulate(build_workload(spec), config)
    pin_dvfs = (
        config.power_cap_watts is not None
        or config.dvfs is not None
        or config.idle is not None
    )
    if not (pin_dvfs and result.residency is not None):
        return counters_to_json(result.counters), None, None
    params = EnergyParams.for_operating_point(
        config, residency=result.residency
    )
    breakdown = result.energy_breakdown(params)
    energy = {
        "total": breakdown.total,
        "components": breakdown.as_dict(),
        "per_gpm": [gpm.as_dict() for gpm in breakdown.per_gpm],
    }
    return counters_to_json(result.counters), result.residency.to_json(), energy


def golden_counters(spec: WorkloadSpec, config: GpuConfig) -> dict:
    """Simulate one golden pair and return its canonical counter JSON."""
    return golden_run(spec, config)[0]


def _close(want, got) -> bool:
    if isinstance(want, float) or isinstance(got, float):
        return (
            want is not None
            and got is not None
            and math.isclose(want, got, rel_tol=FLOAT_RTOL, abs_tol=1e-9)
        )
    return want == got


def diff_energy(expected: dict, actual: dict) -> list[str]:
    """Differences between two golden energy sections (incl. per-GPM)."""
    diffs: list[str] = []
    if not _close(expected.get("total"), actual.get("total")):
        diffs.append(
            f"energy.total: golden={expected.get('total')}"
            f" actual={actual.get('total')}"
        )
    want_comp = expected.get("components", {})
    got_comp = actual.get("components", {})
    for key in sorted(set(want_comp) | set(got_comp)):
        if not _close(want_comp.get(key), got_comp.get(key)):
            diffs.append(
                f"energy.components[{key}]: golden={want_comp.get(key)}"
                f" actual={got_comp.get(key)}"
            )
    want_gpms = expected.get("per_gpm", [])
    got_gpms = actual.get("per_gpm", [])
    if len(want_gpms) != len(got_gpms):
        diffs.append(
            f"energy.per_gpm: golden has {len(want_gpms)} GPMs,"
            f" actual has {len(got_gpms)}"
        )
        return diffs
    for index, (want, got) in enumerate(zip(want_gpms, got_gpms)):
        for key in sorted(set(want) | set(got)):
            if not _close(want.get(key), got.get(key)):
                diffs.append(
                    f"energy.per_gpm[{index}].{key}: golden={want.get(key)}"
                    f" actual={got.get(key)}"
                )
    return diffs


def golden_cases() -> list[tuple[str, str, str]]:
    """(case_name, spec_key, config_key) for every golden combination."""
    return [
        (f"{spec_key}_{config_key}", spec_key, config_key)
        for spec_key in GOLDEN_SPECS
        for config_key in GOLDEN_CONFIGS
    ]


def diff_counters(expected: dict, actual: dict) -> list[str]:
    """Human-readable differences between two canonical counter dicts."""
    diffs: list[str] = []
    for key in sorted(set(expected) | set(actual)):
        want, got = expected.get(key), actual.get(key)
        if key == "instructions":
            want, got = want or {}, got or {}
            for opcode in sorted(set(want) | set(got)):
                if want.get(opcode) != got.get(opcode):
                    diffs.append(
                        f"instructions[{opcode}]: golden={want.get(opcode)}"
                        f" actual={got.get(opcode)}"
                    )
            continue
        if isinstance(want, float) or isinstance(got, float):
            if want is None or got is None or not math.isclose(
                want, got, rel_tol=FLOAT_RTOL, abs_tol=1e-9
            ):
                diffs.append(f"{key}: golden={want} actual={got}")
        elif want != got:
            diffs.append(f"{key}: golden={want} actual={got}")
    return diffs


def _residency_entry_key(entry: dict) -> str:
    """Stable diff key for one residency bucket (operating point or sleep)."""
    if "point" in entry:
        return entry["point"]
    return f"sleep:{entry['sleep']}"


def diff_residency(expected: dict, actual: dict) -> list[str]:
    """Differences between two ``DvfsResidency.to_json()`` snapshots.

    Active buckets are keyed by their operating-point label, sleep buckets
    by their state name; every numeric field (cycles, latencies, residual
    power) is compared, so a changed sleep parameter fails the golden even
    when the cycle split happens to match.
    """
    diffs: list[str] = []
    domains = [("dram", expected.get("dram"), actual.get("dram")),
               ("interconnect", expected.get("interconnect"),
                actual.get("interconnect"))]
    want_core = expected.get("core", [])
    got_core = actual.get("core", [])
    if len(want_core) != len(got_core):
        return [f"core domains: golden={len(want_core)} actual={len(got_core)}"]
    domains += [
        (f"core[{idx}]", want, got)
        for idx, (want, got) in enumerate(zip(want_core, got_core))
    ]
    for name, want, got in domains:
        want, got = want or [], got or []
        want_points = {_residency_entry_key(entry): entry for entry in want}
        got_points = {_residency_entry_key(entry): entry for entry in got}
        for label in sorted(set(want_points) | set(got_points)):
            w, g = want_points.get(label), got_points.get(label)
            if w is None or g is None:
                diffs.append(f"{name}[{label}]: golden={w} actual={g}")
                continue
            for field in sorted(set(w) | set(g)):
                if field in ("point", "sleep"):
                    continue
                if not _close(w.get(field), g.get(field)):
                    diffs.append(
                        f"{name}[{label}].{field}: golden={w.get(field)}"
                        f" actual={g.get(field)}"
                    )
    return diffs


def golden_path(case_name: str) -> Path:
    return GOLDEN_DIR / f"{case_name}.json"


def regenerate(golden_dir: Path | None = None) -> list[Path]:
    """Simulate every golden case and (re)write its snapshot file."""
    target_dir = golden_dir or GOLDEN_DIR
    target_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for case_name, spec_key, config_key in golden_cases():
        counters, residency, energy = golden_run(
            GOLDEN_SPECS[spec_key], GOLDEN_CONFIGS[config_key]
        )
        snapshot = {
            "results_version": RESULTS_VERSION,
            "workload": spec_key,
            "config": GOLDEN_CONFIGS[config_key].label(),
            "counters": counters,
        }
        if residency is not None:
            snapshot["residency"] = residency
        if energy is not None:
            snapshot["energy"] = energy
        path = target_dir / f"{case_name}.json"
        with path.open("w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(path)
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.regen_goldens",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--golden-dir",
        type=Path,
        default=None,
        help=f"output directory (default: {GOLDEN_DIR})",
    )
    args = parser.parse_args(argv)
    for path in regenerate(args.golden_dir):
        print(f"wrote {path}")
    print(
        "Remember: if counters changed, bump RESULTS_VERSION in"
        " repro/experiments/runner.py and commit the new goldens."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
