"""Maintain and enforce the roofline predictor's committed error bound.

``ROOFLINE_bounds.json`` (repo root) records, for every golden
(workload, configuration) case, the relative delay/energy/EDP error the
committed :data:`~repro.roofline.calibration_params.DEFAULT_CALIBRATION`
achieves against simulation — plus per-metric ceilings with margin.  CI runs
the default ``--check`` mode, which re-simulates the goldens and fails when

* the committed calibration no longer matches the manifest's (someone
  refit without regenerating the manifest), or
* any error ceiling is exceeded (the predictor or the engine drifted).

Modes::

    python -m repro.tools.roofline_bounds            # check (CI)
    python -m repro.tools.roofline_bounds --write    # regenerate manifest
    python -m repro.tools.roofline_bounds --fit      # grid-refit, print values

``--fit`` only *prints* the fitted calibration: baking it into
``DEFAULT_CALIBRATION`` is a source edit, kept manual on purpose so a refit
is always a reviewed diff, never a silent side effect.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.roofline.calibration import (
    DEFAULT_CALIBRATION,
    ValidationReport,
    fit_calibration,
    simulate_reference,
    validate_calibration,
)
from repro.service.keys import RESULTS_VERSION

#: The committed manifest CI enforces.
BOUNDS_PATH = Path(__file__).resolve().parents[3] / "ROOFLINE_bounds.json"

#: Headroom multiplier between the observed maxima and the committed
#: ceilings: wide enough to absorb float jitter and innocuous engine tweaks,
#: tight enough that a real model regression trips CI.
BOUND_MARGIN = 1.25


def bounds_payload(report: ValidationReport) -> dict:
    payload = report.to_json()
    payload["results_version"] = RESULTS_VERSION
    payload["bound"] = {
        "delay": round(report.max_delay_rel_err * BOUND_MARGIN, 4),
        "energy": round(report.max_energy_rel_err * BOUND_MARGIN, 4),
        "edp": round(report.max_edp_rel_err * BOUND_MARGIN, 4),
    }
    return payload


def write_bounds(report: ValidationReport, path: Path = BOUNDS_PATH) -> None:
    with path.open("w") as handle:
        json.dump(bounds_payload(report), handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_bounds(
    report: ValidationReport, path: Path = BOUNDS_PATH
) -> list[str]:
    """Problems (empty = pass) of ``report`` against the committed manifest."""
    if not path.exists():
        return [f"missing bounds manifest {path}"]
    with path.open() as handle:
        committed = json.load(handle)
    problems: list[str] = []
    if committed.get("calibration") != report.calibration.to_json():
        problems.append(
            "committed calibration does not match DEFAULT_CALIBRATION —"
            " regenerate with --write (and review the diff)"
        )
    observed = {
        "delay": report.max_delay_rel_err,
        "energy": report.max_energy_rel_err,
        "edp": report.max_edp_rel_err,
    }
    for metric, ceiling in committed.get("bound", {}).items():
        if observed.get(metric, float("inf")) > ceiling:
            problems.append(
                f"max {metric} relative error {observed[metric]:.2%} exceeds"
                f" the committed bound {ceiling:.2%}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.roofline_bounds",
        description=__doc__.splitlines()[0],
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--write",
        action="store_true",
        help="regenerate the manifest from DEFAULT_CALIBRATION",
    )
    mode.add_argument(
        "--fit",
        action="store_true",
        help="grid-refit the calibration against the goldens and print it",
    )
    parser.add_argument(
        "--bounds-path",
        type=Path,
        default=BOUNDS_PATH,
        help=f"manifest location (default: {BOUNDS_PATH})",
    )
    args = parser.parse_args(argv)

    reference = simulate_reference()
    if args.fit:
        best = fit_calibration(reference=reference)
        print(json.dumps(best.to_json(), indent=2, sort_keys=True))
        print(
            "\nTo adopt: edit DEFAULT_CALIBRATION in"
            " src/repro/roofline/calibration_params.py, then rerun --write."
        )
        return 0

    report = validate_calibration(DEFAULT_CALIBRATION, reference)
    if args.write:
        write_bounds(report, args.bounds_path)
        print(f"wrote {args.bounds_path}")
        print(
            f"max rel err: delay {report.max_delay_rel_err:.2%},"
            f" energy {report.max_energy_rel_err:.2%},"
            f" edp {report.max_edp_rel_err:.2%}"
        )
        return 0

    problems = check_bounds(report, args.bounds_path)
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print(
            f"ok: max rel err delay {report.max_delay_rel_err:.2%},"
            f" energy {report.max_energy_rel_err:.2%},"
            f" edp {report.max_edp_rel_err:.2%} within committed bounds"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
