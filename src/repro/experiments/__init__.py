"""Experiment drivers: one module per paper table/figure (see DESIGN.md §4)."""

from repro.experiments.results import RunRecord, ScalingRow
from repro.experiments.runner import SweepRunner, SweepSettings

__all__ = ["RunRecord", "ScalingRow", "SweepRunner", "SweepSettings"]
