"""One-command regeneration of every ``fig*`` study (``repro figures``).

Each figure module already knows how to *run*; what kept going stale was
the glue: EXPERIMENTS.md cited result files nobody regenerated, and the
committed logs drifted from the code that allegedly produced them.  This
harness makes the figure outputs a build artifact:

* ``run_figures()`` executes every registered ``fig*`` study end-to-end
  and writes two files per figure into ``results/<figure>/`` — the full
  rendered tables (``log.txt``) and a few headline numbers next to their
  paper targets (``summary.txt``).  Both are committed; regenerating them
  is one command, so a reviewer can diff code against its own evidence.
* ``--quick`` swaps in the smoke tier: shrunken workloads on a reduced
  grid, written to ``quick.txt``/``quick_summary.txt`` (gitignored, so CI
  never clobbers the committed full-tier logs).  Quick outputs are fully
  deterministic — the smoke test runs the tier twice and asserts the bytes
  match.

The registry below is ordered as the paper presents the figures; the
LLM-serving study rides at the end as the repo's forward-looking grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    fig2_energy_scaling,
    fig4_validation,
    fig6_edpse_onpackage,
    fig7_incremental,
    fig8_bandwidth,
    fig9_switch,
    fig10_speedup_energy,
    figllm_study,
)
from repro.experiments.runner import SweepRunner
from repro.gpu.config import BandwidthSetting
from repro.workloads.suite import shrunken_spec

#: The reduced grid the ``--quick`` tier sweeps (vs the paper's 2..32).
QUICK_COUNTS: tuple[int, ...] = (2, 4)

#: One memory-intensive and one compute-intensive workload, so category
#: means stay well-defined on the quick tier.
QUICK_WORKLOADS: tuple[str, ...] = ("Stream", "BPROP")


def _quick_spec(abbr: str):
    """Shrunken stand-in keeping the namesake's locality character."""
    return shrunken_spec(abbr, total_ctas=32, kernels=2)


def _scaling_kwargs(quick: bool) -> dict:
    """The shared quick-tier overrides for the scaling-study figures."""
    if not quick:
        return {}
    return {
        "counts": QUICK_COUNTS,
        "workload_abbrs": QUICK_WORKLOADS,
        "spec_for": _quick_spec,
    }


@dataclass(frozen=True)
class FigureJob:
    """One regenerable figure: how to run it and how to summarize it."""

    #: Module name; doubles as the ``results/<name>/`` directory.
    name: str
    #: One-line description written at the top of both output files.
    title: str
    #: ``f(runner, quick) -> result`` for the underlying study.
    run: Callable
    #: ``f(result) -> str`` extracting the headline numbers.
    summarize: Callable

    def build(self, runner: SweepRunner, quick: bool) -> tuple[str, str]:
        """Run the study; return (rendered log, headline summary)."""
        result = self.run(runner, quick)
        tier = "quick (smoke) tier" if quick else "full tier"
        banner = f"{self.name}: {self.title} [{tier}]"
        log = banner + "\n\n" + result.render() + "\n"
        summary = banner + "\n" + self.summarize(result) + "\n"
        return log, summary


def _summ_fig2(result) -> str:
    top = result.rows[-1]
    return (
        f"mean normalized energy at {top.num_gpms}x capability:"
        f" {top.values['energy']:.2f}x (ideal 1.0x; paper:"
        f" ~{fig2_energy_scaling.PAPER_ENERGY_AT_32X:.1f}x at 32x)"
    )


def _summ_fig4(result) -> str:
    outliers = ", ".join(sorted(result.fig4b.outliers(25.0))) or "none"
    return (
        f"Fig 4b mean |error|: {result.fig4b.mean_absolute_error:.1f}%"
        f" (paper: {fig4_validation.PAPER_MEAN_ABS_ERROR}%)\n"
        f"outliers >25%: {outliers}"
        f" (paper >30%: {', '.join(fig4_validation.PAPER_OUTLIERS)})"
    )


def _summ_fig6(result) -> str:
    first, last = result.rows[0], result.rows[-1]
    return (
        f"mean EDPSE: {first.values['all']:.1f}% at {first.num_gpms}-GPM,"
        f" {last.values['all']:.1f}% at {last.num_gpms}-GPM"
        f" (paper: peak {fig6_edpse_onpackage.PAPER_MAX_MEAN_EDPSE:.0f}%,"
        f" {fig6_edpse_onpackage.PAPER_MEAN_EDPSE_32GPM:.0f}% at 32-GPM)"
    )


def _summ_fig7(result) -> str:
    first, last = result.steps[0], result.steps[-1]
    return (
        f"incremental speedup: {first.incremental_speedup:.3f}x at first"
        f" doubling, {last.incremental_speedup:.3f}x at the last"
        f" (paper: 1.868x -> 1.47x)\n"
        f"monolithic last-doubling speedup:"
        f" {result.monolithic_16_to_32:.2f}x (paper: 1.81x)"
    )


def _summ_fig8(result) -> str:
    top = result.studies[fig8_bandwidth.BANDWIDTH_ORDER[0]].scaled_counts[-1]
    gain = result.edpse(BandwidthSetting.BW_4X, top) / result.edpse(
        BandwidthSetting.BW_1X, top
    )
    return (
        f"4x-BW / 1x-BW EDPSE gain at {top}-GPM: {gain:.2f}x"
        " (paper: ~3x)"
    )


def _summ_fig9(result) -> str:
    top = result.studies[fig9_switch.SERIES[0][0]].scaled_counts[-1]
    gain = (
        result.studies["Switch (1x-BW)"].mean_edpse(top)
        / result.studies["Ring (1x-BW)"].mean_edpse(top)
    )
    return (
        f"switch / ring EDPSE gain at {top}-GPM (same links):"
        f" {gain:.2f}x (paper: ~2x)"
    )


def _summ_fig10(result) -> str:
    order = fig10_speedup_energy.BANDWIDTH_ORDER
    top = result.studies[order[0]].scaled_counts[-1]
    reduction = (
        1.0
        - result.energy(BandwidthSetting.BW_4X, top)
        / result.energy(BandwidthSetting.BW_1X, top)
    ) * 100.0
    return (
        f"{top}-GPM energy reduction 1x->4x BW: {reduction:.1f}%"
        " (paper: 45% incl. amortization, 27.4% bandwidth alone)"
    )


def _summ_figllm(result) -> str:
    lines = []
    for governor in figllm_study.STUDY_GOVERNORS:
        if governor not in result.edpse:
            continue
        lines.append(
            f"{governor}: mean EDPSE {result.mean_edpse(governor):.1f}%"
            f" (decode grid {result.edpse[governor]['decode']:.1f}%)"
        )
    race = result.edpse["race-to-idle"]["decode"]
    incumbent = result.edpse["utilization"]["decode"]
    verdict = "holds" if race > incumbent else "DOES NOT HOLD"
    lines.append(
        f"decode-grid direction (race-to-idle {race:.1f}% >"
        f" utilization {incumbent:.1f}%): {verdict}"
    )
    return "\n".join(lines)


#: Every regenerable figure, in paper order.  The directory under
#: ``results/`` is the registry key.
FIGURES: dict[str, FigureJob] = {
    job.name: job
    for job in (
        FigureJob(
            name="fig2_energy_scaling",
            title="energy cost of strong scaling (on-board, 1x-BW)",
            run=lambda runner, quick: fig2_energy_scaling.run(
                runner, **_scaling_kwargs(quick)
            ),
            summarize=_summ_fig2,
        ),
        FigureJob(
            name="fig4_validation",
            title="GPUJoule validation against silicon (4a + 4b)",
            run=lambda runner, quick: fig4_validation.run(
                runner,
                **(
                    {
                        "workload_abbrs": QUICK_WORKLOADS,
                        "spec_for": _quick_spec,
                    }
                    if quick
                    else {}
                ),
            ),
            summarize=_summ_fig4,
        ),
        FigureJob(
            name="fig6_edpse_onpackage",
            title="EDPSE vs GPM count (on-package, 2x-BW)",
            run=lambda runner, quick: fig6_edpse_onpackage.run(
                runner, **_scaling_kwargs(quick)
            ),
            summarize=_summ_fig6,
        ),
        FigureJob(
            name="fig7_incremental",
            title="incremental speedup and energy growth per doubling",
            run=lambda runner, quick: fig7_incremental.run(
                runner, **_scaling_kwargs(quick)
            ),
            summarize=_summ_fig7,
        ),
        FigureJob(
            name="fig8_bandwidth",
            title="EDPSE vs inter-GPM bandwidth (1x/2x/4x)",
            run=lambda runner, quick: fig8_bandwidth.run(
                runner, **_scaling_kwargs(quick)
            ),
            summarize=_summ_fig8,
        ),
        FigureJob(
            name="fig9_switch",
            title="on-board ring vs high-radix switch",
            run=lambda runner, quick: fig9_switch.run(
                runner, **_scaling_kwargs(quick)
            ),
            summarize=_summ_fig9,
        ),
        FigureJob(
            name="fig10_speedup_energy",
            title="speedup and normalized energy across the sweep",
            run=lambda runner, quick: fig10_speedup_energy.run(
                runner, **_scaling_kwargs(quick)
            ),
            summarize=_summ_fig10,
        ),
        FigureJob(
            name="figllm_study",
            title="LLM serving: governors on prefill/decode/tenant grids",
            run=lambda runner, quick: figllm_study.run(runner, quick=quick),
            summarize=_summ_figllm,
        ),
    )
}


def resolve_figures(names: tuple[str, ...] | None) -> list[FigureJob]:
    """Map user-facing figure names to jobs, rejecting unknown ones."""
    if not names:
        return list(FIGURES.values())
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        raise ExperimentError(
            f"unknown figure(s) {unknown}; known: {list(FIGURES)}"
        )
    return [FIGURES[name] for name in names]


def run_figures(
    names: tuple[str, ...] | None = None,
    out_dir: str | Path = "results",
    runner: SweepRunner | None = None,
    quick: bool = False,
    echo: Callable[[str], None] | None = None,
) -> dict[str, Path]:
    """Regenerate figure logs + summaries; return per-figure directories.

    Full tier writes ``log.txt``/``summary.txt`` (the committed evidence);
    quick tier writes ``quick.txt``/``quick_summary.txt`` (gitignored).
    Output bytes are a pure function of the code and the figure grids —
    no timestamps, hostnames, or float formatting left to chance.
    """
    jobs = resolve_figures(names)
    runner = runner or SweepRunner()
    out_dir = Path(out_dir)
    log_name, summary_name = (
        ("quick.txt", "quick_summary.txt") if quick else
        ("log.txt", "summary.txt")
    )
    written: dict[str, Path] = {}
    for job in jobs:
        if echo is not None:
            echo(f"[figures] {job.name}: {job.title}")
        log, summary = job.build(runner, quick)
        fig_dir = out_dir / job.name
        fig_dir.mkdir(parents=True, exist_ok=True)
        (fig_dir / log_name).write_text(log, encoding="utf-8")
        (fig_dir / summary_name).write_text(summary, encoding="utf-8")
        written[job.name] = fig_dir
    return written
