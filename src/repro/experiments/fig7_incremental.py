"""Figure 7: incremental speedup and energy growth at each scaling step.

For each doubling of GPM count (on-package 2x-BW), the paper reports the
speedup over the *preceding* configuration (86.8 % gain at 1->2 GPM falling
to 47 % at 16->32) and the energy increase broken down by GPUJoule component
— with constant energy overhead dominating the growth at high GPM counts.
A monolithic (NUMA-free) GPU of equal resources achieves 80.8 % at 16->32,
isolating NUMA as the cause.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.energy_model import EnergyBreakdown, EnergyParams
from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import (
    SCALED_GPM_COUNTS,
    run_scaling_study,
    scaling_configs,
)
from repro.gpu.config import BandwidthSetting, monolithic_config, table_iii_config
from repro.units import geomean, mean
from repro.workloads.suite import SCALING_SUBSET, WORKLOAD_SPECS

PAPER_SPEEDUP_1_TO_2 = 1.868
PAPER_SPEEDUP_16_TO_32 = 1.47
PAPER_MONOLITHIC_16_TO_32 = 1.808
PAPER_ENERGY_INCREASE_16_TO_32 = 15.7  # percent


@dataclass
class Fig7Step:
    """One scaling step's incremental speedup and energy-growth breakdown."""

    num_gpms: int
    incremental_speedup: float
    energy_increase_percent: float
    component_increase_percent: dict[str, float]


@dataclass
class Fig7Result:
    steps: list[Fig7Step]
    monolithic_16_to_32: float

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        components = EnergyBreakdown.COMPONENT_ORDER
        headers = ["step", "speedup", "dE total %"] + [
            f"dE {name} %" for name in components
        ]
        rows = []
        prev = 1
        for step in self.steps:
            rows.append(
                [f"{prev}->{step.num_gpms}", step.incremental_speedup,
                 step.energy_increase_percent]
                + [step.component_increase_percent[name] for name in components]
            )
            prev = step.num_gpms
        note = (
            "Paper shape: incremental speedup decays 1.868x -> 1.47x;"
            " constant-energy overhead dominates growth at 16->32 GPM;"
            f" monolithic 16->32 speedup here: {self.monolithic_16_to_32:.2f}x"
            " (paper: 1.81x)."
        )
        return render_table(
            "Figure 7: incremental speedup and energy growth (2x-BW on-package)",
            headers,
            rows,
            note=note,
        )


def _mean_breakdown(
    grid: dict[str, dict],
    config_label: str,
    params: EnergyParams,
    abbrs: tuple[str, ...],
) -> dict[str, float]:
    """Average per-component energy across workloads (joules)."""
    sums: dict[str, float] = {}
    records = grid[config_label]
    for abbr in abbrs:
        record = records[abbr]
        breakdown = record.energy(params)
        for name, value in breakdown.as_dict().items():
            sums[name] = sums.get(name, 0.0) + value
    count = len(abbrs)
    return {name: value / count for name, value in sums.items()}


def run(
    runner: SweepRunner | None = None,
    counts: tuple[int, ...] = SCALED_GPM_COUNTS,
    workload_abbrs: tuple[str, ...] = SCALING_SUBSET,
    spec_for=None,
) -> Fig7Result:
    """Execute (or fetch from cache) the Figure 7 study.

    ``counts``/``workload_abbrs``/``spec_for`` reduce the grid for the
    ``repro figures --quick`` tier; the defaults reproduce the paper figure.
    The monolithic comparison always uses the two largest scaled counts.
    """
    runner = runner or SweepRunner()
    counts = tuple(sorted(counts))
    configs = scaling_configs(BandwidthSetting.BW_2X, counts=counts)
    study = run_scaling_study(
        runner, configs, label="on-package/2x-BW",
        workload_abbrs=workload_abbrs, spec_for=spec_for,
    )

    # Per-component mean energies at each count (including the baseline).
    if spec_for is None:
        spec_for = WORKLOAD_SPECS.__getitem__
    specs = [spec_for(abbr) for abbr in workload_abbrs]
    base_config = table_iii_config(1, BandwidthSetting.BW_2X)
    all_configs = [base_config] + [configs[n] for n in counts]
    grid = runner.run_grid(specs, all_configs)
    breakdowns: dict[int, dict[str, float]] = {}
    breakdowns[1] = _mean_breakdown(
        grid, base_config.label(), EnergyParams.for_config(base_config),
        workload_abbrs,
    )
    for n in counts:
        config = configs[n]
        breakdowns[n] = _mean_breakdown(
            grid, config.label(), EnergyParams.for_config(config),
            workload_abbrs,
        )

    steps: list[Fig7Step] = []
    step_counts = [1] + list(counts)
    for prev_n, n in zip(step_counts, step_counts[1:]):
        speedups = []
        for scaling in study.workloads.values():
            prev_delay = (
                scaling.baseline.delay_s if prev_n == 1
                else scaling.scaled[prev_n].delay_s
            )
            speedups.append(prev_delay / scaling.scaled[n].delay_s)
        prev_total = sum(breakdowns[prev_n].values())
        cur = breakdowns[n]
        cur_total = sum(cur.values())
        component_increase = {
            name: (cur[name] - breakdowns[prev_n][name]) / prev_total * 100.0
            for name in cur
        }
        steps.append(
            Fig7Step(
                num_gpms=n,
                incremental_speedup=geomean(speedups),
                energy_increase_percent=(cur_total - prev_total)
                / prev_total
                * 100.0,
                component_increase_percent=component_increase,
            )
        )

    # Monolithic comparison: a single module with the two largest scaled
    # resource multiples (16x vs 32x on the full grid).
    mono_small = monolithic_config(counts[-2] if len(counts) > 1 else 1)
    mono_big = monolithic_config(counts[-1])
    mono_grid = runner.run_grid(specs, [mono_small, mono_big])
    ratios = [
        mono_grid[mono_small.label()][abbr].seconds
        / mono_grid[mono_big.label()][abbr].seconds
        for abbr in workload_abbrs
    ]
    return Fig7Result(steps=steps, monolithic_16_to_32=geomean(ratios))
