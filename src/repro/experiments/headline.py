"""Section VII headline numbers: the path to energy-efficient strong scaling.

The conclusion quantifies the fix: take the 32-GPM on-board 1x-BW design
(~2x the 1-GPM energy) and (a) quadruple inter-GPM bandwidth — energy drops
27.4 % on average; (b) additionally move on-package and amortize constant
energy — total reduction reaches ~45 %, leaving energy growth near +10 %
while strong-scaling performance reaches ~18x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import run_scaling_study, scaling_configs
from repro.gpu.config import BandwidthSetting, IntegrationDomain

PAPER_BANDWIDTH_ONLY_SAVING = 27.4   # percent
PAPER_TOTAL_SAVING = 45.0            # percent
PAPER_FINAL_SPEEDUP = 18.0


@dataclass
class HeadlineResult:
    energy_onboard_1x: float      # normalized to 1-GPM
    energy_onboard_4x: float
    energy_onpackage_4x: float
    speedup_onpackage_4x: float

    @property
    def bandwidth_only_saving_percent(self) -> float:
        return (1.0 - self.energy_onboard_4x / self.energy_onboard_1x) * 100.0

    @property
    def total_saving_percent(self) -> float:
        return (1.0 - self.energy_onpackage_4x / self.energy_onboard_1x) * 100.0

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows = [
            ["32-GPM on-board 1x-BW energy (vs 1-GPM)", 2.0, self.energy_onboard_1x],
            ["energy saving from 4x bandwidth (%)", PAPER_BANDWIDTH_ONLY_SAVING,
             self.bandwidth_only_saving_percent],
            ["total saving incl. on-package amortization (%)", PAPER_TOTAL_SAVING,
             self.total_saving_percent],
            ["final 32-GPM speedup (4x-BW on-package)", PAPER_FINAL_SPEEDUP,
             self.speedup_onpackage_4x],
        ]
        return render_table(
            "Section VII headline: fixing 32-GPM energy efficiency",
            ["metric", "paper", "measured"],
            rows,
        )


def run(runner: SweepRunner | None = None) -> HeadlineResult:
    """Execute (or fetch from cache) the headline comparison."""
    runner = runner or SweepRunner()

    onboard_1x = run_scaling_study(
        runner,
        scaling_configs(
            BandwidthSetting.BW_1X, domain=IntegrationDomain.ON_BOARD, counts=(32,)
        ),
        label="on-board/1x",
    )
    onboard_4x = run_scaling_study(
        runner,
        scaling_configs(
            BandwidthSetting.BW_4X, domain=IntegrationDomain.ON_BOARD, counts=(32,)
        ),
        label="on-board/4x",
    )
    onpackage_4x = run_scaling_study(
        runner,
        scaling_configs(BandwidthSetting.BW_4X, counts=(32,)),
        label="on-package/4x",
    )
    return HeadlineResult(
        energy_onboard_1x=onboard_1x.mean_energy_ratio(32),
        energy_onboard_4x=onboard_4x.mean_energy_ratio(32),
        energy_onpackage_4x=onpackage_4x.mean_energy_ratio(32),
        speedup_onpackage_4x=onpackage_4x.geomean_speedup(32),
    )
