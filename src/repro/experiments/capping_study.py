"""Power-capping study: EDPSE vs. chip power budget across GPM counts.

The paper sizes multi-module GPUs against a fixed board power; this study
asks the follow-on question the :class:`~repro.dvfs.governor.PowerCapGovernor`
makes answerable: *how much efficiency survives when the chip must live under
a watt budget?*  Each GPM count from the Table III scaling range is run
uncapped and under budgets expressed as fractions of its nominal power
(``num_gpms x DEFAULT_GPM_ANCHOR_WATTS``).  Capped runs are priced with
their recorded per-domain residency — the energy reflects the operating
points the governor actually held, not the anchor the config nominally
names — and summarized as EDPSE (Eq. 2) against the paper's fixed 1-GPM
uncapped baseline, next to the mean reported power draw that verifies the
governor held its budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.energy_model import EnergyParams
from repro.dvfs.governor import DEFAULT_GPM_ANCHOR_WATTS
from repro.dvfs.idle import IdleConfig
from repro.dvfs.residency import DvfsResidency
from repro.errors import ExperimentError
from repro.experiments.render import render_table
from repro.experiments.results import RunRecord
from repro.experiments.runner import SweepRunner
from repro.gpu.config import TABLE_III_GPM_COUNTS, GpuConfig, table_iii_config
from repro.units import mean
from repro.workloads.suite import SCALING_SUBSET, WORKLOAD_SPECS

#: GPM counts the study sweeps (the paper's full 1-32 scaling range).
STUDY_GPM_COUNTS: tuple[int, ...] = TABLE_III_GPM_COUNTS

#: Chip budgets as fractions of nominal power (``None`` means uncapped).
#: 0.55 sits just above the all-floor draw (~40% of nominal), so every
#: budget in the grid is feasible for every GPM count.
BUDGET_FRACTIONS: tuple[float | None, ...] = (None, 1.0, 0.85, 0.70, 0.55)


def nominal_chip_watts(num_gpms: int) -> float:
    """The uncapped worst-case budget baseline of an ``num_gpms`` chip."""
    return num_gpms * DEFAULT_GPM_ANCHOR_WATTS


def capped_config(
    num_gpms: int,
    fraction: float | None,
    idle: "IdleConfig | None" = None,
) -> GpuConfig:
    """The Table III configuration under one budget fraction.

    ``idle`` optionally gives every GPM the sleep ladder on top of the cap
    (``repro capsweep --governor``); the attached governor composes with
    the budget — a race-to-idle ceiling rides inside the waterfill.
    """
    config = table_iii_config(num_gpms)
    if idle is not None:
        config = replace(config, idle=idle)
    if fraction is None:
        return config
    return replace(
        config, power_cap_watts=fraction * nominal_chip_watts(num_gpms)
    )


def _budget_label(fraction: float | None) -> str:
    return "uncapped" if fraction is None else f"{fraction:.0%} budget"


@dataclass
class CappingStudyResult:
    """EDPSE and reported power per (budget fraction, GPM count)."""

    #: Records keyed ``records[fraction][num_gpms][workload]``.
    records: dict[float | None, dict[int, dict[str, RunRecord]]]
    #: Mean EDPSE (%) across workloads, keyed ``edpse[fraction][num_gpms]``.
    edpse: dict[float | None, dict[int, float]] = field(default_factory=dict)
    #: Mean residency-priced power draw (W), same keying as ``edpse``.
    mean_power_w: dict[float | None, dict[int, float]] = field(
        default_factory=dict
    )
    #: Per-GPM core-energy imbalance (max/mean across GPMs, averaged over
    #: workloads), same keying as ``edpse``.  1.0 means every module burned
    #: the same core-domain energy; waterfilling under a tight cap drives it
    #: up as the governor starves some GPMs to feed others.
    core_imbalance: dict[float | None, dict[int, float]] = field(
        default_factory=dict
    )
    #: Screening record when the budget grid was pruned analytically
    #: (``None`` = exhaustive): mode, knobs, and the predicted mean EDPSE
    #: per budget fraction that drove the pruning.
    screen: dict | None = None

    def record(
        self, fraction: float | None, num_gpms: int, workload: str
    ) -> RunRecord:
        try:
            return self.records[fraction][num_gpms][workload]
        except KeyError as exc:
            raise ExperimentError(
                f"no capping-study record for {workload!r} on {num_gpms} GPMs"
                f" at {_budget_label(fraction)}"
            ) from exc

    def render(self) -> str:
        """The EDPSE-vs-budget surface and the reported-power check."""
        # Derive the axes from the computed surface so partial sweeps
        # (e.g. ``repro capsweep --quick``) render what they actually ran.
        fractions = list(self.edpse)
        gpm_counts = sorted(
            {n for by_gpms in self.edpse.values() for n in by_gpms}
        )
        header = ["budget"] + [f"{n}-GPM" for n in gpm_counts]
        edpse_rows = [
            [_budget_label(fraction)]
            + [self.edpse[fraction][n] for n in gpm_counts]
            for fraction in fractions
        ]
        edpse_table = render_table(
            "Capping study: mean EDPSE (%) vs. chip power budget",
            header,
            edpse_rows,
            note=(
                "EDPSE baseline: 1-GPM uncapped at the 745 MHz anchor."
                " Budgets are fractions of num_gpms x"
                f" {DEFAULT_GPM_ANCHOR_WATTS:g} W nominal; capped runs are"
                " priced with their recorded operating-point residency."
            ),
        )
        power_rows = [
            [_budget_label(fraction)]
            + [self.mean_power_w[fraction][n] for n in gpm_counts]
            for fraction in fractions
        ]
        power_table = render_table(
            "Mean residency-priced power draw (W)",
            header,
            power_rows,
            note=(
                "Reported draw is modeled energy over runtime; tightening"
                " the budget must never raise it (the governor's cap is a"
                " hard constraint on the worst-case allocation)."
            ),
        )
        tables = [edpse_table, power_table]
        # Records cached before per-GPM attribution carry no shards; only
        # render the imbalance surface when every cell could be computed.
        have_imbalance = bool(self.core_imbalance) and all(
            n in self.core_imbalance.get(fraction, {})
            for fraction in fractions
            for n in gpm_counts
        )
        if have_imbalance:
            imbalance_rows = [
                [_budget_label(fraction)]
                + [self.core_imbalance[fraction][n] for n in gpm_counts]
                for fraction in fractions
            ]
            tables.append(
                render_table(
                    "Per-GPM core-energy imbalance (max/mean)",
                    header,
                    imbalance_rows,
                    note=(
                        "Exact per-GPM attribution: each module's core-domain"
                        " energy is priced at its own residency-weighted V²f"
                        " scale.  1.0 = perfectly balanced; higher means the"
                        " capping governor concentrated the budget on fewer"
                        " modules."
                    ),
                )
            )
        if self.screen is not None:
            predicted = self.screen.get("predicted_edpse", {})
            skipped = self.screen.get("skipped", [])
            lines = [
                f"Roofline screen ({self.screen['mode']}): budgets ranked by"
                f" predicted mean EDPSE, top {self.screen['top_k']}"
                f" + {self.screen['guard']} guard simulated (uncapped"
                " baseline always kept).",
            ]
            for label, value in predicted.items():
                lines.append(f"  predicted {label}: {value:.1f}%")
            if skipped:
                lines.append(f"  skipped budgets: {', '.join(skipped)}")
            tables.append("\n".join(lines))
        return "\n\n".join(tables)


def priced_params(config: GpuConfig, record: RunRecord) -> EnergyParams:
    """Residency-priced energy parameters for one study record."""
    residency = (
        None if record.residency is None
        else DvfsResidency.from_json(record.residency)
    )
    return EnergyParams.for_operating_point(config, residency=residency)


def _screen_fractions(
    specs,
    gpm_counts: tuple[int, ...],
    fractions: tuple[float | None, ...],
    top_k: int,
    guard: int,
) -> tuple[tuple[float | None, ...], dict]:
    """Prune the budget grid to the analytically best fractions.

    Every candidate budget is scored by its *predicted* mean EDPSE over the
    study's (workload, GPM count) cells — same roofline predictor, same
    capped configurations (the predictor reuses the governor's waterfill) —
    and only the top ``top_k + guard`` fractions survive.  The uncapped
    baseline is always kept: every EDPSE number is a ratio against it.
    """
    from repro.dvfs.selection import top_candidates
    from repro.roofline.model import RooflinePredictor

    predictor = RooflinePredictor()
    baseline_n = min(gpm_counts)
    baseline = {
        spec.abbr: predictor.predict(spec, capped_config(baseline_n, None))
        for spec in specs
    }
    candidates = [f for f in fractions if f is not None]
    predicted: dict[float, float] = {}
    for fraction in candidates:
        ratios = []
        for n in gpm_counts:
            config = capped_config(n, fraction)
            for spec in specs:
                prediction = predictor.predict(spec, config)
                ratios.append(
                    baseline[spec.abbr].edp * 100.0 / (n * prediction.edp)
                )
        predicted[fraction] = mean(ratios)
    # Higher EDPSE is better; selection ranks ascending, so negate.  The
    # deterministic tie-break mirrors the sweet-spot search's rule.
    ranked = top_candidates(
        candidates,
        len(candidates),
        score=lambda fraction: -predicted[fraction],
        tie_key=lambda fraction: (fraction, _budget_label(fraction)),
    )
    keep = set(ranked[: min(len(candidates), top_k + guard)])
    pruned = tuple(f for f in fractions if f is None or f in keep)
    note = {
        "mode": "roofline",
        "metric": "edpse",
        "top_k": top_k,
        "guard": guard,
        "predicted_edpse": {
            _budget_label(f): predicted[f] for f in ranked
        },
        "skipped": [_budget_label(f) for f in fractions if f not in pruned],
    }
    return pruned, note


def run(
    runner: SweepRunner | None = None,
    gpm_counts: tuple[int, ...] = STUDY_GPM_COUNTS,
    fractions: tuple[float | None, ...] = BUDGET_FRACTIONS,
    workloads: tuple[str, ...] = SCALING_SUBSET,
    screen: str | None = None,
    top_k: int = 3,
    guard: int = 1,
    idle: "IdleConfig | None" = None,
) -> CappingStudyResult:
    """Execute (or fetch from cache) the power-capping study.

    ``screen="roofline"`` prunes the budget grid analytically first (see
    :func:`_screen_fractions`); the surviving budgets are simulated through
    the exact same configurations — hence cache keys — as an exhaustive run.
    (The screen's predictor is idle-blind: with ``idle`` set it still ranks
    budgets by the gate-free roofline, which the guard point absorbs.)
    """
    if None not in fractions:
        raise ExperimentError(
            "the capping study needs the uncapped baseline (fraction None)"
        )
    runner = runner or SweepRunner()
    specs = [WORKLOAD_SPECS[abbr] for abbr in workloads]
    screen_note: dict | None = None
    if screen is not None:
        from repro.roofline.screen import validate_screen

        validate_screen(screen)
        if top_k < 1:
            raise ExperimentError(f"screen top-k must be >= 1, got {top_k}")
        if guard < 0:
            raise ExperimentError(f"screen guard must be >= 0, got {guard}")
        fractions, screen_note = _screen_fractions(
            specs, gpm_counts, fractions, top_k, guard
        )
    configs = {
        (fraction, n): capped_config(n, fraction, idle=idle)
        for fraction in fractions
        for n in gpm_counts
    }
    pairs = [
        (spec, config) for config in configs.values() for spec in specs
    ]
    by_key = {
        (record.workload, record.config_label): record
        for record in runner.run(pairs)
    }

    records: dict[float | None, dict[int, dict[str, RunRecord]]] = {}
    for (fraction, n), config in configs.items():
        for spec in specs:
            records.setdefault(fraction, {}).setdefault(n, {})[spec.abbr] = (
                by_key[(spec.abbr, config.label())]
            )

    result = CappingStudyResult(records=records, screen=screen_note)
    baseline_n = min(gpm_counts)
    baseline_config = configs[(None, baseline_n)]
    for fraction in fractions:
        result.edpse[fraction] = {}
        result.mean_power_w[fraction] = {}
        for n in gpm_counts:
            config = configs[(fraction, n)]
            ratios = []
            draws = []
            imbalances = []
            for spec in specs:
                record = records[fraction][n][spec.abbr]
                energy = record.energy(priced_params(config, record))
                edp = energy.total * record.seconds
                baseline = records[None][baseline_n][spec.abbr]
                baseline_energy = baseline.energy(
                    priced_params(baseline_config, baseline)
                )
                baseline_edp = baseline_energy.total * baseline.seconds
                ratios.append(baseline_edp * 100.0 / (n * edp))
                draws.append(energy.total / record.seconds)
                gpm_totals = [gpm.total for gpm in energy.per_gpm]
                if gpm_totals and sum(gpm_totals) > 0.0:
                    imbalances.append(
                        max(gpm_totals) / (sum(gpm_totals) / len(gpm_totals))
                    )
            result.edpse[fraction][n] = mean(ratios)
            result.mean_power_w[fraction][n] = mean(draws)
            if imbalances:
                result.core_imbalance.setdefault(fraction, {})[n] = mean(
                    imbalances
                )
    return result
