"""Idle study: race-to-idle vs. pacing when GPMs can actually sleep.

The power-gating study (:mod:`repro.experiments.powergate_study`) prices
gating as a free re-weighting — zero wake latency, zero residual draw.  This
study runs the real mechanism: per-GPM sleep states
(:mod:`repro.dvfs.idle`) with entry/exit latencies and residual power,
driven by governors with opposite philosophies:

* **race-to-idle** sprints every GPM at the top of the V/f curve so the
  queue drains early and the module can gate through the exposed gap;
* **deadline-paced** runs each GPM at the slowest point that still meets a
  per-run deadline, trading sleep time for lower V² the whole way;
* **utilization** (the PR-3 feedback governor, no sleep states) downclocks
  starved GPMs instead of gating them — the incumbent to beat;
* **gate-only** keeps the anchor clock and lets the sleep ladder do all the
  work, isolating the states' contribution from any DVFS policy.

Every variant is summarized as EDPSE (Eq. 2) against the paper's fixed
1-GPM static baseline.  The interesting outcome is *workload-shaped*: on
straggler grids (a CTA count that leaves one GPM an extra wave while seven
sit idle) racing buys real gated cycles and wins; on balanced grids there
is nothing to gate and the sprint's V² premium loses to plain downclocking.
The integration tests pin both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dvfs.idle import IdleConfig
from repro.dvfs.residency import DvfsResidency
from repro.errors import ExperimentError
from repro.experiments.capping_study import priced_params
from repro.experiments.render import render_table
from repro.experiments.results import RunRecord
from repro.experiments.runner import SweepRunner
from repro.gpu.config import (
    GpmConfig,
    GpuConfig,
    InterconnectConfig,
    TopologyKind,
)
from repro.units import mean
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import shrunken_spec

#: GPM count the study runs at (straggler shapes below are tuned for it).
STUDY_GPM_COUNT = 8

#: Deadline slack over the race-to-idle runtime: the paced governor must
#: finish within 25% of the fastest observed time, which is feasible by
#: construction (the race run itself proves it) yet tight enough that the
#: governor cannot simply camp on the curve floor.
DEADLINE_SLACK = 1.25

#: Governor variants in render order.  ``static`` is the ungoverned anchor
#: run; ``deadline-paced`` is resolved in a second batch because its
#: deadline derives from the race-to-idle runtime (see :func:`run`).
STUDY_GOVERNORS: tuple[str, ...] = (
    "static",
    "utilization",
    "gate-only",
    "race-to-idle",
    "deadline-paced",
)

#: Workloads by burstiness.  33 CTAs over 8 GPMs splits [5,4,4,4,4,4,4,4]:
#: with 4 CTA slots per GPM the straggler needs a second wave, so seven
#: modules idle for roughly half of every kernel — the bursty shape.  64
#: CTAs splits evenly into two full waves everywhere — the steady shape.
BURSTY_WORKLOADS: tuple[tuple[str, int, int], ...] = (
    ("BPROP", 33, 6),
    ("MiniAMR", 33, 6),
)
STEADY_WORKLOADS: tuple[tuple[str, int, int], ...] = (("Stream", 64, 6),)


def study_gpm() -> GpmConfig:
    """The golden-test GPM (2 SMs x 2 CTA slots): small enough to sweep,
    big enough that wave imbalance is visible."""
    return GpmConfig(num_sms=2, slots_per_sm=2)


def study_interconnect() -> InterconnectConfig:
    """The golden-test ring (256 Gb/s per GPM, 15-cycle links)."""
    return InterconnectConfig(
        kind=TopologyKind.RING,
        per_gpm_bandwidth_gbps=256.0,
        link_latency_cycles=15.0,
        energy_pj_per_bit=0.54,
    )


def study_spec(abbr: str, total_ctas: int, kernels: int) -> WorkloadSpec:
    """One shrunken study workload (shared with the regression tests)."""
    return shrunken_spec(abbr, total_ctas=total_ctas, kernels=kernels)


def baseline_config() -> GpuConfig:
    """The EDPSE baseline: 1 GPM, anchor clock, no governor, no sleep."""
    return GpuConfig(num_gpms=1, gpm=study_gpm())


def governed_config(
    governor: str, deadline_cycles: float | None = None
) -> GpuConfig:
    """The 8-GPM study configuration under one governor variant."""
    base = GpuConfig(
        num_gpms=STUDY_GPM_COUNT,
        gpm=study_gpm(),
        interconnect=study_interconnect(),
    )
    if governor == "static":
        return base
    if governor == "utilization":
        # No sleep states: the incumbent policy exactly as PR 3 shipped it.
        return replace(base, idle=IdleConfig.governor_only("utilization"))
    if governor == "gate-only":
        return replace(base, idle=IdleConfig())
    if governor == "race-to-idle":
        return replace(base, idle=IdleConfig(governor="race-to-idle"))
    if governor == "deadline-paced":
        if deadline_cycles is None:
            raise ExperimentError(
                "the deadline-paced variant needs deadline_cycles (derived"
                " from the race-to-idle runtime; see idle_study.run)"
            )
        return replace(
            base,
            idle=IdleConfig(
                governor="deadline-paced", deadline_cycles=deadline_cycles
            ),
        )
    raise ExperimentError(
        f"unknown idle-study governor {governor!r};"
        f" known: {list(STUDY_GOVERNORS)}"
    )


def sleep_fraction(record: RunRecord) -> float:
    """Fraction of total core-domain cycles the run spent gated."""
    if record.residency is None:
        return 0.0
    residency = DvfsResidency.from_json(record.residency)
    total = sum(hist.total_cycles for hist in residency.core)
    if total <= 0.0:
        return 0.0
    return residency.total_sleep_cycles / total


@dataclass
class IdleStudyResult:
    """EDPSE, energy, delay, and sleep fraction per (governor, workload)."""

    #: Records keyed ``records[governor][workload]``.
    records: dict[str, dict[str, RunRecord]]
    #: Baseline (1-GPM static) records keyed by workload.
    baseline: dict[str, RunRecord]
    #: Workload burstiness labels keyed by workload abbreviation.
    shape: dict[str, str]
    #: EDPSE (%) keyed ``edpse[governor][workload]``; higher is better.
    edpse: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Modeled energy (J), same keying.
    energy_j: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Runtime (s), same keying.
    seconds: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Core-domain sleep fraction, same keying.
    slept: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Derived per-workload deadline (cycles) for the paced governor.
    deadlines: dict[str, float] = field(default_factory=dict)

    def record(self, governor: str, workload: str) -> RunRecord:
        try:
            return self.records[governor][workload]
        except KeyError as exc:
            raise ExperimentError(
                f"no idle-study record for {workload!r}"
                f" under the {governor!r} governor"
            ) from exc

    def mean_edpse(self, governor: str, shape: str | None = None) -> float:
        """Mean EDPSE over the study's workloads (optionally one shape)."""
        values = [
            value
            for workload, value in self.edpse.get(governor, {}).items()
            if shape is None or self.shape.get(workload) == shape
        ]
        if not values:
            raise ExperimentError(
                f"no idle-study EDPSE for governor {governor!r}"
                + (f" on {shape} workloads" if shape else "")
            )
        return mean(values)

    def render(self) -> str:
        """The per-workload EDPSE surface plus energy/sleep diagnostics."""
        governors = [g for g in STUDY_GOVERNORS if g in self.edpse]
        workloads = list(self.baseline)
        header = ["governor"] + [
            f"{w} ({self.shape[w]})" for w in workloads
        ]
        edpse_rows = [
            [governor] + [self.edpse[governor][w] for w in workloads]
            for governor in governors
        ]
        tables = [
            render_table(
                f"Idle study: EDPSE (%) at {STUDY_GPM_COUNT} GPMs",
                header,
                edpse_rows,
                note=(
                    "EDPSE baseline: 1 GPM, anchor clock, no gating."
                    " bursty = straggler wave (33 CTAs on 8 GPMs);"
                    " steady = balanced waves.  Race-to-idle beats the"
                    " utilization governor on bursty shapes (the gated"
                    " straggler gap pays for the sprint) and loses on"
                    " steady ones (nothing to gate, V^2 premium only)."
                ),
            )
        ]
        sleep_rows = [
            [governor]
            + [
                f"{self.slept[governor][w]:.1%}"
                + f" / {self.energy_j[governor][w]:.3e} J"
                for w in workloads
            ]
            for governor in governors
        ]
        tables.append(
            render_table(
                "Core-domain sleep fraction / modeled energy",
                header,
                sleep_rows,
                note=(
                    "Sleep fraction counts clock- and power-gated cycles"
                    " across all GPMs; static and utilization rows gate"
                    " nothing by construction."
                ),
            )
        )
        if self.deadlines:
            lines = [
                f"Deadline-paced budget: race-to-idle runtime x"
                f" {DEADLINE_SLACK:g}"
            ]
            for workload, deadline in self.deadlines.items():
                lines.append(f"  {workload}: {deadline:.0f} cycles")
            tables.append("\n".join(lines))
        return "\n\n".join(tables)


def _workload_table(
    quick: bool,
) -> tuple[dict[str, WorkloadSpec], dict[str, str]]:
    """Study specs and their burstiness labels, keyed by abbreviation."""
    bursty = BURSTY_WORKLOADS[:1] if quick else BURSTY_WORKLOADS
    steady = STEADY_WORKLOADS[:1] if quick else STEADY_WORKLOADS
    specs: dict[str, WorkloadSpec] = {}
    shape: dict[str, str] = {}
    for label, table in (("bursty", bursty), ("steady", steady)):
        for abbr, total_ctas, kernels in table:
            specs[abbr] = study_spec(abbr, total_ctas, kernels)
            shape[abbr] = label
    return specs, shape


def run(
    runner: SweepRunner | None = None,
    governors: tuple[str, ...] = STUDY_GOVERNORS,
    quick: bool = False,
) -> IdleStudyResult:
    """Execute (or fetch from cache) the idle study.

    ``quick`` shrinks the grid to one bursty and one steady workload under
    the static/utilization/race-to-idle trio — the CI smoke shape.

    The deadline-paced variant runs in a second batch: its per-workload
    deadline is the race-to-idle runtime times :data:`DEADLINE_SLACK`,
    which keeps the derived configuration a deterministic function of
    cached results (same inputs, same deadline, same cache key).
    """
    unknown = [g for g in governors if g not in STUDY_GOVERNORS]
    if unknown:
        raise ExperimentError(
            f"unknown idle-study governors {unknown};"
            f" known: {list(STUDY_GOVERNORS)}"
        )
    if quick:
        governors = tuple(
            g
            for g in governors
            if g in ("static", "utilization", "race-to-idle")
        )
    if "deadline-paced" in governors and "race-to-idle" not in governors:
        raise ExperimentError(
            "the deadline-paced variant derives its deadline from the"
            " race-to-idle runtime; run both or neither"
        )
    runner = runner or SweepRunner()
    specs, shape = _workload_table(quick)

    first_batch = [g for g in governors if g != "deadline-paced"]
    configs = {g: governed_config(g) for g in first_batch}
    baseline = baseline_config()
    pairs = [(spec, baseline) for spec in specs.values()]
    pairs += [
        (spec, config)
        for config in configs.values()
        for spec in specs.values()
    ]
    by_key = {
        (record.workload, record.config_label): record
        for record in runner.run(pairs)
    }

    result = IdleStudyResult(
        records={
            g: {
                abbr: by_key[(abbr, configs[g].label())]
                for abbr in specs
            }
            for g in first_batch
        },
        baseline={
            abbr: by_key[(abbr, baseline.label())] for abbr in specs
        },
        shape=shape,
    )

    if "deadline-paced" in governors:
        race = result.records["race-to-idle"]
        result.deadlines = {
            abbr: race[abbr].counters.elapsed_cycles * DEADLINE_SLACK
            for abbr in specs
        }
        paced_configs = {
            abbr: governed_config(
                "deadline-paced", deadline_cycles=result.deadlines[abbr]
            )
            for abbr in specs
        }
        paced_records = {
            (record.workload, record.config_label): record
            for record in runner.run(
                [(specs[abbr], paced_configs[abbr]) for abbr in specs]
            )
        }
        result.records["deadline-paced"] = {
            abbr: paced_records[(abbr, paced_configs[abbr].label())]
            for abbr in specs
        }

    baseline_edp = {}
    for abbr in specs:
        record = result.baseline[abbr]
        energy = record.energy(priced_params(baseline, record))
        baseline_edp[abbr] = energy.total * record.seconds

    for governor, records in result.records.items():
        result.edpse[governor] = {}
        result.energy_j[governor] = {}
        result.seconds[governor] = {}
        result.slept[governor] = {}
        for abbr, record in records.items():
            if governor == "deadline-paced":
                config = paced_configs[abbr]
            else:
                config = configs[governor]
            energy = record.energy(priced_params(config, record))
            edp = energy.total * record.seconds
            result.edpse[governor][abbr] = (
                baseline_edp[abbr] * 100.0 / (STUDY_GPM_COUNT * edp)
            )
            result.energy_j[governor][abbr] = energy.total
            result.seconds[governor][abbr] = record.seconds
            result.slept[governor][abbr] = sleep_fraction(record)
    return result
