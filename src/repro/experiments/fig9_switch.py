"""Figure 9: on-board ring vs high-radix switch EDPSE.

Replacing the on-board ring with a switch chip (identical link bandwidth,
plus 10 pJ/bit through the fabric) removes multi-hop amplification and
roughly doubles 32-GPM EDPSE — topology innovation matters as much as raw
link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import (
    SCALED_GPM_COUNTS,
    StudyResult,
    run_scaling_study,
    scaling_configs,
)
from repro.gpu.config import BandwidthSetting, IntegrationDomain, TopologyKind

PAPER_SWITCH_GAIN_AT_32 = 2.0

#: The three Figure 9 series: (label, bandwidth, topology).
SERIES: tuple[tuple[str, BandwidthSetting, TopologyKind], ...] = (
    ("Ring (1x-BW)", BandwidthSetting.BW_1X, TopologyKind.RING),
    ("Switch (1x-BW)", BandwidthSetting.BW_1X, TopologyKind.SWITCH),
    ("Switch (2x-BW)", BandwidthSetting.BW_2X, TopologyKind.SWITCH),
)


@dataclass
class Fig9Result:
    studies: dict[str, StudyResult]

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        counts = self.studies[SERIES[0][0]].scaled_counts
        top = counts[-1]
        headers = ["config"] + [f"{n}-GPM" for n in counts]
        rows = [
            [label] + [self.studies[label].mean_edpse(n) for n in counts]
            for label, _bw, _topo in SERIES
        ]
        gain = (
            self.studies["Switch (1x-BW)"].mean_edpse(top)
            / self.studies["Ring (1x-BW)"].mean_edpse(top)
        )
        return render_table(
            "Figure 9: EDPSE (%) — on-board ring vs switched networks",
            headers,
            rows,
            note=(
                f"Switch / ring EDPSE gain at {top}-GPM (same links):"
                f" {gain:.2f}x (paper: ~2x)."
            ),
        )


def run(
    runner: SweepRunner | None = None,
    counts: tuple[int, ...] = SCALED_GPM_COUNTS,
    workload_abbrs: tuple[str, ...] | None = None,
    spec_for=None,
) -> Fig9Result:
    """Execute (or fetch from cache) the Figure 9 study.

    ``counts``/``workload_abbrs``/``spec_for`` reduce the grid for the
    ``repro figures --quick`` tier; the defaults reproduce the paper figure.
    """
    runner = runner or SweepRunner()
    studies = {}
    for label, bandwidth, topology in SERIES:
        configs = scaling_configs(
            bandwidth, domain=IntegrationDomain.ON_BOARD, topology=topology,
            counts=counts,
        )
        studies[label] = run_scaling_study(
            runner, configs, label=label,
            **({} if workload_abbrs is None else {"workload_abbrs": workload_abbrs}),
            spec_for=spec_for,
        )
    return Fig9Result(studies=studies)
