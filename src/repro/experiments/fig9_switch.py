"""Figure 9: on-board ring vs high-radix switch EDPSE.

Replacing the on-board ring with a switch chip (identical link bandwidth,
plus 10 pJ/bit through the fabric) removes multi-hop amplification and
roughly doubles 32-GPM EDPSE — topology innovation matters as much as raw
link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import (
    SCALED_GPM_COUNTS,
    StudyResult,
    run_scaling_study,
    scaling_configs,
)
from repro.gpu.config import BandwidthSetting, IntegrationDomain, TopologyKind

PAPER_SWITCH_GAIN_AT_32 = 2.0

#: The three Figure 9 series: (label, bandwidth, topology).
SERIES: tuple[tuple[str, BandwidthSetting, TopologyKind], ...] = (
    ("Ring (1x-BW)", BandwidthSetting.BW_1X, TopologyKind.RING),
    ("Switch (1x-BW)", BandwidthSetting.BW_1X, TopologyKind.SWITCH),
    ("Switch (2x-BW)", BandwidthSetting.BW_2X, TopologyKind.SWITCH),
)


@dataclass
class Fig9Result:
    studies: dict[str, StudyResult]

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        headers = ["config"] + [f"{n}-GPM" for n in SCALED_GPM_COUNTS]
        rows = [
            [label] + [self.studies[label].mean_edpse(n) for n in SCALED_GPM_COUNTS]
            for label, _bw, _topo in SERIES
        ]
        gain = (
            self.studies["Switch (1x-BW)"].mean_edpse(32)
            / self.studies["Ring (1x-BW)"].mean_edpse(32)
        )
        return render_table(
            "Figure 9: EDPSE (%) — on-board ring vs switched networks",
            headers,
            rows,
            note=(
                f"Switch / ring EDPSE gain at 32-GPM (same links):"
                f" {gain:.2f}x (paper: ~2x)."
            ),
        )


def run(runner: SweepRunner | None = None) -> Fig9Result:
    """Execute (or fetch from cache) the Figure 9 study."""
    runner = runner or SweepRunner()
    studies = {}
    for label, bandwidth, topology in SERIES:
        configs = scaling_configs(
            bandwidth, domain=IntegrationDomain.ON_BOARD, topology=topology
        )
        studies[label] = run_scaling_study(runner, configs, label=label)
    return Fig9Result(studies=studies)
