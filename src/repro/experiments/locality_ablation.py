"""Ablation: the locality mechanisms the scaling study takes as given.

Section V-A1 adopts *distributed (contiguous) thread-block scheduling* and
*first-touch page placement* from the MCM-GPU/NUMA-GPU line of work.  This
ablation quantifies what those two mechanisms are worth by knocking each out
on an 8-GPM on-package design:

* ``first-touch + contiguous``   — the paper's configuration;
* ``striped placement``          — pages round-robin across GPMs regardless
  of who touches them (locality-oblivious memory);
* ``round-robin CTAs``           — adjacent CTAs scattered across GPMs, so
  first touch can no longer co-locate a CTA's data with its GPM.

Expected shape: both knockouts inflate remote traffic toward (N-1)/N and cost
large factors in time and energy — evidence for the paper's premise that
locality capture is a precondition, not an optimization.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.energy_model import EnergyModel, EnergyParams
from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import record_for
from repro.gpu.config import BandwidthSetting, table_iii_config
from repro.gpu.cta_scheduler import CtaPartitioning
from repro.memory.pages import PlacementPolicy
from repro.units import geomean, mean
from repro.workloads.suite import SCALING_SUBSET

NUM_GPMS = 8

#: (label, placement policy, partitioning) for each ablation arm.
ARMS: tuple[tuple[str, PlacementPolicy, CtaPartitioning], ...] = (
    ("first-touch + contiguous", PlacementPolicy.FIRST_TOUCH,
     CtaPartitioning.CONTIGUOUS),
    ("striped placement", PlacementPolicy.STRIPED,
     CtaPartitioning.CONTIGUOUS),
    ("round-robin CTAs", PlacementPolicy.FIRST_TOUCH,
     CtaPartitioning.ROUND_ROBIN),
)


@dataclass
class LocalityAblationResult:
    #: label -> (mean remote fraction, geomean slowdown vs baseline arm,
    #:           mean energy vs baseline arm)
    by_arm: dict[str, tuple[float, float, float]]

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows = [
            [label, remote, slowdown, energy]
            for label, (remote, slowdown, energy) in self.by_arm.items()
        ]
        return render_table(
            f"Ablation: locality mechanisms at {NUM_GPMS}-GPM (2x-BW on-package)",
            ["configuration", "remote fraction", "slowdown", "energy (norm.)"],
            rows,
            note=(
                "Knocking out first-touch placement or contiguous CTA"
                " scheduling drives remote traffic toward (N-1)/N and"
                " inflates both delay and energy — the locality capture the"
                " paper's Section V-A1 presumes."
            ),
        )


def run(runner: SweepRunner | None = None) -> LocalityAblationResult:
    """Execute (or fetch from cache) the locality ablation."""
    runner = runner or SweepRunner()
    per_arm_runs: dict[str, list] = {}
    for label, placement, partitioning in ARMS:
        config = table_iii_config(NUM_GPMS, BandwidthSetting.BW_2X)
        config = dataclasses.replace(
            config,
            placement_policy=placement,
            name=f"{config.label()}/{placement.value}/{partitioning.value}",
        )
        records = []
        for abbr in SCALING_SUBSET:
            records.append(
                _record_with_partitioning(runner, abbr, config, partitioning)
            )
        per_arm_runs[label] = records

    baseline_label = ARMS[0][0]
    baseline = per_arm_runs[baseline_label]
    by_arm: dict[str, tuple[float, float, float]] = {}
    for label, _p, _s in ARMS:
        records = per_arm_runs[label]
        params = EnergyParams.for_config(
            table_iii_config(NUM_GPMS, BandwidthSetting.BW_2X)
        )
        remote = mean(r.counters.remote_fraction for r in records)
        slowdown = geomean(
            r.seconds / b.seconds for r, b in zip(records, baseline)
        )
        energy = mean(
            EnergyModel(params).total_energy(r.counters, r.seconds)
            / EnergyModel(params).total_energy(b.counters, b.seconds)
            for r, b in zip(records, baseline)
        )
        by_arm[label] = (remote, slowdown, energy)
    return LocalityAblationResult(by_arm=by_arm)


def _record_with_partitioning(
    runner: SweepRunner, abbr: str, config, partitioning: CtaPartitioning
):
    """Simulate one pair under a CTA-partitioning override (cached)."""
    if partitioning is CtaPartitioning.CONTIGUOUS:
        return record_for(runner, abbr, config)
    # Round-robin partitioning is not part of GpuConfig (it is a scheduler
    # argument), so cache under a distinguishing config name and simulate
    # through the lower-level facade.
    import json

    from repro.experiments.results import RunRecord
    from repro.experiments.runner import _cache_key
    from repro.gpu.simulator import GpuSimulator
    from repro.workloads.generator import build_workload
    from repro.workloads.suite import WORKLOAD_SPECS

    spec = WORKLOAD_SPECS[abbr]
    key = _cache_key(spec, config) + "-rr"
    path = runner._cache_path(key)
    if runner.settings.use_cache and path.exists():
        try:
            with path.open() as handle:
                return RunRecord.from_json(json.load(handle))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            path.unlink(missing_ok=True)
    result = GpuSimulator(config, partitioning=partitioning).run(
        build_workload(spec)
    )
    record = RunRecord(
        workload=abbr,
        category=spec.category.value,
        config_label=config.label(),
        num_gpms=config.num_gpms,
        seconds=result.seconds,
        counters=result.counters,
    )
    runner._store(key, record)
    return record
