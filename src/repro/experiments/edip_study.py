"""Extension study: the generalized ED^iPSE metric (Eq. 3).

Section III notes that EDPSE extends to ED^iPSE for design teams weighting
performance more heavily (i = 2 recovers ED2P-based efficiency), and Section
V-D cautions that the qualitative trends survive the re-weighting.  This
study verifies that claim on the baseline on-package sweep: it reports
parallel efficiency (i = 0, energy-blind), EDPSE (i = 1), and ED2PSE (i = 2)
side by side.

Pure re-weighting of cached simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.energy_model import EnergyParams
from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import (
    SCALED_GPM_COUNTS,
    StudyResult,
    run_scaling_study,
    scaling_configs,
)
from repro.gpu.config import BandwidthSetting
from repro.units import mean


@dataclass
class EdipResult:
    study: StudyResult

    def metric(self, n: int, i: int) -> float:
        """Mean ED^iPSE across the scaling subset (i=0: parallel eff.)."""
        values = []
        for scaling in self.study.workloads.values():
            if i == 0:
                values.append(
                    scaling.scaled[n].parallel_efficiency_over(scaling.baseline)
                )
            else:
                values.append(scaling.scaled[n].edpse_over(scaling.baseline, i=i))
        return mean(values)

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows = []
        for n in SCALED_GPM_COUNTS:
            rows.append(
                [
                    f"{n}-GPM",
                    self.metric(n, 0),
                    self.metric(n, 1),
                    self.metric(n, 2),
                ]
            )
        return render_table(
            "Extension: metric weighting — parallel efficiency vs ED^iPSE"
            " (2x-BW on-package)",
            ["config", "parallel eff. (%)", "EDPSE (%)", "ED2PSE (%)"],
            rows,
            note=(
                "Section V-D's caution, verified: heavier delay weighting"
                " (i=2) punishes sub-linear scaling harder, but the decline"
                " with GPM count — and where it crosses 50% — is the same"
                " story under every i."
            ),
        )


def run(runner: SweepRunner | None = None) -> EdipResult:
    """Execute (or fetch from cache) the metric-weighting study."""
    runner = runner or SweepRunner()
    configs = scaling_configs(BandwidthSetting.BW_2X)
    study = run_scaling_study(
        runner, configs, label="edip", params_for=EnergyParams.for_config
    )
    return EdipResult(study=study)
