"""Table Ib: EPI/EPT calibration against (synthetic) silicon.

Runs the full Figure 3 campaign — compute loops, the low-occupancy stall
probe, the pointer-chase ladder — against a seeded silicon instance and
reports the recovered EPI/EPT values next to the paper's published Table Ib
numbers.  The paper's values are the nominal center of the silicon's
per-opcode spread, so recovered values should track them within that spread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.epi_tables import EPI_TABLE_NJ, EPT_TABLE, TransactionKind
from repro.core.refinement import CalibratedModel, CalibrationCampaign
from repro.experiments.render import render_table
from repro.isa.opcodes import TABLE_1B_COMPUTE_OPCODES
from repro.power.meter import PowerMeter
from repro.power.silicon import SiliconGpu

_EPT_ROW_LABELS = {
    TransactionKind.SHARED_TO_RF: "Shared Memory to Register File",
    TransactionKind.L1_TO_RF: "L1 Cache to Register File",
    TransactionKind.L2_TO_L1: "L2 Cache to L1 Cache",
    TransactionKind.DRAM_TO_L2: "DRAM to L2 Cache",
}


@dataclass
class Table1bResult:
    model: CalibratedModel
    silicon: SiliconGpu

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows: list[list[object]] = []
        for opcode in TABLE_1B_COMPUTE_OPCODES:
            rows.append(
                [
                    opcode.name,
                    EPI_TABLE_NJ[opcode],
                    round(self.model.epi_nj[opcode], 3),
                    round(self.silicon.true_epi_nj(opcode), 3),
                ]
            )
        for kind in TransactionKind:
            rows.append(
                [
                    _EPT_ROW_LABELS[kind],
                    EPT_TABLE[kind][0],
                    round(self.model.ept_nj[kind], 3),
                    round(self.silicon.true_ept_nj(kind), 3),
                ]
            )
        rows.append(
            [
                "EPStall (nJ/SM-cycle)",
                "-",
                round(self.model.ep_stall_nj, 3),
                self.silicon.effects.true_stall_nj,
            ]
        )
        return render_table(
            "Table Ib: calibrated EPI/EPT (nJ) vs paper values",
            ["operation", "paper", "calibrated", "silicon truth"],
            rows,
            note=(
                "Calibrated values should recover the silicon truth; the"
                " paper column is the nominal center of the silicon's"
                " per-op spread."
            ),
        )


def run(seed: int = 40) -> Table1bResult:
    """Run the calibration campaign against a fresh silicon instance."""
    silicon = SiliconGpu(seed=seed)
    campaign = CalibrationCampaign(PowerMeter(silicon))
    model = campaign.calibrate(refine=True)
    return Table1bResult(model=model, silicon=silicon)
