"""Extension study: inter-GPM link compression (Section V-E).

The paper's discussion argues data-compression techniques must be re-applied
*between* GPU modules.  This study makes that quantitative: on the
bandwidth-starved 32-GPM on-board design (1x-BW ring), payload compression
ratios of 1.5x and 2x are swept, charging 2 pJ per uncompressed byte of codec
energy and 8 cycles of codec latency per message.

Expected shape (and the paper's §V-C logic transplanted): every wire byte
removed from the ring is worth ~hops x 10 pJ of link energy *and* scarce
bandwidth, so even an expensive codec pays for itself — compression behaves
like a bandwidth upgrade, which Figure 8 showed is the dominant lever.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import run_scaling_study, scaling_configs
from repro.gpu.config import BandwidthSetting, IntegrationDomain
from repro.interconnect.compression import CompressionConfig

RATIOS = (1.0, 1.5, 2.0)


@dataclass
class CompressionResult:
    #: ratio -> (geomean speedup vs 1-GPM, mean energy ratio, mean EDPSE %)
    by_ratio: dict[float, tuple[float, float, float]]

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows = []
        base_speedup, base_energy, base_edpse = self.by_ratio[1.0]
        for ratio in sorted(self.by_ratio):
            speedup, energy, edpse = self.by_ratio[ratio]
            rows.append(
                [
                    "off" if ratio == 1.0 else f"{ratio:g}x",
                    speedup,
                    energy,
                    edpse,
                    (edpse - base_edpse) / base_edpse * 100.0,
                ]
            )
        return render_table(
            "Extension: link compression at 32-GPM (1x-BW on-board ring)",
            ["compression", "speedup", "energy (norm.)", "EDPSE (%)",
             "EDPSE gain (%)"],
            rows,
            note=(
                "Compression acts as a bandwidth upgrade on the starved ring:"
                " per §V-C logic, the codec energy is a rounding error next"
                " to the idle-time it removes."
            ),
        )


def run(runner: SweepRunner | None = None) -> CompressionResult:
    """Execute (or fetch from cache) the compression extension study."""
    runner = runner or SweepRunner()
    by_ratio: dict[float, tuple[float, float, float]] = {}
    for ratio in RATIOS:
        configs = scaling_configs(
            BandwidthSetting.BW_1X, domain=IntegrationDomain.ON_BOARD,
            counts=(32,),
        )
        if ratio > 1.0:
            configs = {
                n: dataclasses.replace(
                    config,
                    compression=CompressionConfig(data_ratio=ratio),
                    name=f"{config.label()}/comp{ratio:g}x",
                )
                for n, config in configs.items()
            }
        study = run_scaling_study(
            runner, configs, label=f"compression-{ratio:g}x"
        )
        by_ratio[ratio] = (
            study.geomean_speedup(32),
            study.mean_energy_ratio(32),
            study.mean_edpse(32),
        )
    return CompressionResult(by_ratio=by_ratio)
