"""Shared scaffolding for the multi-module scaling experiments.

A *scaling study* is: simulate the 14-workload subset on the 1-GPM baseline
plus a set of scaled configurations, price every run with the configuration's
energy parameters, and summarize per-workload/per-category EDPSE, speedup,
and normalized energy.  Every figure module composes this scaffolding with
its own configuration axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.edpse import ScalingPoint
from repro.core.energy_model import EnergyParams
from repro.errors import ExperimentError
from repro.experiments.results import RunRecord
from repro.experiments.runner import SweepRunner
from repro.gpu.config import (
    BandwidthSetting,
    GpuConfig,
    IntegrationDomain,
    TopologyKind,
    table_iii_config,
)
from repro.isa.kernel import WorkloadCategory
from repro.units import geomean, mean
from repro.workloads.suite import SCALING_SUBSET, WORKLOAD_SPECS

#: Scaled GPM counts reported by the figures (the baseline 1-GPM is implicit).
SCALED_GPM_COUNTS: tuple[int, ...] = (2, 4, 8, 16, 32)


@dataclass
class WorkloadScaling:
    """One workload's baseline plus scaled observations under one pricing."""

    workload: str
    category: WorkloadCategory
    baseline: ScalingPoint
    scaled: dict[int, ScalingPoint] = field(default_factory=dict)

    def edpse(self, n: int) -> float:
        """EDPSE (%) at n GPMs vs this workload's 1-GPM baseline."""
        return self.scaled[n].edpse_over(self.baseline)

    def speedup(self, n: int) -> float:
        """Speedup at n GPMs over the baseline."""
        return self.scaled[n].speedup_over(self.baseline)

    def energy_ratio(self, n: int) -> float:
        """Energy at n GPMs normalized to the baseline."""
        return self.scaled[n].energy_ratio_over(self.baseline)


@dataclass
class StudyResult:
    """All workloads' scaling observations for one configuration axis value."""

    label: str
    workloads: dict[str, WorkloadScaling]

    def _subset(self, category: WorkloadCategory | None) -> list[WorkloadScaling]:
        selected = [
            scaling
            for scaling in self.workloads.values()
            if category is None or scaling.category is category
        ]
        if not selected:
            raise ExperimentError(f"no workloads in category {category!r}")
        return selected

    def mean_edpse(self, n: int, category: WorkloadCategory | None = None) -> float:
        """Arithmetic-mean EDPSE (%) over a category (None = all)."""
        return mean(w.edpse(n) for w in self._subset(category))

    def geomean_speedup(self, n: int, category: WorkloadCategory | None = None) -> float:
        """Geometric-mean speedup over a category (None = all)."""
        return geomean(w.speedup(n) for w in self._subset(category))

    def mean_energy_ratio(
        self, n: int, category: WorkloadCategory | None = None
    ) -> float:
        """Arithmetic-mean normalized energy over a category (None = all)."""
        return mean(w.energy_ratio(n) for w in self._subset(category))

    @property
    def scaled_counts(self) -> tuple[int, ...]:
        """The GPM counts this study actually scaled to, ascending.

        Figure renderers iterate this instead of the module-level
        :data:`SCALED_GPM_COUNTS`, so reduced (``--quick``) grids render
        without KeyErrors.
        """
        counts: set[int] = set()
        for scaling in self.workloads.values():
            counts.update(scaling.scaled)
        return tuple(sorted(counts))


def scaling_configs(
    bandwidth: BandwidthSetting,
    domain: IntegrationDomain | None = None,
    topology: TopologyKind = TopologyKind.RING,
    counts: tuple[int, ...] = SCALED_GPM_COUNTS,
) -> dict[int, GpuConfig]:
    """Table III configs for one bandwidth/domain/topology axis value."""
    return {
        n: table_iii_config(n, bandwidth, domain=domain, topology=topology)
        for n in counts
    }


def baseline_config() -> GpuConfig:
    """The 1-GPM reference every EDPSE number is computed against."""
    return table_iii_config(1, BandwidthSetting.BW_2X)


def run_scaling_study(
    runner: SweepRunner,
    configs: dict[int, GpuConfig],
    label: str,
    params_for: "callable | None" = None,
    workload_abbrs: tuple[str, ...] = SCALING_SUBSET,
    spec_for: "callable | None" = None,
) -> StudyResult:
    """Simulate the workload subset on a baseline + scaled configs and price it.

    Args:
        runner: sweep executor (provides caching/parallelism).
        configs: scaled configurations keyed by GPM count.
        label: name for the study axis value (used in reports).
        params_for: optional ``f(config) -> EnergyParams`` override; defaults
            to :meth:`EnergyParams.for_config` (the §V-C point studies pass
            re-pricing functions here).
        workload_abbrs: which Table II workloads to include.
        spec_for: optional ``f(abbr) -> WorkloadSpec`` override; the quick
            figure tier passes shrunken specs here so a reduced study keeps
            the full study's structure (and cache-key discipline) at a
            fraction of the engine time.
    """
    if params_for is None:
        params_for = EnergyParams.for_config
    if spec_for is None:
        spec_for = WORKLOAD_SPECS.__getitem__
    base_config = baseline_config()
    specs = [spec_for(abbr) for abbr in workload_abbrs]
    all_configs = [base_config] + [configs[n] for n in sorted(configs)]
    grid = runner.run_grid(specs, all_configs)

    base_params = params_for(base_config)
    workloads: dict[str, WorkloadScaling] = {}
    base_records = grid[base_config.label()]
    for abbr, spec in zip(workload_abbrs, specs):
        record = base_records[spec.abbr]
        workloads[abbr] = WorkloadScaling(
            workload=abbr,
            category=spec.category,
            baseline=record.scaling_point(base_params),
        )
    for n in sorted(configs):
        config = configs[n]
        params = params_for(config)
        for abbr in workload_abbrs:
            record = grid[config.label()][abbr]
            workloads[abbr].scaled[n] = record.scaling_point(params)
    return StudyResult(label=label, workloads=workloads)


def incremental_ratio(values: dict[int, float], n: int) -> float:
    """Ratio of a metric at ``n`` GPMs vs the preceding scaling point."""
    counts = sorted(values)
    index = counts.index(n)
    if index == 0:
        raise ExperimentError(f"{n} has no preceding scaling point")
    return values[n] / values[counts[index - 1]]


def record_for(
    runner: SweepRunner, abbr: str, config: GpuConfig
) -> RunRecord:
    """Fetch one (workload, config) record through the cache."""
    return runner.run([(WORKLOAD_SPECS[abbr], config)])[0]
