"""Extension study: on-package topology — ring vs 2D torus vs switch.

Figure 9 compares ring and switch *on-board*.  On-package, the paper argues
planar substrates favor multi-hop neighbor topologies over switch chips
(Section II); the natural question it leaves open is how much a richer planar
topology recovers.  This study compares, at the on-package 2x-BW setting:

* the paper's **ring** (two neighbor links of B/2 each; ~N/4 average hops),
* a **2D torus** (four neighbor links of B/4 each; ~sqrt(N)/2 average hops),
* an idealized on-package **switch** (full-B ports, 2 hops, +10 pJ/bit).

Expected shape: at 8 GPMs the ring and torus tie (hops are short either
way); at 32 GPMs the torus recovers a large part of the switch's advantage
while staying planar — topology innovation as a third lever next to raw
bandwidth (Fig. 8) and integration domain (amortization).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import StudyResult, run_scaling_study, scaling_configs
from repro.gpu.config import BandwidthSetting, IntegrationDomain, TopologyKind

COUNTS = (8, 32)

SERIES: tuple[tuple[str, TopologyKind], ...] = (
    ("Ring", TopologyKind.RING),
    ("2D torus", TopologyKind.MESH),
    ("Switch", TopologyKind.SWITCH),
)


@dataclass
class TopologyResult:
    studies: dict[str, StudyResult]

    def edpse(self, label: str, n: int) -> float:
        """Mean EDPSE (%) for one topology at n GPMs."""
        return self.studies[label].mean_edpse(n)

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        headers = ["topology"] + [f"{n}-GPM" for n in COUNTS]
        rows = [
            [label] + [self.edpse(label, n) for n in COUNTS]
            for label, _kind in SERIES
        ]
        return render_table(
            "Extension: on-package topology at 2x-BW — EDPSE (%)",
            headers,
            rows,
            note=(
                "The torus halves the ring's average hop count while staying"
                " planar; at 32 GPMs it recovers much of the switch's"
                " advantage without a switch chip's packaging cost."
            ),
        )


def run(runner: SweepRunner | None = None) -> TopologyResult:
    """Execute (or fetch from cache) the topology comparison."""
    runner = runner or SweepRunner()
    studies = {}
    for label, kind in SERIES:
        configs = scaling_configs(
            BandwidthSetting.BW_2X,
            domain=IntegrationDomain.ON_PACKAGE,
            topology=kind,
            counts=COUNTS,
        )
        studies[label] = run_scaling_study(runner, configs, label=label)
    return TopologyResult(studies=studies)
