"""Section V-C point study: sensitivity to interconnect energy per bit.

Using the 32-GPM on-board (1x-BW ring, 10 pJ/bit) design, the paper raises
the link energy 2x and 4x *without changing bandwidth* and finds the EDPSE
impact is below 1 % — while doubling bandwidth at 4x the energy/bit would
*improve* EDPSE by 8.8 %.  The study re-prices cached simulations; no new
simulation is needed for the energy axis (bandwidth changes do re-simulate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.energy_model import EnergyParams
from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import run_scaling_study, scaling_configs
from repro.gpu.config import BandwidthSetting, IntegrationDomain

PAPER_MAX_EDPSE_IMPACT = 1.0          # percent, at 4x link energy
PAPER_EDPSE_GAIN_TRADEOFF = 8.8       # percent, 2x BW at 4x energy/bit

BASE_PJ_PER_BIT = 10.0


@dataclass
class InterconnectEnergyResult:
    edpse_by_multiplier: dict[float, float]   # link-energy multiplier -> EDPSE
    edpse_tradeoff: float                     # 2x BW at 4x energy/bit

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        base = self.edpse_by_multiplier[1.0]
        rows = []
        for multiplier, edpse in sorted(self.edpse_by_multiplier.items()):
            rows.append(
                [
                    f"{multiplier:g}x ({multiplier * BASE_PJ_PER_BIT:g} pJ/b)",
                    edpse,
                    (edpse - base) / base * 100.0,
                ]
            )
        rows.append(
            [
                "2x-BW @ 4x pJ/b",
                self.edpse_tradeoff,
                (self.edpse_tradeoff - base) / base * 100.0,
            ]
        )
        return render_table(
            "Section V-C: 32-GPM EDPSE vs interconnect energy (1x-BW on-board)",
            ["link energy", "EDPSE (%)", "vs baseline (%)"],
            rows,
            note=(
                "Paper shape: 4x link energy moves EDPSE <1%; spending 4x"
                " energy/bit to double bandwidth *raises* EDPSE ~8.8%."
            ),
        )


def run(runner: SweepRunner | None = None) -> InterconnectEnergyResult:
    """Execute (or fetch from cache) the link-energy point study."""
    runner = runner or SweepRunner()
    configs = scaling_configs(
        BandwidthSetting.BW_1X, domain=IntegrationDomain.ON_BOARD, counts=(32,)
    )

    edpse_by_multiplier = {}
    for multiplier in (1.0, 2.0, 4.0):
        def params_for(config, _multiplier=multiplier):
            params = EnergyParams.for_config(config)
            if config.num_gpms == 1:
                return params
            return params.with_link_energy(BASE_PJ_PER_BIT * _multiplier)

        study = run_scaling_study(
            runner, configs, label=f"link-energy-{multiplier}x",
            params_for=params_for,
        )
        edpse_by_multiplier[multiplier] = study.mean_edpse(32)

    # The trade-off point: double the bandwidth, at 4x the energy per bit.
    tradeoff_configs = scaling_configs(
        BandwidthSetting.BW_2X, domain=IntegrationDomain.ON_BOARD, counts=(32,)
    )

    def tradeoff_params(config):
        params = EnergyParams.for_config(config)
        if config.num_gpms == 1:
            return params
        return params.with_link_energy(BASE_PJ_PER_BIT * 4.0)

    tradeoff = run_scaling_study(
        runner, tradeoff_configs, label="2xBW@4xE", params_for=tradeoff_params
    )
    return InterconnectEnergyResult(
        edpse_by_multiplier=edpse_by_multiplier,
        edpse_tradeoff=tradeoff.mean_edpse(32),
    )
