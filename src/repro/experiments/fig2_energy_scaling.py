"""Figure 2: the energy cost of strong scaling with on-board integration.

The motivating figure: averaged over the 14 scaling workloads, growing an
on-board (1x-BW ring) multi-module GPU from 2x to 32x capability raises the
energy to compute a fixed problem to ~2x the single-GPU energy, against an
ideal of 1.0x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.experiments.results import ScalingRow
from repro.experiments.runner import SweepRunner
from repro.experiments.study import (
    SCALED_GPM_COUNTS,
    StudyResult,
    run_scaling_study,
    scaling_configs,
)
from repro.gpu.config import BandwidthSetting, IntegrationDomain

#: The paper's headline: ~2x energy at 32x capability, on average.
PAPER_ENERGY_AT_32X = 2.0


@dataclass
class Fig2Result:
    """Mean normalized energy per scaled capability point."""

    study: StudyResult
    rows: list[ScalingRow]

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        table_rows = [
            [f"{row.num_gpms}x", 1.0, row.values["energy"]]
            for row in self.rows
        ]
        return render_table(
            "Figure 2: energy normalized to single GPU — on-board scaling",
            ["GPU capability", "ideal", "measured"],
            table_rows,
            note="Paper shape: rising curve reaching ~2.0x at 32x capability.",
        )


def run(
    runner: SweepRunner | None = None,
    counts: tuple[int, ...] = SCALED_GPM_COUNTS,
    workload_abbrs: tuple[str, ...] | None = None,
    spec_for=None,
) -> Fig2Result:
    """Execute (or fetch from cache) the Figure 2 study.

    ``counts``/``workload_abbrs``/``spec_for`` reduce the grid for the
    ``repro figures --quick`` tier; the defaults reproduce the paper figure.
    """
    runner = runner or SweepRunner()
    configs = scaling_configs(
        BandwidthSetting.BW_1X, domain=IntegrationDomain.ON_BOARD,
        counts=counts,
    )
    study = run_scaling_study(
        runner, configs, label="on-board/1x-BW",
        **({} if workload_abbrs is None else {"workload_abbrs": workload_abbrs}),
        spec_for=spec_for,
    )
    rows = [
        ScalingRow(
            num_gpms=n,
            label=f"{n}x",
            values={"energy": study.mean_energy_ratio(n)},
        )
        for n in study.scaled_counts
    ]
    return Fig2Result(study=study, rows=rows)
