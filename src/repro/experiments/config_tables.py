"""Tables Ia, II, III, and IV: the paper's configuration tables.

These tables define the experimental setup rather than results; reproducing
them means showing that the library's configuration objects state the same
platform.  The renderers below derive every row from the live config/spec
objects — nothing is hard-coded in the experiment — so drift between the
paper's setup and the library's defaults fails the bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.gpu.config import (
    BandwidthSetting,
    DEFAULT_DOMAIN_FOR_BW,
    TABLE_III_GPM_COUNTS,
    k40_config,
    table_iii_config,
    table_iv_interconnect,
)
from repro.units import KIB, MIB
from repro.workloads.suite import WORKLOAD_SPECS


@dataclass
class ConfigTablesResult:
    def render_table_ia(self) -> str:
        """Render this result as the paper-style ASCII table."""
        config = k40_config()
        gpm = config.gpm
        rows = [
            ["Architecture", "Kepler", "Kepler-class module"],
            ["SM count", "15", str(gpm.num_sms)],
            ["L2 cache", "1.5 MB", f"{gpm.l2_capacity_bytes / MIB:g} MB"],
            ["DRAM bandwidth", "280 GB/s", f"{gpm.dram.bandwidth_gbps:g} GB/s"],
            ["DRAM technology", "GDDR5", gpm.dram.technology],
        ]
        return render_table(
            "Table Ia: the validation GPU (Tesla K40)",
            ["parameter", "paper", "library"],
            rows,
        )

    def render_table_ii(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows = []
        for spec in WORKLOAD_SPECS.values():
            rows.append(
                [spec.name, spec.input_label, spec.abbr, spec.category.value]
            )
        return render_table(
            "Table II: GPU applications and inputs",
            ["benchmark", "input", "abbr.", "cat."],
            rows,
            note="C: compute intensive; M: memory bandwidth intensive.",
        )

    def render_table_iii(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows = []
        for n in TABLE_III_GPM_COUNTS:
            config = table_iii_config(n)
            rows.append(
                [
                    f"{n}-GPM",
                    config.total_sms,
                    f"{config.gpm.l1_capacity_bytes // KIB} KB",
                    f"{config.total_l2_bytes // MIB} MB",
                    f"{config.total_dram_bandwidth_gbps:g} GB/s",
                ]
            )
        return render_table(
            "Table III: simulated multi-module GPU configurations",
            ["configuration", "total SMs", "L1/SM", "total L2", "total DRAM BW"],
            rows,
        )

    def render_table_iv(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows = []
        for setting in BandwidthSetting:
            interconnect = table_iv_interconnect(setting)
            ratio = setting.dram_ratio
            ratio_label = (
                "1:2" if ratio == 0.5 else "1:1" if ratio == 1.0 else "2:1"
            )
            rows.append(
                [
                    setting.value,
                    f"{interconnect.per_gpm_bandwidth_gbps:g} GB/s",
                    ratio_label,
                    DEFAULT_DOMAIN_FOR_BW[setting].value,
                ]
            )
        return render_table(
            "Table IV: simulated per-GPM I/O bandwidth",
            ["configuration", "inter-GPM BW", "inter-GPM : DRAM BW", "domain"],
            rows,
        )

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        return "\n\n".join(
            [
                self.render_table_ia(),
                self.render_table_ii(),
                self.render_table_iii(),
                self.render_table_iv(),
            ]
        )


def run(_runner=None) -> ConfigTablesResult:
    """No simulation needed: the tables are derived from live configs."""
    return ConfigTablesResult()
