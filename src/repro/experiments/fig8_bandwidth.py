"""Figure 8: EDPSE as a function of inter-GPM bandwidth (1x/2x/4x).

The paper's conclusion figure for the bandwidth axis: at high GPM counts,
raising inter-module bandwidth 4x (from the on-board 1x setting to the
on-package 4x setting) improves EDPSE by roughly 3x — bandwidth, not link
energy, is the first-order lever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import (
    SCALED_GPM_COUNTS,
    StudyResult,
    run_scaling_study,
    scaling_configs,
)
from repro.gpu.config import BandwidthSetting

PAPER_EDPSE_GAIN_4X_VS_1X_AT_32 = 3.0

BANDWIDTH_ORDER = (
    BandwidthSetting.BW_1X,
    BandwidthSetting.BW_2X,
    BandwidthSetting.BW_4X,
)


@dataclass
class Fig8Result:
    studies: dict[BandwidthSetting, StudyResult]

    def edpse(self, bandwidth: BandwidthSetting, n: int) -> float:
        """Mean EDPSE (%) for one bandwidth setting at n GPMs."""
        return self.studies[bandwidth].mean_edpse(n)

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        counts = self.studies[BANDWIDTH_ORDER[0]].scaled_counts
        top = counts[-1]
        headers = ["config"] + [f"{n}-GPM" for n in counts]
        rows = []
        for bandwidth in BANDWIDTH_ORDER:
            study = self.studies[bandwidth]
            rows.append(
                [bandwidth.value]
                + [study.mean_edpse(n) for n in counts]
            )
        gain = self.edpse(BandwidthSetting.BW_4X, top) / self.edpse(
            BandwidthSetting.BW_1X, top
        )
        return render_table(
            "Figure 8: EDPSE (%) vs interconnect bandwidth",
            headers,
            rows,
            note=(
                f"4x-BW / 1x-BW EDPSE gain at {top}-GPM: {gain:.2f}x"
                " (paper: ~3x from 4x more bandwidth)."
            ),
        )


def run(
    runner: SweepRunner | None = None,
    counts: tuple[int, ...] = SCALED_GPM_COUNTS,
    workload_abbrs: tuple[str, ...] | None = None,
    spec_for=None,
) -> Fig8Result:
    """Execute (or fetch from cache) the Figure 8 study.

    ``counts``/``workload_abbrs``/``spec_for`` reduce the grid for the
    ``repro figures --quick`` tier; the defaults reproduce the paper figure.
    """
    runner = runner or SweepRunner()
    studies = {}
    for bandwidth in BANDWIDTH_ORDER:
        configs = scaling_configs(bandwidth, counts=counts)
        studies[bandwidth] = run_scaling_study(
            runner, configs, label=bandwidth.value,
            **({} if workload_abbrs is None else {"workload_abbrs": workload_abbrs}),
            spec_for=spec_for,
        )
    return Fig8Result(studies=studies)
