"""LLM-serving study: idle governors on prefill, decode, and tenant mixes.

The scaling figures ask how far one HPC kernel stretches across GPMs; an
LLM inference server asks something different: which *governor* should own
the modules while the request mix oscillates between two regimes with
opposite shapes?

* **prefill** — long compute-dense kernels whose CTA grids fill every GPM
  wave evenly.  There is nothing to gate; sprinting buys only a V² premium.
* **decode** — short memory-bound kernels whose token-at-a-time grids leave
  straggler waves (33 CTAs over 8 GPMs x 4 slots: one module runs a second
  wave while seven sit exposed).  Racing the straggler's neighbours to the
  gate wins real sleep cycles.
* **tenant-mix** — two independent clients' prefill and decode kernels
  composed into one submission (:func:`repro.workloads.llm.schedule_spec`
  with ``clients``), the shape a multi-tenant serving node actually sees.

Each grid runs under the four governors the idle study introduced —
``static``, ``utilization`` (downclock-only incumbent), ``race-to-idle``,
and ``deadline-paced`` — on the same 8-GPM study fabric, and is summarized
as EDPSE (Eq. 2) against the 1-GPM static baseline.  The headline the
integration tests pin: race-to-idle beats the utilization governor on the
decode grid (the straggler gap pays for the sprint) while prefill shows no
such win.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.experiments.capping_study import priced_params
from repro.experiments.idle_study import (
    DEADLINE_SLACK,
    STUDY_GPM_COUNT,
    baseline_config,
    governed_config,
    sleep_fraction,
)
from repro.experiments.render import render_table
from repro.experiments.results import RunRecord
from repro.experiments.runner import SweepRunner
from repro.units import mean
from repro.workloads.llm import schedule_spec
from repro.workloads.spec import WorkloadSpec

#: Governor variants in render order (idle-study semantics; ``gate-only``
#: is omitted — a serving node always runs *some* policy).
STUDY_GOVERNORS: tuple[str, ...] = (
    "static",
    "utilization",
    "race-to-idle",
    "deadline-paced",
)

#: The serving grids in render order.
GRID_ORDER: tuple[str, ...] = ("prefill", "decode", "tenant-mix")

#: CTA counts tuned to the 8-GPM study fabric (4 CTA slots per GPM, 32
#: total): 64 fills two even waves (steady); 33 leaves one straggler GPM a
#: second wave while seven idle (bursty).
PREFILL_CTAS = 64
DECODE_CTAS = 33

#: The two serving clients composed into the tenant-mix grid.
TENANTS: tuple[str, ...] = ("svc-a", "svc-b")


def grid_spec(grid: str, quick: bool = False) -> WorkloadSpec:
    """The phase-scheduled workload behind one serving grid.

    ``quick`` halves the kernel counts for the CI smoke tier while keeping
    every grid's wave shape (the CTA counts are what make the shapes).
    """
    if grid == "prefill":
        return schedule_spec(
            (("prefill", PREFILL_CTAS, 2 if quick else 4),),
            abbr="LLMPre8",
        )
    if grid == "decode":
        return schedule_spec(
            (("decode", DECODE_CTAS, 3 if quick else 6),),
            abbr="LLMDec8",
        )
    if grid == "tenant-mix":
        return schedule_spec(
            (
                ("prefill", PREFILL_CTAS // 4, 1),
                ("decode", DECODE_CTAS, 1 if quick else 2),
            ),
            clients=TENANTS,
            abbr="LLMMix8",
        )
    raise ExperimentError(
        f"unknown LLM-study grid {grid!r}; known: {list(GRID_ORDER)}"
    )


@dataclass
class LlmStudyResult:
    """EDPSE, energy, delay, and sleep fraction per (governor, grid)."""

    #: Records keyed ``records[governor][grid]``.
    records: dict[str, dict[str, RunRecord]]
    #: Baseline (1-GPM static) records keyed by grid.
    baseline: dict[str, RunRecord]
    #: EDPSE (%) keyed ``edpse[governor][grid]``; higher is better.
    edpse: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Modeled energy (J), same keying.
    energy_j: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Runtime (s), same keying.
    seconds: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Core-domain sleep fraction, same keying.
    slept: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Derived per-grid deadline (cycles) for the paced governor.
    deadlines: dict[str, float] = field(default_factory=dict)

    def record(self, governor: str, grid: str) -> RunRecord:
        try:
            return self.records[governor][grid]
        except KeyError as exc:
            raise ExperimentError(
                f"no LLM-study record for the {grid!r} grid"
                f" under the {governor!r} governor"
            ) from exc

    def mean_edpse(self, governor: str) -> float:
        """Mean EDPSE over the serving grids for one governor."""
        values = list(self.edpse.get(governor, {}).values())
        if not values:
            raise ExperimentError(
                f"no LLM-study EDPSE for governor {governor!r}"
            )
        return mean(values)

    def render(self) -> str:
        """The per-grid EDPSE surface plus energy/sleep diagnostics."""
        governors = [g for g in STUDY_GOVERNORS if g in self.edpse]
        grids = list(self.baseline)
        header = ["governor"] + list(grids) + ["mean"]
        edpse_rows = [
            [governor]
            + [self.edpse[governor][grid] for grid in grids]
            + [self.mean_edpse(governor)]
            for governor in governors
        ]
        tables = [
            render_table(
                f"LLM study: EDPSE (%) at {STUDY_GPM_COUNT} GPMs",
                header,
                edpse_rows,
                note=(
                    "EDPSE baseline: 1 GPM, anchor clock, no gating."
                    f" prefill = {PREFILL_CTAS} CTAs (even waves);"
                    f" decode = {DECODE_CTAS} CTAs (straggler wave);"
                    " tenant-mix composes both phases for two clients."
                    " Race-to-idle beats the utilization governor on the"
                    " decode grid; prefill shows no such win."
                ),
            )
        ]
        sleep_rows = [
            [governor]
            + [
                f"{self.slept[governor][grid]:.1%}"
                + f" / {self.energy_j[governor][grid]:.3e} J"
                for grid in grids
            ]
            for governor in governors
        ]
        tables.append(
            render_table(
                "Core-domain sleep fraction / modeled energy",
                ["governor"] + list(grids),
                sleep_rows,
                note=(
                    "Sleep fraction counts clock- and power-gated cycles"
                    " across all GPMs; static and utilization rows gate"
                    " nothing by construction."
                ),
            )
        )
        if self.deadlines:
            lines = [
                f"Deadline-paced budget: race-to-idle runtime x"
                f" {DEADLINE_SLACK:g}"
            ]
            for grid, deadline in self.deadlines.items():
                lines.append(f"  {grid}: {deadline:.0f} cycles")
            tables.append("\n".join(lines))
        return "\n\n".join(tables)


def run(
    runner: SweepRunner | None = None,
    governors: tuple[str, ...] = STUDY_GOVERNORS,
    quick: bool = False,
) -> LlmStudyResult:
    """Execute (or fetch from cache) the LLM-serving study.

    ``quick`` halves kernel counts and drops the deadline-paced variant —
    the CI smoke shape.  As in the idle study, the deadline-paced batch is
    resolved second because its deadline derives from the race-to-idle
    runtime (deterministic function of cached results).
    """
    unknown = [g for g in governors if g not in STUDY_GOVERNORS]
    if unknown:
        raise ExperimentError(
            f"unknown LLM-study governors {unknown};"
            f" known: {list(STUDY_GOVERNORS)}"
        )
    if quick:
        governors = tuple(g for g in governors if g != "deadline-paced")
    if "deadline-paced" in governors and "race-to-idle" not in governors:
        raise ExperimentError(
            "the deadline-paced variant derives its deadline from the"
            " race-to-idle runtime; run both or neither"
        )
    runner = runner or SweepRunner()
    specs = {grid: grid_spec(grid, quick=quick) for grid in GRID_ORDER}

    first_batch = [g for g in governors if g != "deadline-paced"]
    configs = {g: governed_config(g) for g in first_batch}
    baseline = baseline_config()
    pairs = [(spec, baseline) for spec in specs.values()]
    pairs += [
        (spec, config)
        for config in configs.values()
        for spec in specs.values()
    ]
    by_key = {
        (record.workload, record.config_label): record
        for record in runner.run(pairs)
    }

    result = LlmStudyResult(
        records={
            g: {
                grid: by_key[(specs[grid].abbr, configs[g].label())]
                for grid in specs
            }
            for g in first_batch
        },
        baseline={
            grid: by_key[(specs[grid].abbr, baseline.label())]
            for grid in specs
        },
    )

    paced_configs: dict[str, object] = {}
    if "deadline-paced" in governors:
        race = result.records["race-to-idle"]
        result.deadlines = {
            grid: race[grid].counters.elapsed_cycles * DEADLINE_SLACK
            for grid in specs
        }
        paced_configs = {
            grid: governed_config(
                "deadline-paced", deadline_cycles=result.deadlines[grid]
            )
            for grid in specs
        }
        paced_records = {
            (record.workload, record.config_label): record
            for record in runner.run(
                [(specs[grid], paced_configs[grid]) for grid in specs]
            )
        }
        result.records["deadline-paced"] = {
            grid: paced_records[
                (specs[grid].abbr, paced_configs[grid].label())
            ]
            for grid in specs
        }

    baseline_edp = {}
    for grid in specs:
        record = result.baseline[grid]
        energy = record.energy(priced_params(baseline, record))
        baseline_edp[grid] = energy.total * record.seconds

    for governor, records in result.records.items():
        result.edpse[governor] = {}
        result.energy_j[governor] = {}
        result.seconds[governor] = {}
        result.slept[governor] = {}
        for grid, record in records.items():
            if governor == "deadline-paced":
                config = paced_configs[grid]
            else:
                config = configs[governor]
            energy = record.energy(priced_params(config, record))
            edp = energy.total * record.seconds
            result.edpse[governor][grid] = (
                baseline_edp[grid] * 100.0 / (STUDY_GPM_COUNT * edp)
            )
            result.energy_j[governor][grid] = energy.total
            result.seconds[governor][grid] = record.seconds
            result.slept[governor][grid] = sleep_fraction(record)
    return result
