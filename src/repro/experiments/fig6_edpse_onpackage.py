"""Figure 6: EDPSE vs GPM count for the baseline on-package (2x-BW) design.

The paper reports: compute-intensive workloads exceed 100 % EDPSE at small
GPM counts; memory-intensive workloads sit far lower; the all-workload mean
peaks at 94 % (2-GPM) and collapses to 36 % at 32-GPM, crossing the 50 %
"parallel efficiency" threshold beyond 16 GPMs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.experiments.results import ScalingRow
from repro.experiments.runner import SweepRunner
from repro.experiments.study import (
    SCALED_GPM_COUNTS,
    StudyResult,
    run_scaling_study,
    scaling_configs,
)
from repro.gpu.config import BandwidthSetting
from repro.isa.kernel import WorkloadCategory

#: Paper-reported values for EXPERIMENTS.md comparisons.
PAPER_MAX_MEAN_EDPSE = 94.0
PAPER_MEAN_EDPSE_32GPM = 36.0
PAPER_THRESHOLD = 50.0


@dataclass
class Fig6Result:
    """EDPSE series by category for each scaled GPM count."""

    study: StudyResult
    rows: list[ScalingRow]

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        table_rows = [
            [
                f"{row.num_gpms}-GPM",
                row.values["compute"],
                row.values["memory"],
                row.values["all"],
            ]
            for row in self.rows
        ]
        return render_table(
            "Figure 6: EDPSE (%) — on-package, 2x-BW ring",
            ["config", "compute-intensive", "memory-intensive", "all"],
            table_rows,
            note=(
                "Paper shape: compute > 100% at small counts; mean 94% at"
                " 2-GPM falling to 36% at 32-GPM; 50% threshold crossed"
                " beyond 16 GPMs."
            ),
        )

    def render_per_workload(self) -> str:
        """Per-workload EDPSE detail behind the category means."""
        counts = [row.num_gpms for row in self.rows]
        headers = ["workload", "cat."] + [f"{n}-GPM" for n in counts]
        table_rows = []
        for abbr, scaling in sorted(self.study.workloads.items()):
            table_rows.append(
                [abbr, scaling.category.value]
                + [scaling.edpse(n) for n in counts]
            )
        return render_table(
            "Figure 6 (detail): per-workload EDPSE (%)",
            headers,
            table_rows,
        )


def run(
    runner: SweepRunner | None = None,
    counts: tuple[int, ...] = SCALED_GPM_COUNTS,
    workload_abbrs: tuple[str, ...] | None = None,
    spec_for=None,
) -> Fig6Result:
    """Execute (or fetch from cache) the Figure 6 study.

    ``counts``/``workload_abbrs``/``spec_for`` reduce the grid for the
    ``repro figures --quick`` tier; the defaults reproduce the paper figure.
    """
    runner = runner or SweepRunner()
    configs = scaling_configs(BandwidthSetting.BW_2X, counts=counts)
    study = run_scaling_study(
        runner, configs, label="on-package/2x-BW",
        **({} if workload_abbrs is None else {"workload_abbrs": workload_abbrs}),
        spec_for=spec_for,
    )
    rows = []
    for n in study.scaled_counts:
        rows.append(
            ScalingRow(
                num_gpms=n,
                label=f"{n}-GPM",
                values={
                    "compute": study.mean_edpse(n, WorkloadCategory.COMPUTE),
                    "memory": study.mean_edpse(n, WorkloadCategory.MEMORY),
                    "all": study.mean_edpse(n),
                },
            )
        )
    return Fig6Result(study=study, rows=rows)
