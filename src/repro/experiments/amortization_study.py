"""Section V-C point study: constant-energy amortization on-package.

A 32-GPM on-package (2x-BW) system where platform overheads (regulators,
cooling, host I/O) can be shared across GPMs: with 50 % of the per-GPM
constant energy amortized, absolute energy drops 22.3 % and EDPSE rises
8.1 % versus no amortization; at a 25 % amortization rate the saving is
10.4 % with a 3.5 % EDPSE gain.  Pure re-pricing of cached simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.energy_model import EnergyParams
from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import run_scaling_study, scaling_configs
from repro.gpu.config import BandwidthSetting

PAPER_ENERGY_SAVING_50 = 22.3   # percent
PAPER_EDPSE_GAIN_50 = 8.1       # percent
PAPER_ENERGY_SAVING_25 = 10.4   # percent
PAPER_EDPSE_GAIN_25 = 3.5       # percent


@dataclass
class AmortizationResult:
    #: amortization rate -> (mean energy ratio vs 1-GPM, mean EDPSE %)
    by_rate: dict[float, tuple[float, float]]

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        base_energy, base_edpse = self.by_rate[0.0]
        rows = []
        for rate in sorted(self.by_rate):
            energy, edpse = self.by_rate[rate]
            rows.append(
                [
                    f"{rate * 100:.0f}%",
                    energy,
                    (1.0 - energy / base_energy) * 100.0,
                    edpse,
                    (edpse - base_edpse) / base_edpse * 100.0,
                ]
            )
        return render_table(
            "Section V-C: constant-energy amortization at 32-GPM (2x-BW on-package)",
            [
                "amortized share",
                "energy (norm.)",
                "energy saved (%)",
                "EDPSE (%)",
                "EDPSE gain (%)",
            ],
            rows,
            note=(
                "Paper: 50% amortization saves 22.3% energy (+8.1% EDPSE);"
                " 25% saves 10.4% (+3.5%)."
            ),
        )


def run(runner: SweepRunner | None = None) -> AmortizationResult:
    """Execute (or fetch from cache) the amortization study."""
    runner = runner or SweepRunner()
    configs = scaling_configs(BandwidthSetting.BW_2X, counts=(32,))
    by_rate: dict[float, tuple[float, float]] = {}
    for rate in (0.0, 0.25, 0.5):
        def params_for(config, _rate=rate):
            params = EnergyParams.for_config(config)
            if config.num_gpms == 1:
                return params
            return params.with_amortization(1.0 - _rate)

        study = run_scaling_study(
            runner, configs, label=f"amortization-{rate}", params_for=params_for
        )
        by_rate[rate] = (study.mean_energy_ratio(32), study.mean_edpse(32))
    return AmortizationResult(by_rate=by_rate)
