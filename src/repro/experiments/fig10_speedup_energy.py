"""Figure 10: absolute speedup and normalized energy across the full sweep.

Decomposes EDPSE back into its factors: for every GPM count and bandwidth
setting, the speedup over 1-GPM and the energy normalized to 1-GPM.  The 1x
series is on-board; the 2x/4x series are on-package *with* constant-energy
amortization — the figure's headline observations:

* at 8+ GPMs, speedup is dominated by inter-GPM bandwidth;
* a 16-GPM/2x-BW design outperforms a 32-GPM/1x-BW one at half the energy;
* 1x -> 4x bandwidth at 32-GPM cuts energy by ~27.4 % on average, and moving
  to the on-package domain (amortization included) raises that to ~45 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import (
    SCALED_GPM_COUNTS,
    StudyResult,
    run_scaling_study,
    scaling_configs,
)
from repro.gpu.config import BandwidthSetting

PAPER_ENERGY_REDUCTION_4X_VS_1X_AT_32 = 27.4  # percent, bandwidth alone
PAPER_ENERGY_REDUCTION_TOTAL_AT_32 = 45.0     # percent, + amortization

BANDWIDTH_ORDER = (
    BandwidthSetting.BW_1X,
    BandwidthSetting.BW_2X,
    BandwidthSetting.BW_4X,
)


@dataclass
class Fig10Result:
    studies: dict[BandwidthSetting, StudyResult]

    def speedup(self, bandwidth: BandwidthSetting, n: int) -> float:
        """Geomean speedup vs 1-GPM for one bandwidth setting at n GPMs."""
        return self.studies[bandwidth].geomean_speedup(n)

    def energy(self, bandwidth: BandwidthSetting, n: int) -> float:
        """Mean normalized energy for one bandwidth setting at n GPMs."""
        return self.studies[bandwidth].mean_energy_ratio(n)

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        counts = self.studies[BANDWIDTH_ORDER[0]].scaled_counts
        top = counts[-1]
        headers = ["config", "speedup", "energy (norm.)"]
        rows = []
        for n in counts:
            for bandwidth in BANDWIDTH_ORDER:
                rows.append(
                    [
                        f"{n}-GPM/{bandwidth.value}",
                        self.speedup(bandwidth, n),
                        self.energy(bandwidth, n),
                    ]
                )
        reduction = (
            1.0
            - self.energy(BandwidthSetting.BW_4X, top)
            / self.energy(BandwidthSetting.BW_1X, top)
        ) * 100.0
        return render_table(
            "Figure 10: speedup and energy vs 1-GPM across bandwidth settings",
            headers,
            rows,
            note=(
                "1x-BW is on-board; 2x/4x are on-package with constant-energy"
                f" amortization. {top}-GPM energy reduction 1x->4x:"
                f" {reduction:.1f}%"
                " (paper: 45% incl. amortization, 27.4% from bandwidth alone)."
            ),
        )


def run(
    runner: SweepRunner | None = None,
    counts: tuple[int, ...] = SCALED_GPM_COUNTS,
    workload_abbrs: tuple[str, ...] | None = None,
    spec_for=None,
) -> Fig10Result:
    """Execute (or fetch from cache) the Figure 10 study.

    ``counts``/``workload_abbrs``/``spec_for`` reduce the grid for the
    ``repro figures --quick`` tier; the defaults reproduce the paper figure.
    """
    runner = runner or SweepRunner()
    studies = {}
    for bandwidth in BANDWIDTH_ORDER:
        configs = scaling_configs(bandwidth, counts=counts)
        studies[bandwidth] = run_scaling_study(
            runner, configs, label=bandwidth.value,
            **({} if workload_abbrs is None else {"workload_abbrs": workload_abbrs}),
            spec_for=spec_for,
        )
    return Fig10Result(studies=studies)
