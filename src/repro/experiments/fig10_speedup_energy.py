"""Figure 10: absolute speedup and normalized energy across the full sweep.

Decomposes EDPSE back into its factors: for every GPM count and bandwidth
setting, the speedup over 1-GPM and the energy normalized to 1-GPM.  The 1x
series is on-board; the 2x/4x series are on-package *with* constant-energy
amortization — the figure's headline observations:

* at 8+ GPMs, speedup is dominated by inter-GPM bandwidth;
* a 16-GPM/2x-BW design outperforms a 32-GPM/1x-BW one at half the energy;
* 1x -> 4x bandwidth at 32-GPM cuts energy by ~27.4 % on average, and moving
  to the on-package domain (amortization included) raises that to ~45 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import (
    SCALED_GPM_COUNTS,
    StudyResult,
    run_scaling_study,
    scaling_configs,
)
from repro.gpu.config import BandwidthSetting

PAPER_ENERGY_REDUCTION_4X_VS_1X_AT_32 = 27.4  # percent, bandwidth alone
PAPER_ENERGY_REDUCTION_TOTAL_AT_32 = 45.0     # percent, + amortization

BANDWIDTH_ORDER = (
    BandwidthSetting.BW_1X,
    BandwidthSetting.BW_2X,
    BandwidthSetting.BW_4X,
)


@dataclass
class Fig10Result:
    studies: dict[BandwidthSetting, StudyResult]

    def speedup(self, bandwidth: BandwidthSetting, n: int) -> float:
        """Geomean speedup vs 1-GPM for one bandwidth setting at n GPMs."""
        return self.studies[bandwidth].geomean_speedup(n)

    def energy(self, bandwidth: BandwidthSetting, n: int) -> float:
        """Mean normalized energy for one bandwidth setting at n GPMs."""
        return self.studies[bandwidth].mean_energy_ratio(n)

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        headers = ["config", "speedup", "energy (norm.)"]
        rows = []
        for n in SCALED_GPM_COUNTS:
            for bandwidth in BANDWIDTH_ORDER:
                rows.append(
                    [
                        f"{n}-GPM/{bandwidth.value}",
                        self.speedup(bandwidth, n),
                        self.energy(bandwidth, n),
                    ]
                )
        reduction = (
            1.0
            - self.energy(BandwidthSetting.BW_4X, 32)
            / self.energy(BandwidthSetting.BW_1X, 32)
        ) * 100.0
        return render_table(
            "Figure 10: speedup and energy vs 1-GPM across bandwidth settings",
            headers,
            rows,
            note=(
                "1x-BW is on-board; 2x/4x are on-package with constant-energy"
                f" amortization. 32-GPM energy reduction 1x->4x: {reduction:.1f}%"
                " (paper: 45% incl. amortization, 27.4% from bandwidth alone)."
            ),
        )


def run(runner: SweepRunner | None = None) -> Fig10Result:
    """Execute (or fetch from cache) the Figure 10 study."""
    runner = runner or SweepRunner()
    studies = {}
    for bandwidth in BANDWIDTH_ORDER:
        configs = scaling_configs(bandwidth)
        studies[bandwidth] = run_scaling_study(
            runner, configs, label=bandwidth.value
        )
    return Fig10Result(studies=studies)
