"""Extension study: power-gating idle GPMs (Section V-E).

The paper's discussion names "intelligent clock-gating and power-gating" as
system-level techniques that must accompany multi-module scaling, because at
high GPM counts SM idle time exposes the constant/idle energy.  This study
re-prices the 32-GPM on-board design (the worst case, 1x-BW ring) under
gating of increasing aggression:

* **stall gating** removes a fraction of the idle-pipeline (EPStall) energy —
  clock gating the issue/datapath while a warp waits on remote memory;
* **constant gating** additionally shaves the same fraction off the
  *incremental* per-GPM constant power (sleep states for whole GPMs while
  they sit starved).

Pure re-pricing: no re-simulation (gating is assumed to add no wake latency —
an optimistic upper bound, stated in the rendered note).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.energy_model import EnergyParams
from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.experiments.study import run_scaling_study, scaling_configs
from repro.gpu.config import BandwidthSetting, IntegrationDomain

EFFECTIVENESS = (0.0, 0.5, 0.9)


@dataclass
class PowerGateResult:
    #: (stall gating, constant gating) -> (mean energy ratio, mean EDPSE %)
    by_setting: dict[tuple[float, bool], tuple[float, float]]

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows = []
        for (effectiveness, gate_constant), (energy, edpse) in sorted(
            self.by_setting.items()
        ):
            label = (
                "none" if effectiveness == 0.0
                else f"{effectiveness:.0%} stall"
                + (" + GPM sleep" if gate_constant else "")
            )
            rows.append([label, energy, edpse])
        return render_table(
            "Extension: power gating at 32-GPM (1x-BW on-board ring)",
            ["gating", "energy (norm.)", "EDPSE (%)"],
            rows,
            note=(
                "Upper bound: gating is priced with zero wake latency."
                " Gating attacks the symptom (exposed idle energy);"
                " bandwidth attacks the cause (the idling itself) —"
                " compare against Figure 8."
            ),
        )


def run(runner: SweepRunner | None = None) -> PowerGateResult:
    """Execute (or fetch from cache) the power-gating study."""
    runner = runner or SweepRunner()
    configs = scaling_configs(
        BandwidthSetting.BW_1X, domain=IntegrationDomain.ON_BOARD, counts=(32,)
    )
    by_setting: dict[tuple[float, bool], tuple[float, float]] = {}
    for effectiveness in EFFECTIVENESS:
        for gate_constant in (False, True):
            if effectiveness == 0.0 and gate_constant:
                continue

            def params_for(config, _eff=effectiveness, _const=gate_constant):
                params = EnergyParams.for_config(config)
                if config.num_gpms == 1:
                    return params
                constants = dataclasses.replace(
                    params.constants,
                    ep_stall_nj=params.constants.ep_stall_nj * (1.0 - _eff),
                )
                growth = params.constant_growth_per_gpm
                if _const:
                    growth = growth * (1.0 - _eff)
                return dataclasses.replace(
                    params,
                    constants=constants,
                    constant_growth_per_gpm=growth,
                )

            study = run_scaling_study(
                runner,
                configs,
                label=f"gating-{effectiveness}-{gate_constant}",
                params_for=params_for,
            )
            by_setting[(effectiveness, gate_constant)] = (
                study.mean_energy_ratio(32),
                study.mean_edpse(32),
            )
    return PowerGateResult(by_setting=by_setting)
