"""Plain-text rendering shared by experiment drivers and benches.

Every bench prints the same rows/series the paper's table or figure reports,
via these helpers, so outputs stay uniform and greppable in CI logs.
"""

from __future__ import annotations

from repro.errors import ExperimentError


def format_cell(value: object, width: int) -> str:
    """Right-justify one cell, formatting floats to two decimals."""
    if isinstance(value, float):
        text = f"{value:.2f}"
    else:
        text = str(value)
    return text.rjust(width)


def render_table(
    title: str,
    headers: list[str],
    rows: list[list[object]],
    note: str = "",
) -> str:
    """Render an ASCII table with a title rule and optional footnote."""
    if not headers:
        raise ExperimentError("a table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [len(header) for header in headers]
    rendered_rows = []
    for row in rows:
        rendered = []
        for index, value in enumerate(row):
            text = f"{value:.2f}" if isinstance(value, float) else str(value)
            widths[index] = max(widths[index], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)

    lines = [title, "=" * len(title)]
    header_line = "  ".join(
        header.rjust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for rendered in rendered_rows:
        lines.append(
            "  ".join(text.rjust(widths[index]) for index, text in enumerate(rendered))
        )
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def render_comparison(
    title: str,
    rows: list[tuple[str, float, float]],
    paper_label: str = "paper",
    ours_label: str = "measured",
) -> str:
    """Render a paper-vs-measured comparison table."""
    table_rows: list[list[object]] = [
        [name, paper, ours] for name, paper, ours in rows
    ]
    return render_table(title, ["metric", paper_label, ours_label], table_rows)
