"""Figures 4a and 4b: GPUJoule validation against silicon.

* **4a** — mixed microbenchmarks (FADD64 + memory levels): the refined model
  lands within a few percent (the paper reports +2.5 %/-6 %); the *naive*
  first-pass model (no stall term, no background subtraction) fails badly,
  which is the motivation for the Figure 3 refinement loop.
* **4b** — the 18 Table II applications, simulated on the K40 platform and
  measured through the sensor substrate.  The paper reports a 9.4 % mean
  absolute error with four >30 % outliers: RSBench/CoMD (memory-subsystem
  energy invisible at near-zero utilization) and BFS/MiniAMR (kernels far
  shorter than the sensor's 15 ms refresh window).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.energy_model import EnergyModel
from repro.core.refinement import CalibratedModel, CalibrationCampaign
from repro.core.validation import ErrorReport
from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.gpu.config import k40_config
from repro.microbench.mixed import fig4a_suite
from repro.power.meter import PowerMeter
from repro.power.sensor import PowerSensor
from repro.power.silicon import SiliconGpu
from repro.workloads.suite import WORKLOAD_SPECS

PAPER_MEAN_ABS_ERROR = 9.4       # percent, Fig. 4b
PAPER_OUTLIERS = ("RSBench", "CoMD", "BFS", "MiniAMR")
PAPER_4A_BAND = (-6.0, 2.5)      # percent, Fig. 4a

#: Repeat factor emulating that real applications iterate their kernel
#: sequence continuously, letting the sensor observe steady state — except
#: for the ``short_kernels`` workloads, whose individual launches stay far
#: below the refresh window no matter how long the app runs.
_STEADY_STATE_SECONDS = 0.05


@dataclass
class Fig4Result:
    fig4a: ErrorReport
    fig4a_naive: ErrorReport
    fig4b: ErrorReport
    model: CalibratedModel

    def render_4a(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows = [
            [name, self.fig4a.cases[name], self.fig4a_naive.cases[name]]
            for name in self.fig4a.cases
        ]
        return render_table(
            "Figure 4a: mixed-microbenchmark model error (%)",
            ["benchmark", "refined model", "naive first pass"],
            rows,
            note=(
                f"Paper band for the refined model: {PAPER_4A_BAND[0]}% to"
                f" +{PAPER_4A_BAND[1]}%."
            ),
        )

    def render_4b(self) -> str:
        """Render this result as the paper-style ASCII table."""
        rows = [[name, error] for name, error in self.fig4b.cases.items()]
        rows.append(["mean |error|", self.fig4b.mean_absolute_error])
        outliers = ", ".join(sorted(self.fig4b.outliers(25.0)))
        return render_table(
            "Figure 4b: per-application model error (%)",
            ["application", "error"],
            rows,
            note=(
                f"Paper: 9.4% mean abs error; >30% outliers RSBench, CoMD,"
                f" BFS, MiniAMR. Outliers here (>25%): {outliers}."
            ),
        )

    def render(self) -> str:
        """Render this result as the paper-style ASCII table."""
        return self.render_4a() + "\n\n" + self.render_4b()


def _measure_application(
    silicon: SiliconGpu,
    sensor: PowerSensor,
    counters,
    seconds: float,
    kernels: int,
    short_kernels: bool,
) -> float:
    """Emulate how a practitioner measures one app's energy via the sensor.

    Long-running apps are sampled in steady state.  Apps made of very short
    kernel launches are sampled per launch: each reading blends the kernel
    with surrounding activity (other short launches and host gaps), which is
    precisely the resolution limit the paper blames for its Fig. 4b outliers.
    """
    true_power = silicon.true_power_w(counters, seconds)
    if not short_kernels:
        reading = sensor.measure_roi(
            roi_duration_s=max(seconds, _STEADY_STATE_SECONDS),
            roi_power_w=true_power,
            surrounding_power_w=silicon.idle_power_w,
        )
        return reading * seconds
    per_kernel = seconds / kernels
    surrounding = 0.5 * (true_power + silicon.idle_power_w)
    reading = sensor.measure_roi(
        roi_duration_s=per_kernel,
        roi_power_w=true_power,
        surrounding_power_w=surrounding,
    )
    return reading * seconds


def run(
    runner: SweepRunner | None = None,
    seed: int = 40,
    workload_abbrs: tuple[str, ...] | None = None,
    spec_for=None,
) -> Fig4Result:
    """Execute the full Figure 4 validation.

    ``workload_abbrs``/``spec_for`` reduce the Fig. 4b application sweep for
    the ``repro figures --quick`` tier; the calibration and Fig. 4a
    microbenchmarks are analytic (no engine time) and always run in full.
    """
    runner = runner or SweepRunner()
    silicon = SiliconGpu(seed=seed)
    meter = PowerMeter(silicon)
    campaign = CalibrationCampaign(meter)
    model = campaign.calibrate(refine=True)
    naive = campaign.calibrate(refine=False)

    suite = fig4a_suite()
    fig4a = campaign.validate(model, suite)
    fig4a_naive = campaign.validate(naive, suite)

    config = k40_config()
    energy_model = EnergyModel(model.to_energy_params())
    sensor = PowerSensor()
    fig4b = ErrorReport()
    if spec_for is None:
        spec_for = WORKLOAD_SPECS.__getitem__
    if workload_abbrs is None:
        workload_abbrs = tuple(WORKLOAD_SPECS)
    specs = [spec_for(abbr) for abbr in workload_abbrs]
    records = runner.run([(spec, config) for spec in specs])
    for spec, record in zip(specs, records):
        counters = record.counters
        measured = _measure_application(
            silicon,
            sensor,
            counters,
            record.seconds,
            kernels=spec.kernels,
            short_kernels=spec.short_kernels,
        )
        modeled = energy_model.total_energy(counters, record.seconds)
        fig4b.add(spec.abbr, modeled, measured)
    return Fig4Result(
        fig4a=fig4a, fig4a_naive=fig4a_naive, fig4b=fig4b, model=model
    )
