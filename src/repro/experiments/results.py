"""Result records shared by the experiment drivers.

A :class:`RunRecord` is the cached essence of one (workload, configuration)
simulation: the counters the energy model needs plus timing.  Records are
JSON-serializable so sweeps persist across processes and bench invocations —
and, crucially, they can be *re-priced* under different energy assumptions
(link pJ/bit, amortization) without re-simulating, which is exactly how the
paper's Section V-C point studies work.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core.edpse import ScalingPoint
from repro.core.energy_model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.gpu.counters import CounterSet
from repro.isa.opcodes import Opcode


def _counters_to_json(raw: dict) -> dict:
    """JSON-ify one ``asdict``-ed CounterSet (opcodes by value), recursively
    covering the per-GPM shards."""
    raw["instructions"] = {
        opcode.value: count for opcode, count in raw["instructions"].items()
    }
    raw["per_gpm"] = [
        _counters_to_json(dict(shard)) for shard in raw.get("per_gpm", ())
    ]
    return raw


def _counters_from_json(raw: dict) -> CounterSet:
    """Rebuild a CounterSet (and its shards) from its JSON form."""
    raw = dict(raw)
    raw["instructions"] = {
        Opcode(name): count for name, count in raw["instructions"].items()
    }
    raw["per_gpm"] = tuple(
        _counters_from_json(shard) for shard in raw.get("per_gpm", ())
    )
    return CounterSet(**raw)


@dataclass
class RunRecord:
    """One simulation outcome, detached from live simulator objects."""

    workload: str
    category: str
    config_label: str
    num_gpms: int
    seconds: float
    counters: CounterSet
    #: Exact MetricsRegistry state (``MetricsRegistry.to_json()``) captured by
    #: the simulating worker; ``None`` for records cached before the
    #: observability layer existed.
    metrics: dict | None = None
    #: Per-domain operating-point residency (``DvfsResidency.to_json()``);
    #: ``None`` for records cached before residency accounting existed.
    residency: dict | None = None

    def energy(self, params: EnergyParams) -> EnergyBreakdown:
        """Price this run under the given energy parameters."""
        return EnergyModel(params).evaluate(self.counters, self.seconds)

    def scaling_point(self, params: EnergyParams) -> ScalingPoint:
        """(n, delay, energy) under the given pricing."""
        return ScalingPoint(
            n=self.num_gpms,
            delay_s=self.seconds,
            energy_j=self.energy(params).total,
        )

    # ------------------------------------------------------------ serialization

    def to_json(self) -> dict:
        """Serialize to plain JSON data (opcodes by value)."""
        data = asdict(self)
        data["counters"] = _counters_to_json(data.pop("counters"))
        return data

    @classmethod
    def from_json(cls, data: dict) -> "RunRecord":
        counters = _counters_from_json(data["counters"])
        return cls(
            workload=data["workload"],
            category=data["category"],
            config_label=data["config_label"],
            num_gpms=data["num_gpms"],
            seconds=data["seconds"],
            counters=counters,
            metrics=data.get("metrics"),
            residency=data.get("residency"),
        )


@dataclass
class ScalingRow:
    """One row of a per-GPM-count summary (a figure's x-axis point)."""

    num_gpms: int
    label: str
    values: dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.values[key]
