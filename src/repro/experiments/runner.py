"""Sweep execution with disk caching and optional process parallelism.

The full reproduction needs ~25 configurations x 14 workloads of simulation.
Each (workload, configuration) pair is deterministic, so results are cached
as JSON under ``.cache/`` keyed by a content hash of the workload spec, the
configuration, and a results-format version.  Benches therefore pay the
simulation cost once; re-pricing studies (link energy, amortization) never
re-simulate at all.

Set ``REPRO_SWEEP_PROCESSES`` to control parallelism (default: half the
cores, capped at 12); ``REPRO_CACHE_DIR`` to relocate the cache.
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import ConfigError, ExperimentError
from repro.experiments.results import RunRecord
from repro.gpu.config import GpuConfig
from repro.gpu.simulator import simulate

# Result identity (fingerprints, spec hash, cache key, RESULTS_VERSION)
# lives in repro.service.keys — the public content-address API shared with
# the sweep service.  The underscore aliases keep this module's historical
# import surface stable for existing callers and tests.
from repro.service.keys import (
    RESULTS_VERSION,
    cache_key as _cache_key,
    config_fingerprint as _config_fingerprint,
    spec_fingerprint as _spec_fingerprint,
    spec_hash as _spec_hash,
)
from repro.trace.manifest import RunManifest
from repro.trace.metrics import MetricsRegistry
from repro.workloads.generator import build_workload
from repro.workloads.spec import WorkloadSpec


def _default_cache_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / ".cache" / "sweeps"


def _default_processes() -> int:
    override = os.environ.get("REPRO_SWEEP_PROCESSES")
    if override:
        return max(1, int(override))
    return max(1, min(12, (os.cpu_count() or 2) - 1))


def _default_progress() -> bool:
    return os.environ.get("REPRO_PROGRESS", "").lower() in {"1", "true", "yes"}


@dataclass(frozen=True)
class SweepSettings:
    """Execution knobs for a sweep."""

    cache_dir: Path = field(default_factory=_default_cache_dir)
    processes: int = field(default_factory=_default_processes)
    use_cache: bool = True
    #: Emit per-simulation progress lines on stderr (or REPRO_PROGRESS=1).
    progress: bool = field(default_factory=_default_progress)
    #: Write a RunManifest beside every freshly simulated cache entry.
    write_manifests: bool = True
    #: Per-GPM shard engines per simulation (see :mod:`repro.sim.sharded`).
    #: Sharded results are bit-identical to single-engine runs, so the shard
    #: count deliberately stays out of the cache key.
    shards: int = 1

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ConfigError(
                f"sweep processes must be >= 1, got {self.processes!r}"
            )
        if self.shards < 1:
            raise ConfigError(
                f"sweep shards must be >= 1, got {self.shards!r}"
            )


def _record_from_result(
    spec: WorkloadSpec, config: GpuConfig, result, metrics: MetricsRegistry
) -> RunRecord:
    return RunRecord(
        workload=spec.abbr,
        category=spec.category.value,
        config_label=config.label(),
        num_gpms=config.num_gpms,
        seconds=result.seconds,
        counters=result.counters,
        metrics=metrics.to_json(),
        residency=(
            None if result.residency is None else result.residency.to_json()
        ),
    )


def run_pair(
    spec: WorkloadSpec, config: GpuConfig, shards: int = 1
) -> RunRecord:
    """Simulate one (workload, configuration) pair (no caching)."""
    workload = build_workload(spec)
    metrics = MetricsRegistry()
    result = simulate(workload, config, metrics=metrics, shards=shards)
    return _record_from_result(spec, config, result, metrics)


@dataclass(frozen=True)
class _PairTiming:
    """Worker-side throughput accounting for one simulated pair."""

    wall_time_s: float
    events_processed: int
    events_per_sec: float


def _timed_run_pair(
    args: tuple[WorkloadSpec, GpuConfig] | tuple[WorkloadSpec, GpuConfig, int]
) -> tuple[RunRecord, _PairTiming]:
    spec, config = args[0], args[1]
    shards = args[2] if len(args) > 2 else 1
    start = time.perf_counter()
    workload = build_workload(spec)
    metrics = MetricsRegistry()
    result = simulate(workload, config, metrics=metrics, shards=shards)
    wall_time_s = time.perf_counter() - start
    timing = _PairTiming(
        wall_time_s=wall_time_s,
        events_processed=result.events_processed,
        events_per_sec=result.events_per_sec,
    )
    return _record_from_result(spec, config, result, metrics), timing


def expand_operating_points(
    configs: list[GpuConfig], operating_points=None, curve=None
) -> list[GpuConfig]:
    """Expand configurations along a chip-wide core operating-point axis.

    Each configuration becomes one variant per point (core domain on
    ``curve``, default the K40 ladder); ``operating_points=None`` returns
    the configurations unchanged.  Shared by :meth:`SweepRunner.run_grid`
    and the service adapter so both spell grid expansion identically.
    """
    if operating_points is None:
        return configs
    from repro.dvfs.config import DvfsConfig
    from repro.dvfs.operating_point import K40_VF_CURVE

    vf_curve = curve if curve is not None else K40_VF_CURVE
    return [
        replace(config, dvfs=DvfsConfig.core_only(point, curve=vf_curve))
        for config in configs
        for point in operating_points
    ]


class SweepRunner:
    """Executes (workload, configuration) grids with caching.

    Besides the records themselves, the runner aggregates every record's
    component metrics into :attr:`metrics` (merging per-worker registries via
    the parallel Welford combine) and writes a provenance manifest beside
    each freshly simulated cache entry.
    """

    def __init__(self, settings: SweepSettings | None = None):
        self.settings = settings or SweepSettings()
        self.cache_hits = 0
        self.cache_misses = 0
        #: Duplicate (spec, config) pairs within one grid that were served
        #: by another pair's simulation instead of dispatching their own.
        self.dedup_skips = 0
        #: Merged component metrics across every record this runner returned.
        self.metrics = MetricsRegistry()
        #: Screening provenance per cache key for the current screened grid
        #: (:meth:`run_grid` with ``screen=``); attached to fresh manifests.
        self._screen_note: dict[str, dict] = {}

    # ------------------------------------------------------------------ cache

    def _cache_path(self, key: str) -> Path:
        return self.settings.cache_dir / f"{key}.json"

    def _load_cached(self, key: str) -> RunRecord | None:
        if not self.settings.use_cache:
            return None
        path = self._cache_path(key)
        if not path.exists():
            return None
        try:
            with path.open() as handle:
                return RunRecord.from_json(json.load(handle))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # A corrupt cache entry must never poison an experiment.
            path.unlink(missing_ok=True)
            return None

    def _store(self, key: str, record: RunRecord) -> None:
        if not self.settings.use_cache:
            return
        self.settings.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(key)
        tmp = path.with_suffix(".tmp")
        with tmp.open("w") as handle:
            json.dump(record.to_json(), handle)
        tmp.replace(path)

    def _store_manifest(
        self,
        key: str,
        spec: WorkloadSpec,
        config: GpuConfig,
        timing: _PairTiming,
        record: RunRecord | None = None,
    ) -> None:
        """Write run provenance beside the cached record (advisory only)."""
        if not (self.settings.use_cache and self.settings.write_manifests):
            return
        per_gpm_energy = None
        if record is not None and record.residency is not None:
            from repro.core.energy_model import EnergyParams
            from repro.dvfs.residency import DvfsResidency

            params = EnergyParams.for_operating_point(
                config, residency=DvfsResidency.from_json(record.residency)
            )
            breakdown = record.energy(params)
            per_gpm_energy = [
                gpm.as_dict() for gpm in breakdown.per_gpm
            ] or None
        manifest = RunManifest(
            cache_key=key,
            workload=spec.abbr,
            config_label=config.label(),
            results_version=RESULTS_VERSION,
            spec_hash=_spec_hash(spec),
            config_fingerprint=_config_fingerprint(config),
            wall_time_s=timing.wall_time_s,
            events_processed=timing.events_processed,
            events_per_sec=timing.events_per_sec,
            dvfs_residency=None if record is None else record.residency,
            per_gpm_energy=per_gpm_energy,
            screen=self._screen_note.get(key),
        )
        manifest.write(RunManifest.path_for(self._cache_path(key)))

    def _report(self, done: int, total: int, label: str, wall_time_s: float) -> None:
        if self.settings.progress:
            print(
                f"[sweep] {done}/{total} simulated: {label}"
                f" ({wall_time_s:.1f}s)",
                file=sys.stderr,
                flush=True,
            )

    # ------------------------------------------------------------------- runs

    def _worker_count(self, missing_count: int) -> int:
        """Sweep processes to launch, budgeting cores for shard engines.

        Each simulation may fork up to ``settings.shards`` shard workers
        (see :mod:`repro.sim.sharded`), so the pool is clamped such that
        ``workers * shards`` never exceeds the machine's core count — a
        sweep larger than the core count gains nothing from extra
        processes, and oversubscribing forked shards actively hurts.
        """
        shards = max(1, self.settings.shards)
        core_budget = max(1, (os.cpu_count() or 1) // shards)
        return min(self.settings.processes, missing_count, core_budget)

    def run(
        self, pairs: list[tuple[WorkloadSpec, GpuConfig]]
    ) -> list[RunRecord]:
        """Run every pair, serving cached results and simulating the rest.

        Results come back in input order.
        """
        if not pairs:
            raise ExperimentError("an empty sweep is almost certainly a bug")
        records: list[RunRecord | None] = []
        missing: list[tuple[int, tuple[WorkloadSpec, GpuConfig]]] = []
        keys: list[str] = []
        # Content-address -> input index of the pair that will simulate it.
        # Duplicate pairs within one grid (same fingerprint, possibly
        # distinct objects) dispatch exactly once; followers copy the
        # leader's record after the pool drains.
        leader_for_key: dict[str, int] = {}
        followers: list[int] = []
        for index, (spec, config) in enumerate(pairs):
            key = _cache_key(spec, config)
            keys.append(key)
            cached = self._load_cached(key)
            if cached is None:
                records.append(None)
                if key in leader_for_key:
                    followers.append(index)
                    self.dedup_skips += 1
                else:
                    leader_for_key[key] = index
                    missing.append((index, (spec, config)))
                    self.cache_misses += 1
            else:
                # The content-hash key guarantees (spec, config) identity;
                # the label is derived presentation data, so re-stamp it
                # rather than replay however the caching run spelled it.
                records.append(
                    replace(
                        cached,
                        workload=spec.abbr,
                        config_label=config.label(),
                    )
                )
                self.cache_hits += 1

        total = len(missing)
        if missing and self.settings.progress:
            print(
                f"[sweep] {len(pairs)} pairs: {self.cache_hits} cached,"
                f" {total} to simulate"
                f" (processes={min(self.settings.processes, max(total, 1))})",
                file=sys.stderr,
                flush=True,
            )
        done = 0

        def _finish(index: int, record: RunRecord, timing: _PairTiming) -> None:
            # Store as each simulation completes, so an interrupted sweep
            # resumes where it stopped.  Records land at their input index
            # and each manifest sits beside its own cache entry, so the
            # nondeterministic as_completed arrival order affects neither
            # result ordering nor on-disk layout.
            nonlocal done
            spec, config = pairs[index]
            records[index] = record
            self._store(keys[index], record)
            self._store_manifest(keys[index], spec, config, timing, record)
            done += 1
            self._report(
                done,
                total,
                f"{spec.abbr} on {config.label()}",
                timing.wall_time_s,
            )

        if missing:
            # Cached pairs were short-circuited above; only genuinely missing
            # work reaches the pool.
            workers = self._worker_count(len(missing))
            shards = max(1, self.settings.shards)
            if workers > 1 and len(missing) > 1:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(
                            _timed_run_pair, (pair[0], pair[1], shards)
                        ): index
                        for index, pair in missing
                    }
                    for future in as_completed(futures):
                        record, timing = future.result()
                        _finish(futures[future], record, timing)
            else:
                for index, pair in missing:
                    record, timing = _timed_run_pair(
                        (pair[0], pair[1], shards)
                    )
                    _finish(index, record, timing)

        for index in followers:
            spec, config = pairs[index]
            leader_record = records[leader_for_key[keys[index]]]
            records[index] = replace(
                leader_record,
                workload=spec.abbr,
                config_label=config.label(),
            )

        results = [record for record in records if record is not None]
        for record in results:
            if record.metrics:
                self.metrics.merge(MetricsRegistry.from_json(record.metrics))
        return results

    def run_grid(
        self,
        specs: list[WorkloadSpec],
        configs: list[GpuConfig],
        operating_points=None,
        curve=None,
        screen: str | None = None,
        top_k: int = 3,
        guard: int = 1,
        metric: str = "edp",
    ) -> dict[str, dict[str, RunRecord]]:
        """Cartesian sweep; returns ``results[config_label][workload]``.

        ``operating_points`` adds a third axis: every configuration is
        expanded to one variant per :class:`~repro.dvfs.OperatingPoint`
        (chip-wide core domain on ``curve``, default the K40 ladder), and the
        grid keys carry the point suffix (``...@core@k40-562`` style).

        ``screen="roofline"`` prunes that third axis: per (configuration,
        workload) the roofline predictor ranks every point by ``metric`` and
        only the top ``top_k + guard`` are simulated.  The simulated subset
        uses the *same* expanded configurations — hence the same cache keys —
        as the exhaustive grid, and each fresh manifest records its screening
        provenance.
        """
        if screen is None:
            configs = expand_operating_points(configs, operating_points, curve)
            pairs = [(spec, config) for config in configs for spec in specs]
        else:
            pairs = self._screened_pairs(
                specs, configs, operating_points, curve, screen,
                top_k=top_k, guard=guard, metric=metric,
            )
        records = self.run(pairs)
        grid: dict[str, dict[str, RunRecord]] = {}
        for record in records:
            grid.setdefault(record.config_label, {})[record.workload] = record
        return grid

    def _screened_pairs(
        self,
        specs: list[WorkloadSpec],
        configs: list[GpuConfig],
        operating_points,
        curve,
        screen: str,
        top_k: int,
        guard: int,
        metric: str,
    ) -> list[tuple[WorkloadSpec, GpuConfig]]:
        """The roofline-selected subset of an operating-point grid."""
        from repro.dvfs.operating_point import K40_VF_CURVE
        from repro.roofline.model import RooflinePredictor
        from repro.roofline.screen import (
            screen_operating_points,
            validate_screen,
        )

        validate_screen(screen)
        if operating_points is None:
            raise ExperimentError(
                "a screened grid needs an operating_points axis to prune"
            )
        vf_curve = curve if curve is not None else K40_VF_CURVE
        predictor = RooflinePredictor()
        self._screen_note = {}
        pairs: list[tuple[WorkloadSpec, GpuConfig]] = []
        for config in configs:
            # The same expansion expand_operating_points applies, so a
            # screened grid's cache keys match the exhaustive grid's.
            expanded = {
                point: pointed
                for point, pointed in zip(
                    operating_points,
                    expand_operating_points(
                        [config], operating_points, vf_curve
                    ),
                )
            }
            for spec in specs:
                chosen, disposition = screen_operating_points(
                    predictor,
                    spec,
                    config,
                    tuple(operating_points),
                    curve=vf_curve,
                    metric=metric,
                    top_k=top_k,
                    guard=guard,
                    expand=lambda point: expanded[point],
                )
                ranked = {
                    entry.label: rank
                    for rank, entry in enumerate(disposition.entries)
                }
                for point in chosen:
                    pointed = expanded[point]
                    pairs.append((spec, pointed))
                    self._screen_note[_cache_key(spec, pointed)] = {
                        "mode": disposition.mode,
                        "metric": metric,
                        "top_k": top_k,
                        "guard": guard,
                        "scored_points": disposition.scored_points,
                        "predicted_rank": ranked[point.label()],
                        **(
                            {}
                            if disposition.fallback is None
                            else {"fallback": disposition.fallback}
                        ),
                    }
        return pairs
