"""Energy-sweet-spot study: EDPSE vs. core frequency across GPM counts.

The paper evaluates every configuration at the fixed K40 boost point; this
study opens the V/f axis the DVFS subsystem provides.  For the Table II
scaling subset on 1-16 GPMs, each workload is simulated at five core
operating points spanning the K40 ladder, priced with the point-scaled
energy model, and summarized two ways:

* the EDPSE surface — mean EDPSE (Eq. 2, against the paper's fixed 1-GPM
  anchor baseline) per (frequency, GPM count), showing how far voltage
  scaling moves the multi-module efficiency story; and
* the per-workload sweet spots — the EDP-optimal core frequency per
  workload and GPM count, separating compute-bound workloads (optimum high
  on the ladder) from memory-bound ones (optimum well below max clock,
  stepping lower as GPM count grows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dvfs.config import ClockDomain
from repro.dvfs.operating_point import K40_VF_CURVE, OperatingPoint
from repro.dvfs.sweetspot import SweetSpot, SweetSpotSearch
from repro.errors import ExperimentError
from repro.experiments.render import render_table
from repro.experiments.runner import SweepRunner
from repro.gpu.config import table_iii_config
from repro.units import mean
from repro.workloads.suite import SCALING_SUBSET, WORKLOAD_SPECS

#: GPM counts the study sweeps (the paper's 1-16 scaling range).
STUDY_GPM_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16)

#: Core operating points studied, spanning the K40 application-clock ladder.
STUDY_FREQUENCIES_HZ: tuple[float, ...] = (
    324.0e6, 480.0e6, 614.0e6, 745.0e6, 875.0e6
)

#: The paper's fixed operating point (baseline for every EDPSE number).
ANCHOR_FREQUENCY_HZ: float = K40_VF_CURVE.anchor.frequency_hz

#: GPM counts swept per non-core clock domain.  The DRAM domain matters at
#: every scale; the interconnect domain only exists with more than one GPM.
DOMAIN_GPM_COUNTS: dict[ClockDomain, tuple[int, ...]] = {
    ClockDomain.DRAM: (1, 4, 16),
    ClockDomain.INTERCONNECT: (4, 16),
}


def study_points() -> tuple[OperatingPoint, ...]:
    """The operating points of the study grid, taken off the K40 curve."""
    return tuple(
        K40_VF_CURVE.point_at(frequency) for frequency in STUDY_FREQUENCIES_HZ
    )


@dataclass
class SweetSpotStudyResult:
    """The EDPSE-vs-frequency surface plus per-workload optima."""

    #: One sweep per (config, workload), keyed ``spots[num_gpms][workload]``.
    spots: dict[int, dict[str, SweetSpot]]
    #: Mean EDPSE (%) across workloads, keyed ``edpse[frequency_hz][num_gpms]``.
    edpse: dict[float, dict[int, float]]
    #: Non-core-domain sweeps, keyed ``domain_spots[domain][num_gpms][workload]``
    #: (``domain`` is the :class:`ClockDomain` value string).
    domain_spots: dict[str, dict[int, dict[str, SweetSpot]]] = field(
        default_factory=dict
    )
    #: Screen mode the study ran under (``None`` = exhaustive).  Screened
    #: runs skip the EDPSE surface: it needs every frequency simulated,
    #: which is exactly what screening avoids.
    screen: str | None = None

    def domain_spot(
        self, domain: ClockDomain, workload: str, num_gpms: int
    ) -> SweetSpot:
        try:
            return self.domain_spots[domain.value][num_gpms][workload]
        except KeyError as exc:
            raise ExperimentError(
                f"no {domain.value} sweet-spot sweep for {workload!r} on"
                f" {num_gpms} GPMs"
            ) from exc

    def spot(self, workload: str, num_gpms: int) -> SweetSpot:
        try:
            return self.spots[num_gpms][workload]
        except KeyError as exc:
            raise ExperimentError(
                f"no sweet-spot sweep for {workload!r} on {num_gpms} GPMs"
            ) from exc

    def optimal_frequency_hz(self, workload: str, num_gpms: int) -> float:
        """The EDP-optimal core frequency of one (workload, GPM count)."""
        return self.spot(workload, num_gpms).point.frequency_hz

    def render(self) -> str:
        """The EDPSE surface and the per-workload sweet-spot table."""
        sections = []
        if self.edpse:
            surface_rows = [
                [f"{frequency / 1e6:.0f} MHz"]
                + [self.edpse[frequency][n] for n in STUDY_GPM_COUNTS]
                for frequency in STUDY_FREQUENCIES_HZ
            ]
            sections.append(render_table(
                "Sweet-spot study: mean EDPSE (%) vs. core frequency",
                ["core clock"] + [f"{n}-GPM" for n in STUDY_GPM_COUNTS],
                surface_rows,
                note=(
                    "EDPSE baseline: 1-GPM at the 745 MHz anchor (the paper's"
                    " fixed configuration).  Values above the anchor row's"
                    " show frequencies that beat the paper's operating point."
                ),
            ))

        spot_rows = []
        for abbr in sorted(self.spots[STUDY_GPM_COUNTS[0]]):
            spec = WORKLOAD_SPECS[abbr]
            spot_rows.append(
                [abbr, spec.category.value]
                + [
                    f"{self.optimal_frequency_hz(abbr, n) / 1e6:.0f}"
                    for n in STUDY_GPM_COUNTS
                ]
            )
        spot_note = (
            "Every workload's EDP optimum sits below the 875 MHz ceiling"
            " (the top step's V² energy outruns its delay win), and"
            " memory-intensive workloads settle lower still — stepping"
            " down as GPM count grows and DRAM/interconnect stalls"
            " lengthen."
        )
        if self.screen is not None:
            simulated = scored = 0
            for by_workload in self.spots.values():
                for spot in by_workload.values():
                    if spot.disposition is not None:
                        simulated += spot.disposition.simulated_points
                        scored += spot.disposition.scored_points
            spot_note = (
                f"Screened sweep ({self.screen}): each curve's optimum was"
                f" picked from the analytically ranked top points only —"
                f" {simulated} of {scored} grid points simulated.  The EDPSE"
                " surface is omitted (it needs the full grid)."
            )
        spots = render_table(
            "Per-workload EDP-optimal core frequency (MHz)",
            ["workload", "cat."] + [f"{n}-GPM" for n in STUDY_GPM_COUNTS],
            spot_rows,
            note=spot_note,
        )
        sections.append(spots)

        for domain in (ClockDomain.DRAM, ClockDomain.INTERCONNECT):
            by_count = self.domain_spots.get(domain.value)
            if not by_count:
                continue
            counts = sorted(by_count)
            domain_rows = []
            for abbr in sorted(by_count[counts[0]]):
                spec = WORKLOAD_SPECS[abbr]
                domain_rows.append(
                    [abbr, spec.category.value]
                    + [
                        f"{by_count[n][abbr].point.frequency_hz / 1e6:.0f}"
                        for n in counts
                    ]
                )
            sections.append(
                render_table(
                    f"Per-workload EDP-optimal {domain.value} frequency (MHz)",
                    ["workload", "cat."] + [f"{n}-GPM" for n in counts],
                    domain_rows,
                    note=(
                        f"The {domain.value} clock domain swept with the core"
                        " held at the 745 MHz anchor; optima below the anchor"
                        " mark workloads whose stalls hide the slower domain."
                    ),
                )
            )
        return "\n\n".join(sections)


def run(
    runner: SweepRunner | None = None,
    domains: bool = True,
    screen: str | None = None,
    top_k: int = 3,
    guard: int = 1,
) -> SweetSpotStudyResult:
    """Execute (or fetch from cache) the sweet-spot study.

    ``domains=True`` additionally sweeps the DRAM and interconnect clock
    domains over :data:`DOMAIN_GPM_COUNTS` with the core held at the anchor;
    ``False`` restricts the study to the original core-frequency surface.

    ``screen="roofline"`` simulates only the analytically ranked top
    ``top_k + guard`` points per curve (same cache keys as the exhaustive
    sweep, see :mod:`repro.roofline.screen`); the EDPSE surface — which
    needs every frequency — is skipped in that mode.
    """
    runner = runner or SweepRunner()
    specs = [WORKLOAD_SPECS[abbr] for abbr in SCALING_SUBSET]
    configs = [table_iii_config(n) for n in STUDY_GPM_COUNTS]
    search = SweetSpotSearch(
        runner, metric="edp", points=study_points(),
        screen=screen, top_k=top_k, guard=guard,
    )
    all_spots = search.search(specs, configs)

    spots: dict[int, dict[str, SweetSpot]] = {}
    for spot in all_spots:
        spots.setdefault(spot.num_gpms, {})[spot.workload] = spot

    edpse: dict[float, dict[int, float]] = {}
    if screen is None:
        anchor = spots[1]
        for frequency in STUDY_FREQUENCIES_HZ:
            edpse[frequency] = {}
            for n in STUDY_GPM_COUNTS:
                ratios = []
                for abbr, spot in spots[n].items():
                    edp_baseline = (
                        anchor[abbr].sample_at(ANCHOR_FREQUENCY_HZ).edp
                    )
                    edp_here = spot.sample_at(frequency).edp
                    ratios.append(edp_baseline * 100.0 / (n * edp_here))
                edpse[frequency][n] = mean(ratios)

    domain_spots: dict[str, dict[int, dict[str, SweetSpot]]] = {}
    if domains:
        for domain, counts in DOMAIN_GPM_COUNTS.items():
            domain_search = SweetSpotSearch(
                runner, metric="edp", points=study_points(), domain=domain,
                screen=screen, top_k=top_k, guard=guard,
            )
            found = domain_search.search(
                specs, [table_iii_config(n) for n in counts]
            )
            by_count: dict[int, dict[str, SweetSpot]] = {}
            for spot in found:
                by_count.setdefault(spot.num_gpms, {})[spot.workload] = spot
            domain_spots[domain.value] = by_count
    return SweetSpotStudyResult(
        spots=spots, edpse=edpse, domain_spots=domain_spots, screen=screen
    )
