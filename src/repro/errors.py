"""Exception hierarchy for :mod:`repro`.

All package-specific failures derive from :class:`ReproError`, so callers can
catch one type at an application boundary while tests assert on precise
subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The performance simulator reached an inconsistent state."""


class TraceError(ReproError):
    """A workload trace or warp program is malformed."""


class CalibrationError(ReproError):
    """EPI/EPT calibration could not be completed from the measurements."""


class ValidationError(ReproError):
    """Model-vs-measurement validation was asked to do something impossible."""


class ExperimentError(ReproError):
    """An experiment driver was configured with unknown settings."""


class ServiceError(ReproError):
    """The sweep service rejected, evicted, or failed a submitted job.

    ``kind`` is a stable machine-readable reason (``invalid-config``,
    ``rate-limited``, ``queue-full``, ``evicted``, ``execution-failed``,
    ``unavailable``) that the HTTP layer maps onto status codes.
    """

    def __init__(self, message: str, kind: str = "unavailable") -> None:
        super().__init__(message)
        self.kind = kind
