"""Scaling-efficiency metrics: parallel efficiency, EDP, EDPSE, ED^iPSE.

The paper's metric definitions (Section III):

* ``ParallelEfficiency = t_1 * 100 / (N * t_N)`` — Eq. 1
* ``EDPSE = EDP_1 * 100 / (N * EDP_N)`` — Eq. 2
* ``ED^iPSE = ED^iP_1 * 100 / (N^i * ED^iP_N)`` — Eq. 3

All three return percentages; 100 % means the scaled design realizes ideal
linear scaling (N-fold delay reduction at constant energy), and values above
100 % are possible under super-linear speedup or absolute energy reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValidationError(f"{name} must be positive, got {value!r}")


def parallel_efficiency(t1: float, tn: float, n: int) -> float:
    """Fraction (in %) of ideal speedup realized by an N-processor run (Eq. 1)."""
    _check_positive(t1=t1, tn=tn, n=n)
    return t1 * 100.0 / (n * tn)


def edp(energy_j: float, delay_s: float, delay_exponent: int = 1) -> float:
    """Energy-delay product ``E * D^i`` (i=1 for EDP, 2 for ED2P)."""
    _check_positive(energy_j=energy_j, delay_s=delay_s)
    if delay_exponent < 1:
        raise ValidationError(
            f"delay_exponent must be >= 1, got {delay_exponent!r}"
        )
    return energy_j * delay_s**delay_exponent


def edpse(edp1: float, edpn: float, n: int) -> float:
    """EDP Scaling Efficiency in percent (Eq. 2)."""
    _check_positive(edp1=edp1, edpn=edpn, n=n)
    return edp1 * 100.0 / (n * edpn)


def edipse(edip1: float, edipn: float, n: int, i: int) -> float:
    """Generalized ED^iP Scaling Efficiency in percent (Eq. 3).

    ``i`` is the delay exponent: ``i=1`` recovers EDPSE; ``i=2`` weights
    performance quadratically (ED2P-based efficiency).
    """
    _check_positive(edip1=edip1, edipn=edipn, n=n)
    if i < 1:
        raise ValidationError(f"delay exponent i must be >= 1, got {i!r}")
    return edip1 * 100.0 / (n**i * edipn)


@dataclass(frozen=True)
class ScalingPoint:
    """One (design, workload) observation: resources, delay, and energy."""

    n: int
    delay_s: float
    energy_j: float

    def __post_init__(self) -> None:
        _check_positive(n=self.n, delay_s=self.delay_s, energy_j=self.energy_j)

    def edp(self, delay_exponent: int = 1) -> float:
        """This point's ED^iP value (i = delay_exponent)."""
        return edp(self.energy_j, self.delay_s, delay_exponent)

    def speedup_over(self, baseline: "ScalingPoint") -> float:
        """Speedup of this point relative to ``baseline``."""
        return baseline.delay_s / self.delay_s

    def energy_ratio_over(self, baseline: "ScalingPoint") -> float:
        """Energy of this point normalized to ``baseline``."""
        return self.energy_j / baseline.energy_j

    def edpse_over(self, baseline: "ScalingPoint", i: int = 1) -> float:
        """ED^iPSE of this point w.r.t. a baseline (usually the 1-GPM run).

        The resource ratio N in Eq. 2/3 is ``self.n / baseline.n``.
        """
        if self.n % baseline.n != 0:
            raise ValidationError(
                f"scaled resources ({self.n}) must be a multiple of the"
                f" baseline ({baseline.n})"
            )
        ratio = self.n // baseline.n
        return edipse(baseline.edp(i), self.edp(i), ratio, i)

    def parallel_efficiency_over(self, baseline: "ScalingPoint") -> float:
        """Eq. 1 relative to a baseline point."""
        if self.n % baseline.n != 0:
            raise ValidationError(
                f"scaled resources ({self.n}) must be a multiple of the"
                f" baseline ({baseline.n})"
            )
        ratio = self.n // baseline.n
        return parallel_efficiency(baseline.delay_s, self.delay_s, ratio)
