"""The Figure 3 calibration campaign: measure, validate, refine.

The campaign reproduces the paper's methodology end to end against the
synthetic silicon:

1. **Compute EPIs** — every Table Ib opcode runs as a full-occupancy
   single-instruction loop; Eq. 5 over the sensor reading gives its EPI.
2. **Stall energy** — a deliberately *low-occupancy* loop exposes the idle
   pipeline: power above the pure-compute prediction, divided by idle
   SM-cycles, calibrates ``EPStall``.  This is the refinement step: the
   initial model (no stall term) validates badly on anything that is not
   issue-saturated, which is how the coverage gap is "identified" (Fig. 3's
   error-analysis box).
3. **EPT ladder** — pointer chases calibrate the hierarchy fastest-first;
   each level subtracts the already-calibrated backgrounds (loop arithmetic,
   faster-level movement, stall energy) so only the new boundary's movement
   energy remains (Eq. 5's numerator, isolated).
4. **Validation** — mixed microbenchmarks and applications compare modeled
   vs measured energy (Figures 4a/4b).

Passing ``refine=False`` skips steps 2-3's subtractions and reproduces the
naive first-pass model, letting tests demonstrate *why* the refinement loop
exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.calibration import estimate_epi
from repro.core.energy_model import EnergyModel, EnergyParams
from repro.core.epi_tables import EnergyConstants, TransactionKind
from repro.core.validation import ErrorReport
from repro.errors import CalibrationError
from repro.gpu.counters import CounterSet
from repro.isa.opcodes import TABLE_1B_COMPUTE_OPCODES, Opcode
from repro.microbench.compute import ComputeMicrobenchmark
from repro.microbench.harness import Microbenchmark, MicrobenchmarkHarness
from repro.microbench.memory import (
    MemoryLevel,
    MemoryMicrobenchmark,
    chase_latency_cycles,
    steps_for_steady_state,
)
from repro.power.meter import PowerMeter
from repro.units import WARP_SIZE, nj

#: Pointer-chase calibration order: fastest level first, so each level can
#: subtract the movement energy of the levels below it.
_EPT_LADDER: tuple[tuple[MemoryLevel, TransactionKind], ...] = (
    (MemoryLevel.SHARED, TransactionKind.SHARED_TO_RF),
    (MemoryLevel.L1, TransactionKind.L1_TO_RF),
    (MemoryLevel.L2, TransactionKind.L2_TO_L1),
    (MemoryLevel.DRAM, TransactionKind.DRAM_TO_L2),
)


@dataclass
class CalibratedModel:
    """The output of one calibration campaign."""

    epi_nj: dict[Opcode, float] = field(default_factory=dict)
    ept_nj: dict[TransactionKind, float] = field(default_factory=dict)
    ep_stall_nj: float = 0.0
    idle_power_w: float = 0.0
    refined: bool = True

    def to_energy_params(self) -> EnergyParams:
        """Build Eq. 4 pricing parameters from the calibrated values.

        Constant power is the measured idle floor; the DRAM EPT is the
        calibrated (GDDR5) value — this parameterization validates against
        the same silicon the campaign measured.
        """
        missing = [op for op in TABLE_1B_COMPUTE_OPCODES if op not in self.epi_nj]
        if missing:
            raise CalibrationError(f"model is missing EPIs for {missing}")
        return EnergyParams(
            epi_nj=dict(self.epi_nj),
            shared_rf_ept_j=nj(self.ept_nj[TransactionKind.SHARED_TO_RF]),
            l1_rf_ept_j=nj(self.ept_nj[TransactionKind.L1_TO_RF]),
            l2_l1_ept_j=nj(self.ept_nj[TransactionKind.L2_TO_L1]),
            dram_l2_ept_j=nj(self.ept_nj[TransactionKind.DRAM_TO_L2]),
            constants=EnergyConstants(
                const_power_w=self.idle_power_w,
                ep_stall_nj=self.ep_stall_nj,
            ),
            num_gpms=1,
        )


class CalibrationCampaign:
    """Runs the full Figure 3 flow against one silicon instance."""

    def __init__(
        self,
        meter: PowerMeter,
        num_sms: int = 15,
        iterations_per_warp: int = 3_000_000,
        chase_steps_per_warp: int | None = None,
    ):
        """``iterations_per_warp`` defaults to ~30+ ms of steady-state loop so
        the 15 ms sensor observes true power; ``chase_steps_per_warp=None``
        sizes each pointer chase per level for the same reason."""
        self.meter = meter
        self.harness = MicrobenchmarkHarness(meter)
        self.num_sms = num_sms
        self.iterations_per_warp = iterations_per_warp
        self.chase_steps_per_warp = chase_steps_per_warp

    # --------------------------------------------------------------- step 1

    def calibrate_epis(self) -> dict[Opcode, float]:
        """Full-occupancy loops over every Table Ib opcode -> EPI in nJ."""
        epis: dict[Opcode, float] = {}
        for opcode in TABLE_1B_COMPUTE_OPCODES:
            bench = ComputeMicrobenchmark(
                opcode=opcode,
                iterations_per_warp=self.iterations_per_warp,
                num_sms=self.num_sms,
            )
            thread_instructions = bench.total_warp_instructions * WARP_SIZE
            _counters, run = self.harness.measured_run(bench, thread_instructions)
            epis[opcode] = estimate_epi(run) / 1e-9
        return epis

    # --------------------------------------------------------------- step 2

    def calibrate_stall_energy(self, epi_nj: dict[Opcode, float]) -> float:
        """Low-occupancy loop isolates the idle-pipeline energy per SM-cycle.

        One warp per SM cannot saturate the issue stage; the energy the
        sensor reports above the calibrated compute prediction, divided by
        the idle SM-cycles, is EPStall.
        """
        # Low occupancy stretches elapsed time ~8x over busy time; quadruple
        # the iteration count so the run still spans multiple sensor windows.
        bench = ComputeMicrobenchmark(
            opcode=Opcode.FMUL32,
            iterations_per_warp=self.iterations_per_warp * 4,
            num_sms=self.num_sms,
            warps_per_sm=1,
        )
        counters, measurement = self.harness.run(bench)
        compute_j = nj(
            epi_nj[Opcode.FMUL32]
            * counters.instructions[Opcode.FMUL32]
            * WARP_SIZE
        )
        residual_j = measurement.dynamic_energy_j - compute_j
        if residual_j <= 0 or counters.sm_idle_cycles <= 0:
            raise CalibrationError(
                "low-occupancy run exposed no stall energy; occupancy knob or"
                " sensor model is broken"
            )
        return residual_j / counters.sm_idle_cycles / 1e-9

    # --------------------------------------------------------------- step 3

    def _background_energy_j(
        self,
        counters: CounterSet,
        epi_nj: dict[Opcode, float],
        ept_nj: dict[TransactionKind, float],
        ep_stall_nj: float,
        exclude: TransactionKind,
    ) -> float:
        """Everything in a chase measurement that is NOT the target movement."""
        background = 0.0
        for opcode, count in counters.instructions.items():
            background += nj(epi_nj[opcode] * count * WARP_SIZE)
        level_counts = {
            TransactionKind.SHARED_TO_RF: counters.shared_rf_txns,
            TransactionKind.L1_TO_RF: counters.l1_rf_txns,
            TransactionKind.L2_TO_L1: counters.l2_l1_txns,
            TransactionKind.DRAM_TO_L2: counters.dram_l2_txns,
        }
        for kind, count in level_counts.items():
            if kind is not exclude and kind in ept_nj:
                background += nj(ept_nj[kind] * count)
        background += nj(ep_stall_nj * counters.sm_idle_cycles)
        return background

    def calibrate_epts(
        self,
        epi_nj: dict[Opcode, float],
        ep_stall_nj: float,
        refine: bool = True,
    ) -> dict[TransactionKind, float]:
        """Pointer-chase ladder -> EPT (nJ/transaction) per hierarchy boundary."""
        ept_nj: dict[TransactionKind, float] = {}
        for level, kind in _EPT_LADDER:
            # Full occupancy: the paper's chases fill every SM so the target
            # level runs at (or near) its bandwidth limit and rate-dependent
            # overheads amortize into the per-transaction estimate.
            bench = MemoryMicrobenchmark(
                level=level,
                steps_per_warp=1,
                num_sms=self.num_sms,
                warps_per_sm=32,
            )
            steps = self.chase_steps_per_warp
            if steps is None:
                # Overlapped chains shorten the run; size for the effective
                # per-step latency so the sensor still sees steady state.
                steps = steps_for_steady_state(
                    chase_latency_cycles(level) / bench.independent_chains
                )
            bench = replace(bench, steps_per_warp=steps)
            counters, measurement = self.harness.run(bench)
            level_counts = {
                TransactionKind.SHARED_TO_RF: counters.shared_rf_txns,
                TransactionKind.L1_TO_RF: counters.l1_rf_txns,
                TransactionKind.L2_TO_L1: counters.l2_l1_txns,
                TransactionKind.DRAM_TO_L2: counters.dram_l2_txns,
            }
            transactions = level_counts[kind]
            run_energy = measurement.dynamic_energy_j
            if refine:
                background = self._background_energy_j(
                    counters, epi_nj, ept_nj, ep_stall_nj, exclude=kind
                )
            else:
                background = 0.0
            net = run_energy - background
            if net <= 0:
                raise CalibrationError(
                    f"chase at {level.value} left no energy for the target"
                    " boundary after background subtraction"
                )
            ept_nj[kind] = net / transactions / 1e-9
        return ept_nj

    # --------------------------------------------------------------- driver

    def calibrate(self, refine: bool = True) -> CalibratedModel:
        """Run the full campaign; ``refine=False`` reproduces the naive pass."""
        epi_nj = self.calibrate_epis()
        ep_stall_nj = self.calibrate_stall_energy(epi_nj) if refine else 0.0
        ept_nj = self.calibrate_epts(epi_nj, ep_stall_nj, refine=refine)
        return CalibratedModel(
            epi_nj=epi_nj,
            ept_nj=ept_nj,
            ep_stall_nj=ep_stall_nj,
            idle_power_w=self.meter.silicon.idle_power_w,
            refined=refine,
        )

    # --------------------------------------------------------------- step 4

    def validate(
        self, model: CalibratedModel, benchmarks: list[Microbenchmark]
    ) -> ErrorReport:
        """Modeled-vs-measured energy over arbitrary benchmarks (Fig. 4a)."""
        energy_model = EnergyModel(model.to_energy_params())
        report = ErrorReport()
        for benchmark in benchmarks:
            counters, exec_time_s = benchmark.execute()
            measurement = self.meter.measure(counters, exec_time_s)
            modeled = energy_model.total_energy(counters, exec_time_s)
            report.add(benchmark.name, modeled, measurement.energy_j)
        return report
