"""EPI/EPT calibration from power measurements (Eq. 5).

Given a microbenchmark run measured on (real or simulated) silicon, the
energy per instruction is::

    EPI = (P_active - P_idle) * ExecTime / NumInstructions

and the energy per transaction is computed the same way over the transaction
count.  These functions are the analytical heart of the Figure 3 flow; the
measurement mechanics (steady-state sampling through a 15 ms sensor) live in
:mod:`repro.power.meter`, and the end-to-end loop in
:mod:`repro.core.refinement`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError


@dataclass(frozen=True)
class MeasuredRun:
    """One steady-state microbenchmark measurement.

    Attributes:
        power_active_w: mean power while the benchmark's region of interest
            executes.
        power_idle_w: baseline power of the idle GPU.
        exec_time_s: region-of-interest duration.
        event_count: dynamic instructions (for EPI) or transactions (for EPT)
            retired in the region of interest.
    """

    power_active_w: float
    power_idle_w: float
    exec_time_s: float
    event_count: int

    def __post_init__(self) -> None:
        if self.exec_time_s <= 0:
            raise CalibrationError("exec_time_s must be positive")
        if self.event_count <= 0:
            raise CalibrationError("event_count must be positive")
        if self.power_active_w < 0 or self.power_idle_w < 0:
            raise CalibrationError("power readings must be non-negative")

    @property
    def dynamic_power_w(self) -> float:
        """Active-minus-idle power attributable to the stressed events."""
        return self.power_active_w - self.power_idle_w

    @property
    def dynamic_energy_j(self) -> float:
        return self.dynamic_power_w * self.exec_time_s


def estimate_epi(run: MeasuredRun) -> float:
    """Energy per instruction in joules (Eq. 5).

    Raises :class:`CalibrationError` when active power does not exceed idle —
    the benchmark failed to stress the instruction (e.g. it was optimized
    away), and a zero/negative EPI must not silently enter the table.
    """
    if run.dynamic_power_w <= 0:
        raise CalibrationError(
            "active power does not exceed idle power; the microbenchmark did"
            " not exercise the instruction"
        )
    return run.dynamic_energy_j / run.event_count


def estimate_ept(run: MeasuredRun, background_energy_j: float = 0.0) -> float:
    """Energy per memory transaction in joules.

    Memory microbenchmarks necessarily execute address-generation arithmetic
    around each access; callers subtract that known compute energy via
    ``background_energy_j`` so the estimate isolates pure data movement —
    this is the coverage-refinement step of the Figure 3 loop.
    """
    if background_energy_j < 0:
        raise CalibrationError("background energy must be non-negative")
    net = run.dynamic_energy_j - background_energy_j
    if net <= 0:
        raise CalibrationError(
            "measured energy does not exceed the compute background; the"
            " pointer chase is not stressing the intended level"
        )
    return net / run.event_count


def epi_from_repeats(runs: list[MeasuredRun]) -> float:
    """Average EPI across repeated measurements of the same microbenchmark.

    Sensor quantization makes single measurements noisy; the harness repeats
    each benchmark and averages, mirroring how the paper averages across
    thousands of iterations and all SMs.
    """
    if not runs:
        raise CalibrationError("need at least one measurement")
    return sum(estimate_epi(run) for run in runs) / len(runs)
