"""The measured energy constants of Table Ib and Section V-A2.

Two families of constants live here:

* **EPI** — energy per (thread-level) instruction for each PTX compute opcode,
  in nanojoules, exactly as measured on the Tesla K40 (Table Ib).
* **EPT** — energy per memory transaction at each hierarchy boundary.  The
  transaction granularity is implied by the table itself: dividing the EPT by
  the per-bit figure gives 1024 bits (a 128 B line) for shared->RF and
  L1->RF, and 256 bits (a 32 B sector) for L2->L1 and DRAM->L2.

The scaling study swaps the K40's GDDR5 DRAM energy for the published HBM
figure (21.1 pJ/bit) and adds link signaling costs: 0.54 pJ/bit on-package,
10 pJ/bit on-board, plus 10 pJ/bit through a switch fabric (Sections V-A2 and
V-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.opcodes import Opcode
from repro.units import CACHE_LINE_BYTES, SECTOR_BYTES, nj, pj_per_bit_to_joules_per_byte


class TransactionKind(enum.Enum):
    """Memory-hierarchy boundaries with distinct EPT values."""

    SHARED_TO_RF = "shared_to_rf"
    L1_TO_RF = "l1_to_rf"
    L2_TO_L1 = "l2_to_l1"
    DRAM_TO_L2 = "dram_to_l2"


#: Table Ib compute-instruction EPIs, nanojoules per thread-level instruction.
EPI_TABLE_NJ: dict[Opcode, float] = {
    Opcode.FADD32: 0.06,
    Opcode.FMUL32: 0.05,
    Opcode.FFMA32: 0.05,
    Opcode.IADD32: 0.07,
    Opcode.ISUB32: 0.07,
    Opcode.AND32: 0.06,
    Opcode.OR32: 0.06,
    Opcode.XOR32: 0.06,
    Opcode.SIN32: 0.10,
    Opcode.COS32: 0.10,
    Opcode.IMUL32: 0.13,
    Opcode.IMAD32: 0.15,
    Opcode.FADD64: 0.15,
    Opcode.FMUL64: 0.13,
    Opcode.FFMA64: 0.16,
    Opcode.SQRT32: 0.02,
    Opcode.LOG232: 0.03,
    Opcode.EXP232: 0.08,
    Opcode.RCP32: 0.31,
}

#: Table Ib data-movement rows: (EPT in nJ, pJ/bit, bytes per transaction).
EPT_TABLE: dict[TransactionKind, tuple[float, float, int]] = {
    TransactionKind.SHARED_TO_RF: (5.45, 5.32, CACHE_LINE_BYTES),
    TransactionKind.L1_TO_RF: (5.99, 5.85, CACHE_LINE_BYTES),
    TransactionKind.L2_TO_L1: (3.96, 15.48, SECTOR_BYTES),
    TransactionKind.DRAM_TO_L2: (7.82, 30.55, SECTOR_BYTES),
}

#: HBM DRAM access energy used by the scaling study (Section V-A2) [39].
HBM_PJ_PER_BIT: float = 21.1

#: GDDR5 DRAM access energy as measured on the K40 (Table Ib).
GDDR5_PJ_PER_BIT: float = 30.55

#: On-package ground-referenced signaling energy [23].
ON_PACKAGE_LINK_PJ_PER_BIT: float = 0.54

#: On-board SerDes signaling energy estimate [5].
ON_BOARD_LINK_PJ_PER_BIT: float = 10.0

#: Additional energy for payload moving through a switch chip (Section V-C).
SWITCH_HOP_PJ_PER_BIT: float = 10.0


def ept_joules(kind: TransactionKind) -> float:
    """Energy in joules for one transaction at the given boundary."""
    ept_nj, _pj_bit, _nbytes = EPT_TABLE[kind]
    return nj(ept_nj)


def hbm_ept_joules() -> float:
    """Energy in joules for one 32 B DRAM<->L2 sector transaction with HBM."""
    return pj_per_bit_to_joules_per_byte(HBM_PJ_PER_BIT) * SECTOR_BYTES


@dataclass(frozen=True)
class EnergyConstants:
    """Platform constants that close Eq. 4.

    Attributes:
        const_power_w: per-GPM baseline constant power — voltage regulators,
            power delivery, host I/O, and static leakage (the
            ``Const_Power`` term of Eq. 4).
        ep_stall_nj: energy per SM-cycle of an idle (stalled) SM pipeline —
            the ``EPStall`` term.
        warp_size: thread-level instructions per warp-level counter event.
    """

    const_power_w: float = 52.0
    ep_stall_nj: float = 2.0
    warp_size: int = 32

    def __post_init__(self) -> None:
        if self.const_power_w < 0:
            raise ValueError("const_power_w must be non-negative")
        if self.ep_stall_nj < 0:
            raise ValueError("ep_stall_nj must be non-negative")
        if self.warp_size <= 0:
            raise ValueError("warp_size must be positive")


#: Constants used throughout the scaling study unless overridden.
DEFAULT_CONSTANTS = EnergyConstants()
