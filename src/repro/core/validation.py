"""Modeled-vs-measured error statistics for GPUJoule validation.

Figure 4 reports signed relative errors per benchmark plus a suite-level
summary.  The paper quotes a "9.4 % mean absolute error" across the 18
applications and a geomean-error summary bar; both are computed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.units import geomean


def relative_error_percent(modeled_j: float, measured_j: float) -> float:
    """Signed relative error of the model vs the measurement, in percent.

    Positive means the model over-estimates.
    """
    if measured_j <= 0:
        raise ValidationError(f"measured energy must be positive, got {measured_j!r}")
    return (modeled_j - measured_j) / measured_j * 100.0


@dataclass
class ErrorReport:
    """Collects per-case errors and derives suite-level summaries."""

    cases: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, modeled_j: float, measured_j: float) -> float:
        """Record one case; returns its signed error in percent."""
        if name in self.cases:
            raise ValidationError(f"duplicate validation case {name!r}")
        error = relative_error_percent(modeled_j, measured_j)
        self.cases[name] = error
        return error

    @property
    def mean_absolute_error(self) -> float:
        """Mean of |error| across cases, in percent."""
        if not self.cases:
            raise ValidationError("no validation cases recorded")
        return sum(abs(error) for error in self.cases.values()) / len(self.cases)

    @property
    def geomean_absolute_error(self) -> float:
        """Geometric mean of |error| across cases, in percent.

        Cases with zero error would annihilate a geometric mean; they are
        floored at 0.1 % (a tenth of a percent) — far below the sensor's own
        fidelity — so the summary stays meaningful.
        """
        if not self.cases:
            raise ValidationError("no validation cases recorded")
        return geomean(max(abs(error), 0.1) for error in self.cases.values())

    @property
    def worst_case(self) -> tuple[str, float]:
        """(name, signed error) of the largest-magnitude miss."""
        if not self.cases:
            raise ValidationError("no validation cases recorded")
        name = max(self.cases, key=lambda key: abs(self.cases[key]))
        return name, self.cases[name]

    def outliers(self, threshold_percent: float = 30.0) -> dict[str, float]:
        """Cases whose |error| exceeds the threshold (Fig. 4b calls out >30 %)."""
        return {
            name: error
            for name, error in self.cases.items()
            if abs(error) > threshold_percent
        }

    def within(self, low_percent: float, high_percent: float) -> bool:
        """True when every signed error lies in [low, high] (Fig. 4a band)."""
        return all(
            low_percent <= error <= high_percent for error in self.cases.values()
        )
