"""The GPUJoule energy equation (Eq. 4) and its per-component breakdown.

The model predicts total GPU energy as::

    E = sum_c EPI_c * IC_c            (compute instructions, per thread)
      + sum_m EPT_m * TC_m            (memory transactions, per level)
      + EPStall * stalls              (idle SM pipeline cycles)
      + ConstPower * ExecTime         (platform constant power)
      + E_link/bit * interconnect traffic   (multi-module extension, §V-A2)

Constant power scales with module count following the integration domain:
on-board designs replicate the full per-GPM platform overhead; on-package
designs amortize a configurable share of it across GPMs (Constant Energy
Amortization, §V-A2/§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import epi_tables
from repro.core.epi_tables import EnergyConstants, TransactionKind
from repro.dvfs.config import DvfsConfig
from repro.errors import ConfigError
from repro.gpu.config import GpuConfig, IntegrationDomain
from repro.gpu.counters import CounterSet
from repro.isa.opcodes import Opcode
from repro.units import nj, pj_per_bit_to_joules_per_byte


@dataclass
class EnergyBreakdown:
    """Joules per component — the stacks of Figure 7."""

    sm_busy: float = 0.0          # compute-instruction energy (EPI terms)
    sm_idle: float = 0.0          # stall energy (EPStall term)
    constant: float = 0.0         # ConstPower * time
    shared_to_rf: float = 0.0
    l1_to_rf: float = 0.0
    l2_to_l1: float = 0.0
    dram_to_l2: float = 0.0
    inter_gpm: float = 0.0        # link traversal energy (incl. switch hops)

    #: Display order used by the Figure 7 rendering.
    COMPONENT_ORDER = (
        "sm_busy",
        "sm_idle",
        "constant",
        "shared_to_rf",
        "l1_to_rf",
        "l2_to_l1",
        "inter_gpm",
        "dram_to_l2",
    )

    @property
    def total(self) -> float:
        return (
            self.sm_busy
            + self.sm_idle
            + self.constant
            + self.shared_to_rf
            + self.l1_to_rf
            + self.l2_to_l1
            + self.dram_to_l2
            + self.inter_gpm
        )

    def as_dict(self) -> dict[str, float]:
        """Component energies keyed by name, in display order."""
        return {name: getattr(self, name) for name in self.COMPONENT_ORDER}

    def fraction(self, component: str) -> float:
        """One component's share of the total (0 when the total is 0)."""
        total = self.total
        if total == 0:
            return 0.0
        return getattr(self, component) / total


@dataclass(frozen=True)
class EnergyParams:
    """Everything the model needs to price one run."""

    epi_nj: dict[Opcode, float] = field(
        default_factory=lambda: dict(epi_tables.EPI_TABLE_NJ)
    )
    shared_rf_ept_j: float = field(
        default_factory=lambda: epi_tables.ept_joules(TransactionKind.SHARED_TO_RF)
    )
    l1_rf_ept_j: float = field(
        default_factory=lambda: epi_tables.ept_joules(TransactionKind.L1_TO_RF)
    )
    l2_l1_ept_j: float = field(
        default_factory=lambda: epi_tables.ept_joules(TransactionKind.L2_TO_L1)
    )
    dram_l2_ept_j: float = field(default_factory=epi_tables.hbm_ept_joules)
    link_pj_per_bit: float = epi_tables.ON_PACKAGE_LINK_PJ_PER_BIT
    switch_pj_per_bit: float = epi_tables.SWITCH_HOP_PJ_PER_BIT
    #: (De)compression energy per uncompressed byte through link codecs
    #: (pJ/byte); only nonzero when the configuration enables compression.
    codec_pj_per_byte: float = 0.0
    constants: EnergyConstants = field(default_factory=EnergyConstants)
    num_gpms: int = 1
    constant_growth_per_gpm: float = 1.0

    def __post_init__(self) -> None:
        if self.num_gpms <= 0:
            raise ConfigError("num_gpms must be positive")
        if not 0.0 <= self.constant_growth_per_gpm <= 1.0:
            raise ConfigError(
                "constant_growth_per_gpm is a fraction in [0, 1];"
                f" got {self.constant_growth_per_gpm!r}"
            )

    @property
    def total_constant_power_w(self) -> float:
        """Constant power of the whole GPU after amortization.

        The first GPM always pays its full platform overhead; each additional
        GPM adds ``constant_growth_per_gpm`` of it (1.0 = no sharing,
        on-board; 0.5 = the paper's default on-package amortization).
        """
        per_gpm = self.constants.const_power_w
        return per_gpm * (1.0 + (self.num_gpms - 1) * self.constant_growth_per_gpm)

    @classmethod
    def for_config(
        cls,
        config: GpuConfig,
        constants: EnergyConstants | None = None,
        constant_growth_per_gpm: float | None = None,
        link_pj_per_bit: float | None = None,
    ) -> "EnergyParams":
        """Derive pricing parameters from a simulated GPU configuration.

        The integration domain picks the link signaling energy and the
        constant-energy amortization default (on-package shares 50 % of the
        per-GPM platform overhead; on-board shares nothing).
        """
        on_package = config.integration_domain is IntegrationDomain.ON_PACKAGE
        if constant_growth_per_gpm is None:
            constant_growth_per_gpm = 0.5 if on_package else 1.0
        if link_pj_per_bit is None:
            if config.interconnect is not None:
                link_pj_per_bit = config.interconnect.energy_pj_per_bit
            else:
                link_pj_per_bit = (
                    epi_tables.ON_PACKAGE_LINK_PJ_PER_BIT
                    if on_package
                    else epi_tables.ON_BOARD_LINK_PJ_PER_BIT
                )
        switch_pj = (
            config.interconnect.switch_hop_pj_per_bit
            if config.interconnect is not None
            else epi_tables.SWITCH_HOP_PJ_PER_BIT
        )
        codec_pj = (
            config.compression.codec_pj_per_byte
            if config.compression is not None
            else 0.0
        )
        return cls(
            link_pj_per_bit=link_pj_per_bit,
            switch_pj_per_bit=switch_pj,
            codec_pj_per_byte=codec_pj,
            constants=constants or EnergyConstants(),
            num_gpms=config.num_gpms,
            constant_growth_per_gpm=constant_growth_per_gpm,
        )

    def with_link_energy(self, link_pj_per_bit: float) -> "EnergyParams":
        """Clone with a different link energy (the §V-C point study)."""
        return replace(self, link_pj_per_bit=link_pj_per_bit)

    def with_amortization(self, growth_per_gpm: float) -> "EnergyParams":
        """Clone with a different constant-energy growth fraction."""
        return replace(self, constant_growth_per_gpm=growth_per_gpm)

    # ------------------------------------------------------------------- dvfs

    @classmethod
    def for_operating_point(
        cls,
        config: GpuConfig,
        dvfs: "DvfsConfig | None" = None,
        constants: EnergyConstants | None = None,
        constant_growth_per_gpm: float | None = None,
        link_pj_per_bit: float | None = None,
        residency: "DvfsResidency | None" = None,
    ) -> "EnergyParams":
        """Pricing parameters for a configuration at its DVFS operating point.

        Same derivation as :meth:`for_config`, then rescaled for the V/f
        points in ``dvfs`` (default: the configuration's own ``dvfs`` field;
        both ``None`` means the anchor point and no rescaling at all).

        When a ``residency`` is given — the per-domain time-at-point
        histograms a governed run records — it supersedes the static point
        scaling: every per-event cost becomes the residency-weighted mean of
        its point-scaled values (see :meth:`scaled_for_residency`).  A
        static run's single-bucket residency prices bit-identically to the
        direct per-point scaling.
        """
        params = cls.for_config(
            config,
            constants=constants,
            constant_growth_per_gpm=constant_growth_per_gpm,
            link_pj_per_bit=link_pj_per_bit,
        )
        dvfs = dvfs if dvfs is not None else config.dvfs
        if residency is not None:
            from repro.dvfs.operating_point import K40_VF_CURVE

            curve = dvfs.curve if dvfs is not None else K40_VF_CURVE
            leakage = dvfs.leakage_fraction if dvfs is not None else 0.5
            return params.scaled_for_residency(
                residency, curve, leakage_fraction=leakage
            )
        if dvfs is None:
            return params
        return params.scaled_for(dvfs)

    def scaled_for(self, dvfs: DvfsConfig) -> "EnergyParams":
        """Rescale every per-event cost for a DVFS setting (CMOS model).

        * Dynamic energy per event scales with the square of its domain's
          voltage ratio: compute EPIs, the stall cost, and the on-module
          cache EPTs with core V²; the DRAM EPT with DRAM V²; link, switch,
          and codec energies with interconnect V².
        * The stall cost additionally scales with the core frequency ratio:
          the ``sm_idle_cycles`` counter ticks in *anchor* cycles, and a core
          at ratio ``f`` burns ``f`` idle core cycles per anchor cycle.
        * Constant power splits into a leakage share (∝ V) and an
          idle-clocking share (∝ f·V²), governed by
          ``dvfs.leakage_fraction``.

        With multiple per-GPM core points, core ratios are the equal-weight
        means across GPMs (counters are global; see ``docs/POWER.md``).
        """
        core_f, core_v = dvfs.mean_core_ratios()
        dram_v = dvfs.curve.voltage_ratio(dvfs.dram)
        ic_v = dvfs.curve.voltage_ratio(dvfs.interconnect)
        core_sq = core_v * core_v
        dram_sq = dram_v * dram_v
        ic_sq = ic_v * ic_v
        leak = dvfs.leakage_fraction
        constant_scale = leak * core_v + (1.0 - leak) * core_f * core_sq
        stall_scale = core_sq * core_f
        return self._with_domain_scales(
            core_sq=core_sq,
            stall_scale=stall_scale,
            constant_scale=constant_scale,
            dram_sq=dram_sq,
            ic_sq=ic_sq,
        )

    def scaled_for_residency(
        self,
        residency: "DvfsResidency",
        curve: "VfCurve",
        leakage_fraction: float = 0.5,
    ) -> "EnergyParams":
        """Rescale costs by per-domain residency-weighted means.

        Eq. 4 is linear in its per-event costs, so the energy of a run whose
        domains moved between points is the time integral of the point-scaled
        costs — with global counters (event rates assumed stationary) that
        integral collapses to the residency-weighted mean of each scale:

        * core dynamic scale  = Σ_p w_p · V_p²      (per GPM, then averaged)
        * stall scale         = Σ_p w_p · V_p² · f_p
        * constant scale      = Σ_p w_p · (λ·V_p + (1-λ)·f_p·V_p²)
        * DRAM / interconnect = Σ_p w_p · V_p² over their own histograms

        where ``w_p`` is the fraction of the run domain ``d`` spent at point
        ``p`` and λ is ``leakage_fraction``.  A single-bucket residency
        (``w = 1.0``) reproduces :meth:`scaled_for` bit-for-bit.
        """
        leak = leakage_fraction
        if not 0.0 <= leak <= 1.0:
            raise ConfigError(
                f"leakage_fraction is a share in [0, 1]; got {leak!r}"
            )

        # Expression shapes intentionally mirror scaled_for so single-bucket
        # residencies produce identical float roundings.
        def _dyn(freq: float, volt: float) -> float:
            return volt * volt

        def _stall(freq: float, volt: float) -> float:
            return (volt * volt) * freq

        def _const(freq: float, volt: float) -> float:
            return leak * volt + (1.0 - leak) * freq * (volt * volt)

        def _mean(values: list[float]) -> float:
            # Identical per-GPM scales (the uniform-governor common case)
            # bypass the average so no rounding separates a static-governor
            # run from direct per-point pricing.
            if all(value == values[0] for value in values):
                return values[0]
            return sum(values) / len(values)

        core_sq = _mean(
            [h.weighted_mean(_dyn, curve) for h in residency.core]
        )
        stall_scale = _mean(
            [h.weighted_mean(_stall, curve) for h in residency.core]
        )
        constant_scale = _mean(
            [h.weighted_mean(_const, curve) for h in residency.core]
        )
        return self._with_domain_scales(
            core_sq=core_sq,
            stall_scale=stall_scale,
            constant_scale=constant_scale,
            dram_sq=residency.dram.weighted_mean(_dyn, curve),
            ic_sq=residency.interconnect.weighted_mean(_dyn, curve),
        )

    def _with_domain_scales(
        self,
        core_sq: float,
        stall_scale: float,
        constant_scale: float,
        dram_sq: float,
        ic_sq: float,
    ) -> "EnergyParams":
        """Apply per-domain scale factors to every priced cost."""
        constants = replace(
            self.constants,
            const_power_w=self.constants.const_power_w * constant_scale,
            ep_stall_nj=self.constants.ep_stall_nj * stall_scale,
        )
        return replace(
            self,
            epi_nj={op: e * core_sq for op, e in self.epi_nj.items()},
            shared_rf_ept_j=self.shared_rf_ept_j * core_sq,
            l1_rf_ept_j=self.l1_rf_ept_j * core_sq,
            l2_l1_ept_j=self.l2_l1_ept_j * core_sq,
            dram_l2_ept_j=self.dram_l2_ept_j * dram_sq,
            link_pj_per_bit=self.link_pj_per_bit * ic_sq,
            switch_pj_per_bit=self.switch_pj_per_bit * ic_sq,
            codec_pj_per_byte=self.codec_pj_per_byte * ic_sq,
            constants=constants,
        )


class EnergyModel:
    """Evaluates Eq. 4 over a run's counters."""

    def __init__(self, params: EnergyParams):
        self.params = params

    def evaluate(self, counters: CounterSet, exec_time_s: float) -> EnergyBreakdown:
        """Price one run; returns the component breakdown in joules."""
        if exec_time_s < 0:
            raise ConfigError(f"negative execution time: {exec_time_s!r}")
        params = self.params
        constants = params.constants
        breakdown = EnergyBreakdown()

        warp = constants.warp_size
        epi = params.epi_nj
        busy = 0.0
        for opcode, count in counters.instructions.items():
            per_instr_nj = epi.get(opcode)
            if per_instr_nj is None:
                raise ConfigError(f"no EPI entry for opcode {opcode}")
            busy += per_instr_nj * count * warp
        breakdown.sm_busy = nj(busy)

        breakdown.sm_idle = nj(constants.ep_stall_nj * counters.sm_idle_cycles)
        breakdown.constant = params.total_constant_power_w * exec_time_s

        breakdown.shared_to_rf = params.shared_rf_ept_j * counters.shared_rf_txns
        breakdown.l1_to_rf = params.l1_rf_ept_j * counters.l1_rf_txns
        breakdown.l2_to_l1 = params.l2_l1_ept_j * counters.l2_l1_txns
        breakdown.dram_to_l2 = params.dram_l2_ept_j * counters.dram_l2_txns

        link_j_per_byte = pj_per_bit_to_joules_per_byte(params.link_pj_per_bit)
        switch_j_per_byte = pj_per_bit_to_joules_per_byte(params.switch_pj_per_bit)
        breakdown.inter_gpm = (
            link_j_per_byte * counters.inter_gpm_byte_hops
            + switch_j_per_byte * counters.switch_byte_traversals
            + params.codec_pj_per_byte * 1e-12 * counters.compression_codec_bytes
        )
        return breakdown

    def total_energy(self, counters: CounterSet, exec_time_s: float) -> float:
        """Total joules for one run (Eq. 4 without the breakdown)."""
        return self.evaluate(counters, exec_time_s).total
