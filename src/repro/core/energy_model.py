"""The GPUJoule energy equation (Eq. 4) and its per-component breakdown.

The model predicts total GPU energy as::

    E = sum_c EPI_c * IC_c            (compute instructions, per thread)
      + sum_m EPT_m * TC_m            (memory transactions, per level)
      + EPStall * stalls              (idle SM pipeline cycles)
      + ConstPower * ExecTime         (platform constant power)
      + E_link/bit * interconnect traffic   (multi-module extension, §V-A2)

Constant power scales with module count following the integration domain:
on-board designs replicate the full per-GPM platform overhead; on-package
designs amortize a configurable share of it across GPMs (Constant Energy
Amortization, §V-A2/§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import epi_tables
from repro.core.epi_tables import EnergyConstants, TransactionKind
from repro.dvfs.config import DvfsConfig
from repro.errors import ConfigError
from repro.gpu.config import GpuConfig, IntegrationDomain
from repro.gpu.counters import CounterSet
from repro.isa.opcodes import Opcode
from repro.units import nj, pj_per_bit_to_joules_per_byte


@dataclass(frozen=True)
class GpmEnergy:
    """One GPM's core-domain energy, priced at its own operating scales.

    Covers exactly the components the per-GPM core clock domain prices
    (compute EPIs, stalls, and the on-module cache EPTs); the chip-global
    domains (DRAM, interconnect, constant power) have no per-GPM split.
    """

    gpm_id: int
    core_scale: float     # V² dynamic scale of this GPM's core domain
    stall_scale: float    # V²·f stall scale of this GPM's core domain
    sm_busy: float
    sm_idle: float
    shared_to_rf: float
    l1_to_rf: float
    l2_to_l1: float

    @property
    def total(self) -> float:
        return (
            self.sm_busy
            + self.sm_idle
            + self.shared_to_rf
            + self.l1_to_rf
            + self.l2_to_l1
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "gpm_id": self.gpm_id,
            "core_scale": self.core_scale,
            "stall_scale": self.stall_scale,
            "sm_busy": self.sm_busy,
            "sm_idle": self.sm_idle,
            "shared_to_rf": self.shared_to_rf,
            "l1_to_rf": self.l1_to_rf,
            "l2_to_l1": self.l2_to_l1,
            "total": self.total,
        }


@dataclass
class EnergyBreakdown:
    """Joules per component — the stacks of Figure 7."""

    sm_busy: float = 0.0          # compute-instruction energy (EPI terms)
    sm_idle: float = 0.0          # stall energy (EPStall term)
    constant: float = 0.0         # ConstPower * time
    shared_to_rf: float = 0.0
    l1_to_rf: float = 0.0
    l2_to_l1: float = 0.0
    dram_to_l2: float = 0.0
    inter_gpm: float = 0.0        # link traversal energy (incl. switch hops)
    #: Per-GPM core-domain attribution (filled when the counters carry
    #: per-GPM shards and the pricing carries per-GPM scales).  Not part of
    #: :attr:`total` — for mixed-clock runs the chip core-domain components
    #: above already *are* the exact sums of these entries.
    per_gpm: tuple[GpmEnergy, ...] = ()

    #: Display order used by the Figure 7 rendering.
    COMPONENT_ORDER = (
        "sm_busy",
        "sm_idle",
        "constant",
        "shared_to_rf",
        "l1_to_rf",
        "l2_to_l1",
        "inter_gpm",
        "dram_to_l2",
    )

    @property
    def total(self) -> float:
        return (
            self.sm_busy
            + self.sm_idle
            + self.constant
            + self.shared_to_rf
            + self.l1_to_rf
            + self.l2_to_l1
            + self.dram_to_l2
            + self.inter_gpm
        )

    def as_dict(self) -> dict[str, float]:
        """Component energies keyed by name, in display order."""
        return {name: getattr(self, name) for name in self.COMPONENT_ORDER}

    def fraction(self, component: str) -> float:
        """One component's share of the total (0 when the total is 0)."""
        total = self.total
        if total == 0:
            return 0.0
        return getattr(self, component) / total


def _mean_scale(values: list[float]) -> float:
    """Equal-weight mean of per-GPM scales, exact when they all agree.

    Identical per-GPM scales (the uniform common case) bypass the average so
    no rounding separates a uniform run from direct per-point pricing.
    """
    if all(value == values[0] for value in values):
        return values[0]
    return sum(values) / len(values)


@dataclass(frozen=True)
class CoreDomainPricing:
    """Per-GPM core-domain scale vectors plus the unscaled base costs.

    This is what lets :class:`EnergyModel` price a mixed-clock chip exactly:
    ``Σ_g scale_g · (EPI·IC_g + EPT·TC_g + EPStall·stalls_g)`` over per-GPM
    counter shards, instead of ``mean(scale) · global``.  The base costs are
    the pre-scale values of the params that produced this pricing, so each
    GPM's events reprice from first principles at its own scale.
    """

    #: V² dynamic scale per GPM, in GPM-id order.
    core_sq: tuple[float, ...]
    #: V²·f stall scale per GPM, in GPM-id order.
    stall_scale: tuple[float, ...]
    base_epi_nj: dict[Opcode, float]
    base_shared_rf_ept_j: float
    base_l1_rf_ept_j: float
    base_l2_l1_ept_j: float
    base_ep_stall_nj: float

    def __post_init__(self) -> None:
        if not self.core_sq:
            raise ConfigError("core pricing needs at least one GPM scale")
        if len(self.core_sq) != len(self.stall_scale):
            raise ConfigError(
                f"core pricing scale vectors disagree: {len(self.core_sq)}"
                f" dynamic vs {len(self.stall_scale)} stall scales"
            )

    @property
    def num_gpms(self) -> int:
        return len(self.core_sq)

    @property
    def is_uniform(self) -> bool:
        """True when every GPM shares one scale (pricing collapses exactly)."""
        return all(s == self.core_sq[0] for s in self.core_sq) and all(
            s == self.stall_scale[0] for s in self.stall_scale
        )


@dataclass(frozen=True)
class EnergyParams:
    """Everything the model needs to price one run."""

    epi_nj: dict[Opcode, float] = field(
        default_factory=lambda: dict(epi_tables.EPI_TABLE_NJ)
    )
    shared_rf_ept_j: float = field(
        default_factory=lambda: epi_tables.ept_joules(TransactionKind.SHARED_TO_RF)
    )
    l1_rf_ept_j: float = field(
        default_factory=lambda: epi_tables.ept_joules(TransactionKind.L1_TO_RF)
    )
    l2_l1_ept_j: float = field(
        default_factory=lambda: epi_tables.ept_joules(TransactionKind.L2_TO_L1)
    )
    dram_l2_ept_j: float = field(default_factory=epi_tables.hbm_ept_joules)
    link_pj_per_bit: float = epi_tables.ON_PACKAGE_LINK_PJ_PER_BIT
    switch_pj_per_bit: float = epi_tables.SWITCH_HOP_PJ_PER_BIT
    #: (De)compression energy per uncompressed byte through link codecs
    #: (pJ/byte); only nonzero when the configuration enables compression.
    codec_pj_per_byte: float = 0.0
    constants: EnergyConstants = field(default_factory=EnergyConstants)
    num_gpms: int = 1
    constant_growth_per_gpm: float = 1.0
    #: Per-GPM core-domain scales (set by the DVFS/residency scaling paths);
    #: ``None`` means anchor-point pricing with no per-GPM attribution.
    core_pricing: CoreDomainPricing | None = None

    def __post_init__(self) -> None:
        if self.num_gpms <= 0:
            raise ConfigError("num_gpms must be positive")
        if not 0.0 <= self.constant_growth_per_gpm <= 1.0:
            raise ConfigError(
                "constant_growth_per_gpm is a fraction in [0, 1];"
                f" got {self.constant_growth_per_gpm!r}"
            )

    @property
    def total_constant_power_w(self) -> float:
        """Constant power of the whole GPU after amortization.

        The first GPM always pays its full platform overhead; each additional
        GPM adds ``constant_growth_per_gpm`` of it (1.0 = no sharing,
        on-board; 0.5 = the paper's default on-package amortization).
        """
        per_gpm = self.constants.const_power_w
        return per_gpm * (1.0 + (self.num_gpms - 1) * self.constant_growth_per_gpm)

    @classmethod
    def for_config(
        cls,
        config: GpuConfig,
        constants: EnergyConstants | None = None,
        constant_growth_per_gpm: float | None = None,
        link_pj_per_bit: float | None = None,
    ) -> "EnergyParams":
        """Derive pricing parameters from a simulated GPU configuration.

        The integration domain picks the link signaling energy and the
        constant-energy amortization default (on-package shares 50 % of the
        per-GPM platform overhead; on-board shares nothing).
        """
        on_package = config.integration_domain is IntegrationDomain.ON_PACKAGE
        if constant_growth_per_gpm is None:
            constant_growth_per_gpm = 0.5 if on_package else 1.0
        if link_pj_per_bit is None:
            if config.interconnect is not None:
                link_pj_per_bit = config.interconnect.energy_pj_per_bit
            else:
                link_pj_per_bit = (
                    epi_tables.ON_PACKAGE_LINK_PJ_PER_BIT
                    if on_package
                    else epi_tables.ON_BOARD_LINK_PJ_PER_BIT
                )
        switch_pj = (
            config.interconnect.switch_hop_pj_per_bit
            if config.interconnect is not None
            else epi_tables.SWITCH_HOP_PJ_PER_BIT
        )
        codec_pj = (
            config.compression.codec_pj_per_byte
            if config.compression is not None
            else 0.0
        )
        params = cls(
            link_pj_per_bit=link_pj_per_bit,
            switch_pj_per_bit=switch_pj,
            codec_pj_per_byte=codec_pj,
            constants=constants or EnergyConstants(),
            num_gpms=config.num_gpms,
            constant_growth_per_gpm=constant_growth_per_gpm,
        )
        # Anchor pricing is the identity scale on every GPM; carrying it
        # explicitly lets sharded counters report per-GPM attribution even
        # for never-rescaled runs, and makes anchor-DVFS params compare
        # equal to these.
        identity = [1.0] * config.num_gpms
        return replace(
            params, core_pricing=params._core_pricing(identity, identity)
        )

    def with_link_energy(self, link_pj_per_bit: float) -> "EnergyParams":
        """Clone with a different link energy (the §V-C point study)."""
        return replace(self, link_pj_per_bit=link_pj_per_bit)

    def with_amortization(self, growth_per_gpm: float) -> "EnergyParams":
        """Clone with a different constant-energy growth fraction."""
        return replace(self, constant_growth_per_gpm=growth_per_gpm)

    # ------------------------------------------------------------------- dvfs

    @classmethod
    def for_operating_point(
        cls,
        config: GpuConfig,
        dvfs: "DvfsConfig | None" = None,
        constants: EnergyConstants | None = None,
        constant_growth_per_gpm: float | None = None,
        link_pj_per_bit: float | None = None,
        residency: "DvfsResidency | None" = None,
    ) -> "EnergyParams":
        """Pricing parameters for a configuration at its DVFS operating point.

        Same derivation as :meth:`for_config`, then rescaled for the V/f
        points in ``dvfs`` (default: the configuration's own ``dvfs`` field;
        both ``None`` means the anchor point and no rescaling at all).

        When a ``residency`` is given — the per-domain time-at-point
        histograms a governed run records — it supersedes the static point
        scaling: every per-event cost becomes the residency-weighted mean of
        its point-scaled values (see :meth:`scaled_for_residency`).  A
        static run's single-bucket residency prices bit-identically to the
        direct per-point scaling.
        """
        params = cls.for_config(
            config,
            constants=constants,
            constant_growth_per_gpm=constant_growth_per_gpm,
            link_pj_per_bit=link_pj_per_bit,
        )
        dvfs = dvfs if dvfs is not None else config.dvfs
        if residency is not None:
            from repro.dvfs.operating_point import K40_VF_CURVE

            curve = dvfs.curve if dvfs is not None else K40_VF_CURVE
            leakage = dvfs.leakage_fraction if dvfs is not None else 0.5
            return params.scaled_for_residency(
                residency, curve, leakage_fraction=leakage
            )
        if dvfs is None:
            return params
        return params.scaled_for(dvfs)

    def scaled_for(self, dvfs: DvfsConfig) -> "EnergyParams":
        """Rescale every per-event cost for a DVFS setting (CMOS model).

        * Dynamic energy per event scales with the square of its domain's
          voltage ratio: compute EPIs, the stall cost, and the on-module
          cache EPTs with core V²; the DRAM EPT with DRAM V²; link, switch,
          and codec energies with interconnect V².
        * The stall cost additionally scales with the core frequency ratio:
          the ``sm_idle_cycles`` counter ticks in *anchor* cycles, and a core
          at ratio ``f`` burns ``f`` idle core cycles per anchor cycle.
        * Constant power splits into a leakage share (∝ V) and an
          idle-clocking share (∝ f·V²), governed by
          ``dvfs.leakage_fraction``.

        With multiple per-GPM core points, every per-GPM scale is carried in
        :attr:`core_pricing` so the model can price each GPM's counter shard
        at that GPM's own scale (exact mixed-clock attribution); the baked
        chip-wide fields fall back to the equal-weight mean of the per-GPM
        scales for counters without shards (see ``docs/POWER.md``).
        """
        curve = dvfs.curve
        if dvfs.core_per_gpm:
            if len(dvfs.core_per_gpm) != self.num_gpms:
                raise ConfigError(
                    f"core_per_gpm has {len(dvfs.core_per_gpm)} points but"
                    f" the pricing covers {self.num_gpms} GPMs"
                )
            pairs = [
                (curve.frequency_ratio(point), curve.voltage_ratio(point))
                for point in dvfs.core_per_gpm
            ]
        else:
            pairs = [
                (curve.frequency_ratio(dvfs.core),
                 curve.voltage_ratio(dvfs.core))
            ] * self.num_gpms
        leak = dvfs.leakage_fraction
        # Expression shapes mirror scaled_for_residency's point functions so
        # static and single-bucket-residency pricing round identically.
        core_sq_vec = [v * v for _, v in pairs]
        stall_vec = [(v * v) * f for f, v in pairs]
        const_vec = [
            leak * v + (1.0 - leak) * f * (v * v) for f, v in pairs
        ]
        dram_v = curve.voltage_ratio(dvfs.dram)
        ic_v = curve.voltage_ratio(dvfs.interconnect)
        return self._with_domain_scales(
            core_sq=_mean_scale(core_sq_vec),
            stall_scale=_mean_scale(stall_vec),
            constant_scale=_mean_scale(const_vec),
            dram_sq=dram_v * dram_v,
            ic_sq=ic_v * ic_v,
            core_pricing=self._core_pricing(core_sq_vec, stall_vec),
        )

    def scaled_for_residency(
        self,
        residency: "DvfsResidency",
        curve: "VfCurve",
        leakage_fraction: float = 0.5,
    ) -> "EnergyParams":
        """Rescale costs by per-domain residency-weighted means.

        Eq. 4 is linear in its per-event costs, so the energy of a run whose
        domains moved between points is the time integral of the point-scaled
        costs — with global counters (event rates assumed stationary) that
        integral collapses to the residency-weighted mean of each scale:

        * core dynamic scale  = Σ_p w_p · V_p²      (per GPM, then averaged)
        * stall scale         = Σ_p w_p · V_p² · f_p
        * constant scale      = Σ_p w_p · (λ·V_p + (1-λ)·f_p·V_p²)
        * DRAM / interconnect = Σ_p w_p · V_p² over their own histograms

        where ``w_p`` is the fraction of the run domain ``d`` spent at point
        ``p`` and λ is ``leakage_fraction``.  A single-bucket residency
        (``w = 1.0``) reproduces :meth:`scaled_for` bit-for-bit.

        Each GPM's weighted scales are also carried per GPM in
        :attr:`core_pricing`, so runs whose counters carry per-GPM shards
        price each module's events at that module's own residency-weighted
        scale (exact mixed-clock attribution); the baked chip-wide fields
        keep the equal-weight mean across GPMs as the shardless fallback.

        Sleep buckets (idle-state runs) split the weighting by cost kind:
        per-*event* costs (the dynamic V² scale) weight over awake time
        only — no instructions retire while gated — while per-*cycle* costs
        (stall, constant) weight over the full window, a gated bucket
        contributing its state's ``residual_fraction`` of the anchor cost.
        Sleep-free residencies take the exact pre-idle code paths.
        """
        leak = leakage_fraction
        if not 0.0 <= leak <= 1.0:
            raise ConfigError(
                f"leakage_fraction is a share in [0, 1]; got {leak!r}"
            )

        # Expression shapes intentionally mirror scaled_for so single-bucket
        # residencies produce identical float roundings.
        def _dyn(freq: float, volt: float) -> float:
            return volt * volt

        def _stall(freq: float, volt: float) -> float:
            return (volt * volt) * freq

        def _const(freq: float, volt: float) -> float:
            return leak * volt + (1.0 - leak) * freq * (volt * volt)

        def _residual(state) -> float:
            return state.residual_fraction

        core_sq_vec = [
            h.weighted_mean(_dyn, curve) for h in residency.core
        ]
        stall_vec = [
            h.weighted_mean_with_sleep(_stall, curve, _residual)
            for h in residency.core
        ]
        const_vec = [
            h.weighted_mean_with_sleep(_const, curve, _residual)
            for h in residency.core
        ]
        return self._with_domain_scales(
            core_sq=_mean_scale(core_sq_vec),
            stall_scale=_mean_scale(stall_vec),
            constant_scale=_mean_scale(const_vec),
            dram_sq=residency.dram.weighted_mean(_dyn, curve),
            ic_sq=residency.interconnect.weighted_mean(_dyn, curve),
            core_pricing=self._core_pricing(core_sq_vec, stall_vec),
        )

    def _core_pricing(
        self, core_sq_vec: list[float], stall_vec: list[float]
    ) -> CoreDomainPricing:
        """Per-GPM pricing capturing this params' pre-scale base costs."""
        return CoreDomainPricing(
            core_sq=tuple(core_sq_vec),
            stall_scale=tuple(stall_vec),
            base_epi_nj=dict(self.epi_nj),
            base_shared_rf_ept_j=self.shared_rf_ept_j,
            base_l1_rf_ept_j=self.l1_rf_ept_j,
            base_l2_l1_ept_j=self.l2_l1_ept_j,
            base_ep_stall_nj=self.constants.ep_stall_nj,
        )

    def _with_domain_scales(
        self,
        core_sq: float,
        stall_scale: float,
        constant_scale: float,
        dram_sq: float,
        ic_sq: float,
        core_pricing: CoreDomainPricing | None = None,
    ) -> "EnergyParams":
        """Apply per-domain scale factors to every priced cost."""
        constants = replace(
            self.constants,
            const_power_w=self.constants.const_power_w * constant_scale,
            ep_stall_nj=self.constants.ep_stall_nj * stall_scale,
        )
        return replace(
            self,
            epi_nj={op: e * core_sq for op, e in self.epi_nj.items()},
            shared_rf_ept_j=self.shared_rf_ept_j * core_sq,
            l1_rf_ept_j=self.l1_rf_ept_j * core_sq,
            l2_l1_ept_j=self.l2_l1_ept_j * core_sq,
            dram_l2_ept_j=self.dram_l2_ept_j * dram_sq,
            link_pj_per_bit=self.link_pj_per_bit * ic_sq,
            switch_pj_per_bit=self.switch_pj_per_bit * ic_sq,
            codec_pj_per_byte=self.codec_pj_per_byte * ic_sq,
            constants=constants,
            core_pricing=core_pricing,
        )


class EnergyModel:
    """Evaluates Eq. 4 over a run's counters."""

    def __init__(self, params: EnergyParams):
        self.params = params

    def evaluate(self, counters: CounterSet, exec_time_s: float) -> EnergyBreakdown:
        """Price one run; returns the component breakdown in joules.

        When the counters carry per-GPM shards and the params carry per-GPM
        core scales, each shard is priced at its own GPM's scale.  For a
        mixed-clock chip the core-domain components become the exact sums
        ``Σ_g scale_g · (EPI·IC_g + EPT·TC_g + EPStall·stalls_g)``; a
        uniform-clock chip keeps the (bit-identical) global-counter path and
        the per-GPM entries are attribution only.  Counters without shards
        fall back to the chip-wide mean scales baked into the params.
        """
        if exec_time_s < 0:
            raise ConfigError(f"negative execution time: {exec_time_s!r}")
        params = self.params
        constants = params.constants
        breakdown = EnergyBreakdown()

        pricing = params.core_pricing
        shards = counters.per_gpm
        if pricing is not None and shards:
            if len(shards) != pricing.num_gpms:
                raise ConfigError(
                    f"counters carry {len(shards)} per-GPM shards but the"
                    f" pricing covers {pricing.num_gpms} GPMs"
                )
            breakdown.per_gpm = tuple(
                self._gpm_energy(pricing, gpm_id, shard)
                for gpm_id, shard in enumerate(shards)
            )

        if breakdown.per_gpm and not pricing.is_uniform:
            # Mixed clocks: the chip core-domain components are the exact
            # sums of the per-GPM attributions.
            breakdown.sm_busy = sum(g.sm_busy for g in breakdown.per_gpm)
            breakdown.sm_idle = sum(g.sm_idle for g in breakdown.per_gpm)
            breakdown.shared_to_rf = sum(
                g.shared_to_rf for g in breakdown.per_gpm
            )
            breakdown.l1_to_rf = sum(g.l1_to_rf for g in breakdown.per_gpm)
            breakdown.l2_to_l1 = sum(g.l2_to_l1 for g in breakdown.per_gpm)
        else:
            warp = constants.warp_size
            epi = params.epi_nj
            busy = 0.0
            for opcode, count in counters.instructions.items():
                per_instr_nj = epi.get(opcode)
                if per_instr_nj is None:
                    raise ConfigError(f"no EPI entry for opcode {opcode}")
                busy += per_instr_nj * count * warp
            breakdown.sm_busy = nj(busy)

            breakdown.sm_idle = nj(
                constants.ep_stall_nj * counters.sm_idle_cycles
            )
            breakdown.shared_to_rf = (
                params.shared_rf_ept_j * counters.shared_rf_txns
            )
            breakdown.l1_to_rf = params.l1_rf_ept_j * counters.l1_rf_txns
            breakdown.l2_to_l1 = params.l2_l1_ept_j * counters.l2_l1_txns

        breakdown.constant = params.total_constant_power_w * exec_time_s
        breakdown.dram_to_l2 = params.dram_l2_ept_j * counters.dram_l2_txns

        link_j_per_byte = pj_per_bit_to_joules_per_byte(params.link_pj_per_bit)
        switch_j_per_byte = pj_per_bit_to_joules_per_byte(params.switch_pj_per_bit)
        breakdown.inter_gpm = (
            link_j_per_byte * counters.inter_gpm_byte_hops
            + switch_j_per_byte * counters.switch_byte_traversals
            + params.codec_pj_per_byte * 1e-12 * counters.compression_codec_bytes
        )
        return breakdown

    def _gpm_energy(
        self, pricing: CoreDomainPricing, gpm_id: int, shard: CounterSet
    ) -> GpmEnergy:
        """Price one GPM's counter shard at that GPM's own core scales.

        Expression shapes mirror the global path (cost scaled first, then
        multiplied by the count) so a uniform chip's per-GPM entries reprice
        each shard exactly as the global path would.
        """
        constants = self.params.constants
        warp = constants.warp_size
        core_sq = pricing.core_sq[gpm_id]
        stall_scale = pricing.stall_scale[gpm_id]
        base_epi = pricing.base_epi_nj
        busy = 0.0
        for opcode, count in shard.instructions.items():
            per_instr_nj = base_epi.get(opcode)
            if per_instr_nj is None:
                raise ConfigError(f"no EPI entry for opcode {opcode}")
            busy += (per_instr_nj * core_sq) * count * warp
        return GpmEnergy(
            gpm_id=gpm_id,
            core_scale=core_sq,
            stall_scale=stall_scale,
            sm_busy=nj(busy),
            sm_idle=nj(
                (pricing.base_ep_stall_nj * stall_scale)
                * shard.sm_idle_cycles
            ),
            shared_to_rf=(
                (pricing.base_shared_rf_ept_j * core_sq)
                * shard.shared_rf_txns
            ),
            l1_to_rf=(
                (pricing.base_l1_rf_ept_j * core_sq) * shard.l1_rf_txns
            ),
            l2_to_l1=(
                (pricing.base_l2_l1_ept_j * core_sq) * shard.l2_l1_txns
            ),
        )

    def total_energy(self, counters: CounterSet, exec_time_s: float) -> float:
        """Total joules for one run (Eq. 4 without the breakdown)."""
        return self.evaluate(counters, exec_time_s).total
