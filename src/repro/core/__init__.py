"""GPUJoule and EDPSE: the paper's primary contribution.

* :mod:`~repro.core.epi_tables` — the measured Table Ib energy constants plus
  the published HBM and interconnect signaling energies of Section V-A2.
* :mod:`~repro.core.energy_model` — Eq. 4: counters + time -> joules, with a
  per-component breakdown matching Figure 7's stacks.
* :mod:`~repro.core.edpse` — parallel efficiency, EDP, EDPSE, and ED^iPSE.
* :mod:`~repro.core.calibration` — Eq. 5: sensor measurements -> EPI/EPT.
* :mod:`~repro.core.refinement` — the Figure 3 validate-and-refine loop.
* :mod:`~repro.core.validation` — modeled-vs-measured error statistics.
"""

from repro.core.epi_tables import (
    EPI_TABLE_NJ,
    EPT_TABLE,
    HBM_PJ_PER_BIT,
    EnergyConstants,
    TransactionKind,
)
from repro.core.energy_model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.core.edpse import (
    edp,
    edipse,
    edpse,
    parallel_efficiency,
    ScalingPoint,
)
from repro.core.calibration import MeasuredRun, estimate_epi, estimate_ept
from repro.core.validation import ErrorReport, relative_error_percent

__all__ = [
    "EPI_TABLE_NJ",
    "EPT_TABLE",
    "HBM_PJ_PER_BIT",
    "EnergyConstants",
    "TransactionKind",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
    "edp",
    "edipse",
    "edpse",
    "parallel_efficiency",
    "ScalingPoint",
    "MeasuredRun",
    "estimate_epi",
    "estimate_ept",
    "ErrorReport",
    "relative_error_percent",
]
