"""Measurement harness: run microbenchmarks on silicon, package measurements.

This is the outer loop of the Figure 3 flow's boxes 1 and 3: execute a
benchmark (analytically), observe its power through the sensor, and hand the
calibration math a :class:`~repro.core.calibration.MeasuredRun` whose event
count matches what the benchmark stressed.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.calibration import MeasuredRun
from repro.errors import CalibrationError
from repro.gpu.counters import CounterSet
from repro.power.meter import Measurement, PowerMeter


class Microbenchmark(Protocol):
    """Anything the harness can run: named, analytically executable."""

    @property
    def name(self) -> str: ...  # noqa: E704 - protocol stub

    def execute(self) -> tuple[CounterSet, float]: ...  # noqa: E704


class MicrobenchmarkHarness:
    """Runs microbenchmarks against one silicon instance."""

    def __init__(self, meter: PowerMeter):
        self.meter = meter
        self.log: list[tuple[str, Measurement]] = []

    def run(self, benchmark: Microbenchmark) -> tuple[CounterSet, Measurement]:
        """Execute and measure one benchmark."""
        counters, exec_time_s = benchmark.execute()
        if exec_time_s <= 0:
            raise CalibrationError(
                f"benchmark {benchmark.name!r} reported a non-positive duration"
            )
        measurement = self.meter.measure(counters, exec_time_s)
        self.log.append((benchmark.name, measurement))
        return counters, measurement

    def measured_run(
        self, benchmark: Microbenchmark, event_count: int
    ) -> tuple[CounterSet, MeasuredRun]:
        """Execute, measure, and package for Eq. 5 with the given event count."""
        if event_count <= 0:
            raise CalibrationError("event_count must be positive")
        counters, measurement = self.run(benchmark)
        return counters, MeasuredRun(
            power_active_w=measurement.power_active_w,
            power_idle_w=measurement.power_idle_w,
            exec_time_s=measurement.exec_time_s,
            event_count=event_count,
        )
