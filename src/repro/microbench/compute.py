"""Single-instruction compute microbenchmarks (the paper's Algorithm 1).

Each benchmark executes one PTX opcode in a tight register-resident loop on
every SM simultaneously, long enough for the power sensor to observe steady
state.  Execution is *analytic*: a steady-state loop of one instruction has a
closed-form schedule (the issue stage is the only bottleneck), so the
benchmark directly produces the counters and duration that the silicon model
prices and the sensor observes.  The literal loop body is still materialized
(:meth:`build_instructions`) as the checkable analogue of the paper's inlined
assembly.

An ``occupancy`` knob (warps per SM) exists because the refinement loop uses
*low-occupancy* variants to expose and calibrate the stall-energy term: with
one warp per SM the issue stage sits idle most of the time, and the measured
power above the pure-compute prediction is the stalled-pipeline energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpu.counters import CounterSet
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.units import DEFAULT_CLOCK_HZ


@dataclass(frozen=True)
class ComputeMicrobenchmark:
    """A steady-state single-opcode loop across all SMs."""

    opcode: Opcode
    iterations_per_warp: int = 100_000
    num_sms: int = 15
    warps_per_sm: int = 32
    issue_rate: float = 4.0
    clock_hz: float = DEFAULT_CLOCK_HZ

    def __post_init__(self) -> None:
        if not self.opcode.is_compute:
            raise ConfigError(
                f"compute microbenchmarks need a compute opcode, got {self.opcode}"
            )
        if self.iterations_per_warp <= 0:
            raise ConfigError("iterations_per_warp must be positive")
        if self.num_sms <= 0 or self.warps_per_sm <= 0:
            raise ConfigError("num_sms and warps_per_sm must be positive")
        if self.issue_rate <= 0:
            raise ConfigError("issue_rate must be positive")

    @property
    def name(self) -> str:
        return f"ubench.compute.{self.opcode.name.lower()}"

    @property
    def total_warp_instructions(self) -> int:
        return self.iterations_per_warp * self.num_sms * self.warps_per_sm

    def build_instructions(self, unroll: int = 8) -> list[Instruction]:
        """The literal loop body (Algorithm 1's region of interest)."""
        if unroll <= 0:
            raise ConfigError("unroll must be positive")
        return [Instruction(self.opcode) for _ in range(unroll)]

    def execute(self) -> tuple[CounterSet, float]:
        """Analytic steady-state execution: (counters, duration in seconds).

        With W warps per SM all issuing the same opcode of weight ``w``, the
        per-SM issue stage serves ``W * iterations * w`` slot-units at
        ``issue_rate`` per cycle; SMs run in lockstep so the board-level
        duration equals the per-SM duration.  Issue-stage idle time is zero
        at full occupancy and grows as occupancy drops below the pipeline's
        saturation point.
        """
        counters = CounterSet()
        counters.count_instruction(self.opcode, self.total_warp_instructions)

        weight = self.opcode.issue_weight
        slots_per_sm = self.warps_per_sm * self.iterations_per_warp * weight
        busy_cycles_per_sm = slots_per_sm / self.issue_rate
        # Below saturation occupancy, each warp can only keep one instruction
        # in flight per `pipeline_depth` cycles; model a simple linear ramp.
        saturation_warps = 8.0
        utilization = min(1.0, self.warps_per_sm / saturation_warps)
        elapsed_cycles = busy_cycles_per_sm / utilization
        counters.sm_busy_cycles = busy_cycles_per_sm * self.num_sms
        counters.sm_idle_cycles = (
            (elapsed_cycles - busy_cycles_per_sm) * self.num_sms
        )
        counters.elapsed_cycles = elapsed_cycles
        return counters, elapsed_cycles / self.clock_hz
