"""Microbenchmarks for EPI/EPT calibration and model validation (Fig. 3)."""

from repro.microbench.compute import ComputeMicrobenchmark
from repro.microbench.memory import MemoryLevel, MemoryMicrobenchmark
from repro.microbench.mixed import MixedMicrobenchmark, fig4a_suite
from repro.microbench.harness import MicrobenchmarkHarness

__all__ = [
    "ComputeMicrobenchmark",
    "MemoryLevel",
    "MemoryMicrobenchmark",
    "MixedMicrobenchmark",
    "fig4a_suite",
    "MicrobenchmarkHarness",
]
