"""Mixed-instruction validation microbenchmarks (Figure 4a).

The Figure 3 flow validates the calibrated model on *combinations* the
calibration loops never saw: a compute instruction interleaved with data
movement at a chosen level (e.g. "FADD64 + L2 Cache").  Any systematic
interaction energy the per-instruction model misses shows up as signed error
here, which is what Figure 4a plots (the paper observes +2.5 %/-6 %).

The five benchmarks of Figure 4a are reproduced by :func:`fig4a_suite`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.gpu.counters import CounterSet
from repro.isa.opcodes import Opcode
from repro.microbench.memory import (
    MemoryLevel,
    MemoryMicrobenchmark,
    chase_latency_cycles,
    steps_for_steady_state,
)
from repro.units import DEFAULT_CLOCK_HZ


@dataclass(frozen=True)
class MixedMicrobenchmark:
    """A compute opcode interleaved with pointer chases at given levels."""

    opcode: Opcode
    levels: tuple[MemoryLevel, ...]
    compute_per_step: int = 4
    steps_per_warp: int = 20_000
    num_sms: int = 15
    warps_per_sm: int = 32
    issue_rate: float = 4.0
    clock_hz: float = DEFAULT_CLOCK_HZ
    #: Overlapped chase chains per warp (see MemoryMicrobenchmark).
    independent_chains: int = 4
    #: Peak DRAM bandwidth (GB/s) bounding DRAM-touching combinations.
    dram_peak_gbps: float = 280.0
    label: str = field(default="")

    def __post_init__(self) -> None:
        if not self.opcode.is_compute:
            raise ConfigError("mixed benchmark needs a compute opcode")
        if not self.levels:
            raise ConfigError("mixed benchmark needs at least one memory level")
        if self.compute_per_step <= 0 or self.steps_per_warp <= 0:
            raise ConfigError("compute_per_step and steps_per_warp must be positive")

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        levels = "+".join(level.value for level in self.levels)
        return f"ubench.mixed.{self.opcode.name.lower()}+{levels}"

    def _chase(self, level: MemoryLevel) -> MemoryMicrobenchmark:
        return MemoryMicrobenchmark(
            level=level,
            steps_per_warp=self.steps_per_warp,
            num_sms=self.num_sms,
            warps_per_sm=self.warps_per_sm,
            issue_rate=self.issue_rate,
            clock_hz=self.clock_hz,
        )

    def execute(self) -> tuple[CounterSet, float]:
        """Analytic execution: interleave compute bursts with chase steps.

        Per step the warp issues ``compute_per_step`` instructions of the
        mixed opcode, then one dependent access per level.  Chase latency
        dominates; the compute overlaps under it (latency hiding within the
        warp's own ILP window), so the duration is the sum of the per-level
        chase times plus any compute overhang beyond them.
        """
        counters = CounterSet()
        n_warps = self.num_sms * self.warps_per_sm
        total_steps = self.steps_per_warp * n_warps
        counters.count_instruction(self.opcode, self.compute_per_step * total_steps)
        counters.count_instruction(Opcode.IADD32, total_steps * len(self.levels))

        chase_cycles = 0.0
        for level in self.levels:
            chase = self._chase(level)
            step = chase.transactions_per_step()
            counters.shared_rf_txns += step.shared_rf_txns * total_steps
            counters.l1_rf_txns += step.l1_rf_txns * total_steps
            counters.l2_l1_txns += step.l2_l1_txns * total_steps
            counters.dram_l2_txns += step.dram_l2_txns * total_steps
            chase_cycles += chase.chase_latency_cycles
        chase_cycles /= self.independent_chains

        compute_cycles = (
            self.compute_per_step * self.opcode.issue_weight / self.issue_rate
        ) * self.warps_per_sm
        per_step_cycles = max(chase_cycles, compute_cycles)
        elapsed_cycles = self.steps_per_warp * per_step_cycles
        if MemoryLevel.DRAM in self.levels:
            from repro.units import CACHE_LINE_BYTES, gbps_to_bytes_per_cycle

            bytes_per_cycle = gbps_to_bytes_per_cycle(
                self.dram_peak_gbps, self.clock_hz
            )
            bandwidth_bound = total_steps * CACHE_LINE_BYTES / bytes_per_cycle
            elapsed_cycles = max(elapsed_cycles, bandwidth_bound)

        issue_slots_per_sm = (
            self.warps_per_sm
            * self.steps_per_warp
            * (
                self.compute_per_step * self.opcode.issue_weight
                + 2.0 * len(self.levels)
            )
        )
        busy_per_sm = min(issue_slots_per_sm / self.issue_rate, elapsed_cycles)
        counters.sm_busy_cycles = busy_per_sm * self.num_sms
        counters.sm_idle_cycles = (elapsed_cycles - busy_per_sm) * self.num_sms
        counters.elapsed_cycles = elapsed_cycles
        return counters, elapsed_cycles / self.clock_hz


def fig4a_suite(
    num_sms: int = 15, warps_per_sm: int = 32
) -> list[MixedMicrobenchmark]:
    """The five Figure 4a validation benchmarks: FADD64 + one or two levels.

    Step counts are sized per combination so each run outlasts the power
    sensor's refresh window — validation, like calibration, measures steady
    state.
    """
    combos: list[tuple[str, tuple[MemoryLevel, ...]]] = [
        ("FADD64 + Shared Memory", (MemoryLevel.SHARED,)),
        ("FADD64 + L1D Cache", (MemoryLevel.L1,)),
        ("FADD64 + L2 Cache", (MemoryLevel.L2,)),
        ("FADD64 + DRAM", (MemoryLevel.DRAM,)),
        ("FADD64 + L2 Cache + DRAM", (MemoryLevel.L2, MemoryLevel.DRAM)),
    ]
    suite = []
    for label, levels in combos:
        per_step = sum(chase_latency_cycles(level) for level in levels)
        bench = MixedMicrobenchmark(
            opcode=Opcode.FADD64,
            levels=levels,
            label=label,
            num_sms=num_sms,
            warps_per_sm=warps_per_sm,
        )
        steps = steps_for_steady_state(per_step / bench.independent_chains)
        suite.append(replace(bench, steps_per_warp=steps))
    return suite
