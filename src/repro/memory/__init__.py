"""Memory hierarchy substrate: caches, DRAM, pages, and software coherence."""

from repro.memory.cache import Cache, CacheConfig, CacheStats
from repro.memory.dram import DramChannel, DramConfig, GDDR5, HBM
from repro.memory.pages import PagePlacement, PageTable, PlacementPolicy
from repro.memory.coherence import SoftwareCoherence

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "DramChannel",
    "DramConfig",
    "GDDR5",
    "HBM",
    "PagePlacement",
    "PageTable",
    "PlacementPolicy",
    "SoftwareCoherence",
]
