"""A set-associative, write-through/no-write-allocate cache model.

The model is *functional plus counters*: it tracks tag state exactly (true
LRU), and reports hits/misses/evictions so the timing layer can charge
latencies and the energy layer can count transactions.  It does not store
data — the simulator never needs values, only movement.

Write policy: GPU L1s on the modeled (Kepler-class) machine are write-through
and no-write-allocate for global stores; L2 is write-back with write-allocate.
Both behaviours are selectable per instance via :class:`CacheConfig`.

Each cache line remembers the *home GPM* of its page so module-side L2s can
bulk-invalidate remote lines at kernel boundaries (software coherence).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import CACHE_LINE_BYTES, is_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy for one cache instance."""

    capacity_bytes: int
    line_bytes: int = CACHE_LINE_BYTES
    associativity: int = 4
    write_allocate: bool = False
    write_back: bool = False
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.associativity <= 0:
            raise ConfigError(f"{self.name}: associativity must be positive")
        lines = self.capacity_bytes // self.line_bytes
        if lines == 0:
            raise ConfigError(f"{self.name}: capacity smaller than one line")
        if lines % self.associativity != 0:
            raise ConfigError(
                f"{self.name}: line count {lines} not divisible by"
                f" associativity {self.associativity}"
            )

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass
class CacheStats:
    """Hit/miss/traffic counters for one cache instance."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return 0.0 if total == 0 else 1.0 - self.misses / total

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another instance's counters into this one."""
        self.read_hits += other.read_hits
        self.read_misses += other.read_misses
        self.write_hits += other.write_hits
        self.write_misses += other.write_misses
        self.evictions += other.evictions
        self.dirty_evictions += other.dirty_evictions
        self.invalidations += other.invalidations


class _Line:
    """Tag-store entry."""

    __slots__ = ("tag", "dirty", "home")

    def __init__(self, tag: int, home: int):
        self.tag = tag
        self.dirty = False
        self.home = home


class Cache:
    """True-LRU set-associative cache with per-line home-GPM tracking."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        self._write_back = config.write_back
        self._write_allocate = config.write_allocate
        # Each set is a list ordered MRU-first; lists are tiny (associativity).
        self._sets: list[list[_Line]] = [[] for _ in range(self._num_sets)]

    def _locate(self, address: int) -> tuple[int, int]:
        line_addr = address >> self._line_shift
        return line_addr % self._num_sets, line_addr

    def probe(self, address: int) -> bool:
        """Non-mutating presence check (no LRU update, no stats)."""
        set_index, tag = self._locate(address)
        return any(line.tag == tag for line in self._sets[set_index])

    def access(
        self, address: int, is_store: bool = False, home: int = 0
    ) -> tuple[bool, bool]:
        """Perform one access.

        Args:
            address: byte address.
            is_store: store accesses follow the configured write policy.
            home: home GPM of the page backing this address (for coherence).

        Returns:
            ``(hit, dirty_eviction)`` — ``dirty_eviction`` is True when the
            access displaced a dirty line that must be written downstream.
        """
        tag = address >> self._line_shift
        ways = self._sets[tag % self._num_sets]
        stats = self.stats
        position = 0
        for line in ways:
            if line.tag == tag:
                if position:
                    del ways[position]
                    ways.insert(0, line)
                if is_store:
                    stats.write_hits += 1
                    if self._write_back:
                        line.dirty = True
                else:
                    stats.read_hits += 1
                return True, False
            position += 1

        # Miss path.
        if is_store:
            stats.write_misses += 1
            if not self._write_allocate:
                return False, False
        else:
            stats.read_misses += 1

        dirty_evicted = False
        if len(ways) >= self._associativity:
            victim = ways.pop()
            stats.evictions += 1
            if victim.dirty:
                stats.dirty_evictions += 1
                dirty_evicted = True
        new_line = _Line(tag, home)
        if is_store and self._write_back:
            new_line.dirty = True
        ways.insert(0, new_line)
        return False, dirty_evicted

    def invalidate_where(self, predicate) -> int:
        """Drop every line for which ``predicate(home_gpm) is True``.

        Models the bulk flash-invalidate of software coherence.  Dirty lines
        are dropped too: the software protocol guarantees writers flushed
        before the boundary, so no writeback traffic is generated here.

        Returns the number of lines invalidated.
        """
        invalidated = 0
        for ways in self._sets:
            if not ways:
                continue
            keep = [line for line in ways if not predicate(line.home)]
            invalidated += len(ways) - len(keep)
            ways[:] = keep
        self.stats.invalidations += invalidated
        return invalidated

    def flush(self) -> int:
        """Invalidate everything (kernel-boundary flush of a whole cache)."""
        return self.invalidate_where(lambda _home: True)

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"Cache({cfg.name!r}, {cfg.capacity_bytes // 1024}KiB,"
            f" {cfg.associativity}-way, {cfg.line_bytes}B lines)"
        )
