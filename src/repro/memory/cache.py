"""A set-associative, write-through/no-write-allocate cache model.

The model is *functional plus counters*: it tracks tag state exactly (true
LRU), and reports hits/misses/evictions so the timing layer can charge
latencies and the energy layer can count transactions.  It does not store
data — the simulator never needs values, only movement.

Write policy: GPU L1s on the modeled (Kepler-class) machine are write-through
and no-write-allocate for global stores; L2 is write-back with write-allocate.
Both behaviours are selectable per instance via :class:`CacheConfig`.

Each cache line remembers the *home GPM* of its page so module-side L2s can
bulk-invalidate remote lines at kernel boundaries (software coherence).

Two implementations share the exact same contract:

* :class:`Cache` — the production tag store on the simulator hot path.  Each
  way is a plain 3-slot list cell ``[tag, dirty, home]`` ordered MRU-first,
  sets are created lazily on first touch, and the eviction path *reuses* the
  victim's cell for the incoming line instead of allocating.  This layout was
  chosen by microbenchmark: the simulated workloads are miss-dominated
  (streaming traffic misses nearly every L1 probe), and cell reuse plus
  allocation-free probes beat both the original per-line objects and a flat
  numpy tag/LRU array layout, whose per-access scalar indexing costs more
  than the Python list walk it replaces (see docs/PERFORMANCE.md).
* :class:`ReferenceCache` — the original per-line-object implementation,
  kept verbatim as the executable specification.  The property suite in
  ``tests/differential/test_cache_equivalence.py`` replays random access
  streams through both and requires identical hit/miss/writeback/eviction
  sequences and :class:`CacheStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import CACHE_LINE_BYTES, is_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy for one cache instance."""

    capacity_bytes: int
    line_bytes: int = CACHE_LINE_BYTES
    associativity: int = 4
    write_allocate: bool = False
    write_back: bool = False
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.associativity <= 0:
            raise ConfigError(f"{self.name}: associativity must be positive")
        lines = self.capacity_bytes // self.line_bytes
        if lines == 0:
            raise ConfigError(f"{self.name}: capacity smaller than one line")
        if lines % self.associativity != 0:
            raise ConfigError(
                f"{self.name}: line count {lines} not divisible by"
                f" associativity {self.associativity}"
            )

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass
class CacheStats:
    """Hit/miss/traffic counters for one cache instance."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return 0.0 if total == 0 else 1.0 - self.misses / total

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another instance's counters into this one."""
        self.read_hits += other.read_hits
        self.read_misses += other.read_misses
        self.write_hits += other.write_hits
        self.write_misses += other.write_misses
        self.evictions += other.evictions
        self.dirty_evictions += other.dirty_evictions
        self.invalidations += other.invalidations


# Cell layout of the production tag store: each way is a plain list
# [tag, dirty, home], MRU-first within its set.
_TAG, _DIRTY, _HOME = 0, 1, 2


class Cache:
    """True-LRU set-associative cache with per-line home-GPM tracking."""

    __slots__ = (
        "config",
        "stats",
        "_line_shift",
        "_num_sets",
        "_associativity",
        "_write_back",
        "_write_allocate",
        "_sets",
    )

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        self._write_back = config.write_back
        self._write_allocate = config.write_allocate
        # Sets are created lazily: large caches in large GPM counts touch a
        # small fraction of their sets in a short kernel, and a [None] * n
        # backbone is much cheaper to build than n empty lists.
        self._sets: list[list[list] | None] = [None] * self._num_sets

    def _locate(self, address: int) -> tuple[int, int]:
        line_addr = address >> self._line_shift
        return line_addr % self._num_sets, line_addr

    def probe(self, address: int) -> bool:
        """Non-mutating presence check (no LRU update, no stats)."""
        tag = address >> self._line_shift
        ways = self._sets[tag % self._num_sets]
        if not ways:
            return False
        for cell in ways:
            if cell[_TAG] == tag:
                return True
        return False

    def access(
        self, address: int, is_store: bool = False, home: int = 0
    ) -> tuple[bool, bool]:
        """Perform one access.

        Args:
            address: byte address.
            is_store: store accesses follow the configured write policy.
            home: home GPM of the page backing this address (for coherence).

        Returns:
            ``(hit, dirty_eviction)`` — ``dirty_eviction`` is True when the
            access displaced a dirty line that must be written downstream.
        """
        tag = address >> self._line_shift
        sets = self._sets
        index = tag % self._num_sets
        ways = sets[index]
        stats = self.stats
        if ways:
            position = 0
            for cell in ways:
                if cell[_TAG] == tag:
                    if position:
                        del ways[position]
                        ways.insert(0, cell)
                    if is_store:
                        stats.write_hits += 1
                        if self._write_back:
                            cell[_DIRTY] = True
                    else:
                        stats.read_hits += 1
                    return True, False
                position += 1
        elif ways is None:
            ways = sets[index] = []

        # Miss path.
        if is_store:
            stats.write_misses += 1
            if not self._write_allocate:
                return False, False
        else:
            stats.read_misses += 1

        if len(ways) >= self._associativity:
            cell = ways.pop()
            stats.evictions += 1
            dirty_evicted = cell[_DIRTY]
            if dirty_evicted:
                stats.dirty_evictions += 1
            # Reuse the victim's cell for the incoming line: the eviction
            # path runs once per miss in a full set — the steady state of a
            # streaming workload — and skipping the allocation is the bulk
            # of this implementation's win over per-line objects.
            cell[_TAG] = tag
            cell[_DIRTY] = is_store and self._write_back
            cell[_HOME] = home
            ways.insert(0, cell)
            return False, dirty_evicted
        ways.insert(0, [tag, is_store and self._write_back, home])
        return False, False

    def invalidate_where(self, predicate) -> int:
        """Drop every line for which ``predicate(home_gpm) is True``.

        Models the bulk flash-invalidate of software coherence.  Dirty lines
        are dropped too: the software protocol guarantees writers flushed
        before the boundary, so no writeback traffic is generated here.

        Returns the number of lines invalidated.
        """
        invalidated = 0
        for ways in self._sets:
            if not ways:
                continue
            keep = [cell for cell in ways if not predicate(cell[_HOME])]
            invalidated += len(ways) - len(keep)
            ways[:] = keep
        self.stats.invalidations += invalidated
        return invalidated

    def flush(self) -> int:
        """Invalidate everything (kernel-boundary flush of a whole cache)."""
        return self.invalidate_where(lambda _home: True)

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets if ways)

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"Cache({cfg.name!r}, {cfg.capacity_bytes // 1024}KiB,"
            f" {cfg.associativity}-way, {cfg.line_bytes}B lines)"
        )


class _Line:
    """Tag-store entry of the reference implementation."""

    __slots__ = ("tag", "dirty", "home")

    def __init__(self, tag: int, home: int):
        self.tag = tag
        self.dirty = False
        self.home = home


class ReferenceCache:
    """The original per-line-object tag store, kept as the executable spec.

    Bit-for-bit the behaviour :class:`Cache` must reproduce; only used by the
    differential property suite and available for ad-hoc cross-checking.  Do
    not put it on a hot path.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        self._write_back = config.write_back
        self._write_allocate = config.write_allocate
        # Each set is a list ordered MRU-first; lists are tiny (associativity).
        self._sets: list[list[_Line]] = [[] for _ in range(self._num_sets)]

    def _locate(self, address: int) -> tuple[int, int]:
        line_addr = address >> self._line_shift
        return line_addr % self._num_sets, line_addr

    def probe(self, address: int) -> bool:
        """Non-mutating presence check (no LRU update, no stats)."""
        set_index, tag = self._locate(address)
        return any(line.tag == tag for line in self._sets[set_index])

    def access(
        self, address: int, is_store: bool = False, home: int = 0
    ) -> tuple[bool, bool]:
        """Perform one access (same contract as :meth:`Cache.access`)."""
        tag = address >> self._line_shift
        ways = self._sets[tag % self._num_sets]
        stats = self.stats
        position = 0
        for line in ways:
            if line.tag == tag:
                if position:
                    del ways[position]
                    ways.insert(0, line)
                if is_store:
                    stats.write_hits += 1
                    if self._write_back:
                        line.dirty = True
                else:
                    stats.read_hits += 1
                return True, False
            position += 1

        # Miss path.
        if is_store:
            stats.write_misses += 1
            if not self._write_allocate:
                return False, False
        else:
            stats.read_misses += 1

        dirty_evicted = False
        if len(ways) >= self._associativity:
            victim = ways.pop()
            stats.evictions += 1
            if victim.dirty:
                stats.dirty_evictions += 1
                dirty_evicted = True
        new_line = _Line(tag, home)
        if is_store and self._write_back:
            new_line.dirty = True
        ways.insert(0, new_line)
        return False, dirty_evicted

    def invalidate_where(self, predicate) -> int:
        """Drop every line for which ``predicate(home_gpm) is True``."""
        invalidated = 0
        for ways in self._sets:
            if not ways:
                continue
            keep = [line for line in ways if not predicate(line.home)]
            invalidated += len(ways) - len(keep)
            ways[:] = keep
        self.stats.invalidations += invalidated
        return invalidated

    def flush(self) -> int:
        """Invalidate everything (kernel-boundary flush of a whole cache)."""
        return self.invalidate_where(lambda _home: True)

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"ReferenceCache({cfg.name!r}, {cfg.capacity_bytes // 1024}KiB,"
            f" {cfg.associativity}-way, {cfg.line_bytes}B lines)"
        )
