"""Page table and placement policies for the NUMA multi-GPM address space.

The scaling study follows prior multi-module GPU work (MCM-GPU, NUMA-aware
GPUs) in using **first-touch** page placement: the first GPM to touch a page
becomes its home, so thread-block-local data lands in local DRAM.  A
round-robin (striped) policy is provided as a baseline for locality ablation
studies.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError
from repro.units import PAGE_BYTES


class PlacementPolicy(enum.Enum):
    """How pages are assigned a home GPM."""

    FIRST_TOUCH = "first_touch"
    STRIPED = "striped"


class PagePlacement:
    """Decides and remembers each page's home GPM."""

    def __init__(
        self,
        num_gpms: int,
        policy: PlacementPolicy = PlacementPolicy.FIRST_TOUCH,
        page_bytes: int = PAGE_BYTES,
        interleaved_from: int | None = None,
    ):
        """``interleaved_from``: byte address above which pages are striped
        across GPMs regardless of policy.  Models how shared allocations
        (graph edges, lookup tables) are interleaved in multi-GPU systems so
        that no single module's memory becomes a traffic hotspot; private,
        CTA-partitioned arrays below the threshold still follow first touch.
        """
        if num_gpms <= 0:
            raise ConfigError(f"num_gpms must be positive, got {num_gpms}")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ConfigError(f"page_bytes must be a power of two, got {page_bytes}")
        self.num_gpms = num_gpms
        self.policy = policy
        self.page_bytes = page_bytes
        self._page_shift = page_bytes.bit_length() - 1
        self._homes: dict[int, int] = {}
        self.first_touches = 0
        self._interleaved_from_page: int | None = (
            None if interleaved_from is None
            else interleaved_from >> self._page_shift
        )

    def set_interleaved_from(self, address: int | None) -> None:
        """Set (or clear) the shared-allocation striping threshold."""
        self._interleaved_from_page = (
            None if address is None else address >> self._page_shift
        )

    def page_of(self, address: int) -> int:
        """Virtual page number of an address."""
        return address >> self._page_shift

    def home(self, address: int, toucher_gpm: int) -> int:
        """Home GPM for ``address``; assigns one on first touch.

        Args:
            toucher_gpm: GPM performing the access (the would-be first
                toucher under FIRST_TOUCH).
        """
        page = address >> self._page_shift
        assigned = self._homes.get(page)
        if assigned is not None:
            # Mapped pages dominate (one first touch per page, then an
            # access stream); the toucher validation only guards the
            # assignment below, so the hot path skips it.
            return assigned
        if not 0 <= toucher_gpm < self.num_gpms:
            raise ConfigError(
                f"toucher_gpm {toucher_gpm} out of range [0, {self.num_gpms})"
            )
        interleave = (
            self._interleaved_from_page is not None
            and page >= self._interleaved_from_page
        )
        if interleave or self.policy is PlacementPolicy.STRIPED:
            assigned = page % self.num_gpms
        else:
            assigned = toucher_gpm
        self._homes[page] = assigned
        self.first_touches += 1
        return assigned

    def peek(self, address: int) -> int | None:
        """Home GPM if already assigned, else None (no side effects)."""
        return self._homes.get(address >> self._page_shift)

    @property
    def mapped_pages(self) -> int:
        return len(self._homes)

    def distribution(self) -> list[int]:
        """Pages homed at each GPM (diagnostic for placement balance)."""
        counts = [0] * self.num_gpms
        for home in self._homes.values():
            counts[home] += 1
        return counts


#: Back-compat alias; some call sites read better as "PageTable".
PageTable = PagePlacement
