"""Software coherence for module-side L2 caches.

In the 2-GPM-and-larger configurations the L2 moves from the memory side to
the module side (Section V-A1), so a GPM's L2 may cache lines whose home DRAM
lives on another GPM.  Hardware coherence is not assumed; instead, as in the
MCM-GPU proposals, coherence is maintained *in software* at kernel boundaries:
when a kernel completes, every L2 flash-invalidates the remote-homed lines it
cached during the kernel, so the next kernel cannot observe stale remote data.

The flash invalidate is modeled as instantaneous and free (it is a tag-state
bulk clear in hardware); the *cost* of the protocol shows up naturally as the
re-fetch traffic the next kernel generates.
"""

from __future__ import annotations

from repro.memory.cache import Cache


class SoftwareCoherence:
    """Applies kernel-boundary invalidations across a set of module L2s."""

    def __init__(self) -> None:
        self._l2s: list[tuple[int, Cache]] = []
        self.boundaries = 0
        self.lines_invalidated = 0

    def register_l2(self, gpm_id: int, cache: Cache) -> None:
        """Attach one GPM's module-side L2 to the protocol."""
        self._l2s.append((gpm_id, cache))

    def kernel_boundary(self) -> int:
        """Invalidate remote-homed lines in every registered L2.

        Returns the total number of lines dropped at this boundary.
        """
        dropped = 0
        for gpm_id, cache in self._l2s:
            dropped += cache.invalidate_where(lambda home, me=gpm_id: home != me)
        self.boundaries += 1
        self.lines_invalidated += dropped
        return dropped

    @property
    def registered_gpms(self) -> int:
        return len(self._l2s)
