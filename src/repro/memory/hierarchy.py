"""Per-GPM memory path: L1s, module L2, local DRAM, and remote access routing.

This module implements the complete access flow for one GPM:

* **Shared memory** accesses hit the on-SM scratchpad: one 128 B shared->RF
  transaction, fixed latency, never leave the SM.
* **Global loads** probe the per-SM L1 (write-through, no-write-allocate),
  then the module-side L2 (write-back, write-allocate), then the home DRAM —
  local directly, remote through the inter-GPM network (request header out,
  home-L2 probe, home-DRAM read on miss, data payload back).  Fetched remote
  lines are cached in the *requester's* L2 with their home recorded, so the
  software-coherence flush can drop them at the next kernel boundary.
* **Global stores** are write-through at L1.  Local stores write-allocate in
  the module L2 (dirty lines write back to local DRAM on eviction).  Remote
  stores bypass the L2 and stream to the home DRAM over the network — this is
  what makes the kernel-boundary flash-invalidate correct without writeback
  traffic: no remote-homed line is ever dirty.

Local paths are priced *analytically*: every stage carries the same constant
pipeline offset, so reserving at ``earliest = issue + latency`` preserves FCFS
order and the warp sleeps once, on the final completion time.  Remote paths
must NOT be priced that way: reserving a home-DRAM channel or a return link at
a far-future ``earliest`` would push the server's horizon past idle time it
could have served others in (a non-work-conserving queue that melts down under
NUMA traffic).  Remote accesses therefore run as small multi-stage processes
that reserve each resource when the payload actually arrives at it.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpu.counters import CounterSet
from repro.interconnect.topology import Topology
from repro.isa.opcodes import MemSpace
from repro.isa.program import MemAccess
from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import DramChannel
from repro.memory.pages import PagePlacement
from repro.sim.engine import Engine, Event
from repro.units import CACHE_LINE_BYTES, SECTORS_PER_LINE

#: Size of a request header message on the inter-GPM network (bytes).
REQUEST_HEADER_BYTES: int = 32

#: Shared empty pending-event container for accesses with no remote legs —
#: the overwhelmingly common case, not worth a fresh list per access.
_NO_EVENTS: tuple = ()


@dataclass(frozen=True)
class HierarchyLatencies:
    """Fixed pipeline latencies for the hierarchy stages (cycles)."""

    shared: float = 25.0
    l1: float = 30.0
    l2: float = 120.0

    def __post_init__(self) -> None:
        for name in ("shared", "l1", "l2"):
            if getattr(self, name) < 0:
                raise ConfigError(f"latency {name!r} must be non-negative")


class GpmMemory:
    """The memory system of one GPM, plus its window onto remote GPMs."""

    def __init__(
        self,
        engine: Engine,
        gpm_id: int,
        num_sms: int,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        dram: DramChannel,
        placement: PagePlacement,
        counters: CounterSet,
        latencies: HierarchyLatencies | None = None,
    ):
        self.engine = engine
        self.gpm_id = gpm_id
        self.latencies = latencies or HierarchyLatencies()
        self.l1s = [
            Cache(
                CacheConfig(
                    capacity_bytes=l1_config.capacity_bytes,
                    line_bytes=l1_config.line_bytes,
                    associativity=l1_config.associativity,
                    write_allocate=False,
                    write_back=False,
                    name=f"gpm{gpm_id}.l1.{sm}",
                )
            )
            for sm in range(num_sms)
        ]
        self.l2 = Cache(
            CacheConfig(
                capacity_bytes=l2_config.capacity_bytes,
                line_bytes=l2_config.line_bytes,
                associativity=l2_config.associativity,
                write_allocate=True,
                write_back=True,
                name=f"gpm{gpm_id}.l2",
            )
        )
        self.dram = dram
        self.placement = placement
        self.counters = counters
        self._track = f"gpm{gpm_id}.mem"
        # The tracer is fixed at engine construction and `enabled` is a class
        # attribute, so both are safe to snapshot out of the hot path.
        self._tracer = engine.tracer
        self._trace = engine.tracer.enabled
        self._remote_load_cycles = engine.metrics.accumulator(
            "memory.remote_load_cycles"
        )
        self._remote_store_cycles = engine.metrics.accumulator(
            "memory.remote_store_cycles"
        )
        # Wired by MultiGpu after all GPMs exist:
        self.topology: Topology | None = None
        self.peers: list["GpmMemory"] = []

    # ------------------------------------------------------------------ helpers

    def _line_address(self, address: int) -> int:
        return address & ~(CACHE_LINE_BYTES - 1)

    def _lines_touched(self, access: MemAccess) -> range:
        first = access.address // CACHE_LINE_BYTES
        last = (access.address + access.size - 1) // CACHE_LINE_BYTES
        return range(first, last + 1)

    # ------------------------------------------------------------------ access

    def access(
        self, sm_index: int, access: MemAccess, earliest: float
    ) -> "tuple[float, tuple[Event, ...] | list[Event]]":
        """Perform one warp-level access.

        Returns ``(completion_time, pending_events)``: the analytic completion
        bound for local stages plus done-events of any remote-path processes
        the access spawned (an immutable, possibly shared, empty container
        when there are none — callers must not mutate it).  Stores complete
        when their data leaves the SM (the warp does not wait for downstream
        drain); loads complete on data arrival.
        """
        if access.space is MemSpace.SHARED:
            self.counters.shared_rf_txns += 1
            return earliest + self.latencies.shared, _NO_EVENTS

        if access.size <= CACHE_LINE_BYTES and access.address % CACHE_LINE_BYTES == 0:
            # Fast path: one aligned line (how the generators emit accesses).
            done = self._access_line(
                sm_index, access.address, access.is_store, earliest
            )
            if done.__class__ is Event:
                return earliest, (done,)
            return done, _NO_EVENTS

        completion = earliest
        events: list[Event] = []
        for line_index in self._lines_touched(access):
            line_address = line_index * CACHE_LINE_BYTES
            done = self._access_line(
                sm_index, line_address, access.is_store, earliest
            )
            if isinstance(done, Event):
                events.append(done)
            elif done > completion:
                completion = done
        return completion, events

    def _access_line(
        self, sm_index: int, line_address: int, is_store: bool, earliest: float
    ) -> "float | Event":
        counters = self.counters
        counters.l1_rf_txns += 1
        gpm_id = self.gpm_id
        home = self.placement.home(line_address, gpm_id)
        if home == gpm_id:
            counters.local_accesses += 1
        else:
            counters.remote_accesses += 1

        if is_store:
            # Write-through, no-write-allocate at L1: stores bypass the L1
            # tag store entirely and head downstream.
            return self._store_line(line_address, home, earliest)
        hit, _ = self.l1s[sm_index].access(line_address, False, home)
        if hit:
            counters.l1_hits += 1
            return earliest + self.latencies.l1
        counters.l1_misses += 1
        if self._trace:
            self._tracer.instant(self._track, "l1.miss", earliest)
        return self._load_miss(line_address, home, earliest)

    # ------------------------------------------------------------------ loads

    def _load_miss(
        self, line_address: int, home: int, earliest: float
    ) -> "float | Event":
        counters = self.counters
        at_l2 = earliest + self.latencies.l1
        counters.l2_l1_txns += SECTORS_PER_LINE
        hit, dirty_evicted = self.l2.access(line_address, False, home)
        if dirty_evicted:
            self._writeback_local(at_l2)
        if hit:
            counters.l2_hits += 1
            return at_l2 + self.latencies.l2
        counters.l2_misses += 1
        if self._trace:
            self._tracer.instant(
                self._track, "l2.miss", at_l2, args={"home": home}
            )
        after_l2 = at_l2 + self.latencies.l2

        if home == self.gpm_id:
            counters.dram_l2_txns += SECTORS_PER_LINE
            return self.dram.read(CACHE_LINE_BYTES, after_l2)

        process = self.engine.process(
            self._remote_load_body(line_address, home, after_l2),
            name=f"gpm{self.gpm_id}.rload",
        )
        return process.done

    def _remote_load_body(
        self, line_address: int, home: int, start: float
    ) -> Generator:
        """Multi-stage remote load: request out, home access, data back.

        Each resource is reserved when the message actually reaches it, so
        links and the home DRAM stay work-conserving under NUMA load.
        """
        counters = self.counters
        engine = self.engine
        topology = self._require_topology()
        yield engine.wait_until(start)

        request = topology.transfer(self.gpm_id, home, REQUEST_HEADER_BYTES)
        counters.inter_gpm_bytes += REQUEST_HEADER_BYTES
        counters.inter_gpm_byte_hops += REQUEST_HEADER_BYTES * request.hops
        counters.switch_byte_traversals += (
            REQUEST_HEADER_BYTES * request.switch_traversals
        )
        yield engine.wait_until(request.completion_time)

        peer = self.peers[home]
        if peer.l2.probe(line_address):
            # Served out of the home GPM's module L2 (probe only: no fill,
            # no LRU churn from remote readers).  The transaction happens on
            # the home module's hardware, so it lands in the home shard.
            peer.counters.l2_l1_txns += SECTORS_PER_LINE
            data_ready = engine.now + peer.latencies.l2
        else:
            peer.counters.dram_l2_txns += SECTORS_PER_LINE
            data_ready = peer.dram.read(CACHE_LINE_BYTES)
        yield engine.wait_until(data_ready)

        response = topology.transfer(home, self.gpm_id, CACHE_LINE_BYTES)
        counters.inter_gpm_bytes += CACHE_LINE_BYTES
        counters.inter_gpm_byte_hops += CACHE_LINE_BYTES * response.hops
        counters.switch_byte_traversals += (
            CACHE_LINE_BYTES * response.switch_traversals
        )
        yield engine.wait_until(response.completion_time)
        self._remote_load_cycles.add(engine.now - start)
        if self._trace:
            self._tracer.complete(
                self._track,
                f"remote_load->g{home}",
                start,
                engine.now - start,
            )

    # ------------------------------------------------------------------ stores

    def _store_line(self, line_address: int, home: int, earliest: float) -> float:
        counters = self.counters
        left_sm = earliest + self.latencies.l1
        if home == self.gpm_id:
            counters.l2_l1_txns += SECTORS_PER_LINE
            _, dirty_evicted = self.l2.access(line_address, True, home)
            if dirty_evicted:
                self._writeback_local(left_sm)
            return left_sm
        # Remote store: bypass local L2, stream payload to the home DRAM.
        # (Guarantees remote-homed lines are never dirty in any module L2.)
        # Fire-and-forget: the warp does not wait, but the drain process
        # reserves each resource at actual arrival time.
        self.engine.process(
            self._remote_store_body(home, left_sm),
            name=f"gpm{self.gpm_id}.rstore",
        )
        return left_sm

    def _remote_store_body(self, home: int, start: float) -> Generator:
        """Multi-stage remote store drain: payload out, home DRAM write."""
        counters = self.counters
        engine = self.engine
        topology = self._require_topology()
        yield engine.wait_until(start)
        transfer = topology.transfer(self.gpm_id, home, CACHE_LINE_BYTES)
        counters.inter_gpm_bytes += CACHE_LINE_BYTES
        counters.inter_gpm_byte_hops += CACHE_LINE_BYTES * transfer.hops
        counters.switch_byte_traversals += (
            CACHE_LINE_BYTES * transfer.switch_traversals
        )
        yield engine.wait_until(transfer.completion_time)
        # The drain writes the home module's DRAM: home shard, as above.
        self.peers[home].counters.dram_l2_txns += SECTORS_PER_LINE
        self.peers[home].dram.write(CACHE_LINE_BYTES)
        self._remote_store_cycles.add(engine.now - start)
        if self._trace:
            self._tracer.complete(
                self._track,
                f"remote_store->g{home}",
                start,
                engine.now - start,
            )

    def _writeback_local(self, earliest: float) -> None:
        """Drain one dirty local line to local DRAM (fire-and-forget)."""
        self.counters.dram_l2_txns += SECTORS_PER_LINE
        self.counters.dirty_writebacks += 1
        self.dram.write(CACHE_LINE_BYTES, earliest)

    # ------------------------------------------------------------------ wiring

    def _require_topology(self) -> Topology:
        if self.topology is None:
            raise ConfigError(
                f"GPM {self.gpm_id} has remote traffic but no interconnect;"
                " single-GPM configs must keep all pages local"
            )
        return self.topology

    def connect(self, topology: Topology | None, peers: list["GpmMemory"]) -> None:
        """Late wiring of the interconnect and peer GPM memories."""
        self.topology = topology
        self.peers = peers
