"""DRAM channel model with GDDR5 and HBM presets.

A channel is a bandwidth server plus a fixed access latency.  The scaling
study gives every GPM one HBM stack at 256 GB/s (Table III); the K40
validation substrate uses a GDDR5 preset at the K40's 280 GB/s (Table Ia).
Energy per bit differs between the two technologies and is consumed by the
energy model, not here — the timing layer only reports transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.resources import BandwidthServer
from repro.units import DEFAULT_CLOCK_HZ, gbps_to_bytes_per_cycle


@dataclass(frozen=True)
class DramConfig:
    """One DRAM stack/partition attached to a GPM."""

    technology: str
    bandwidth_gbps: float
    latency_cycles: float
    capacity_bytes: int

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigError("DRAM bandwidth must be positive")
        if self.latency_cycles < 0:
            raise ConfigError("DRAM latency must be non-negative")
        if self.capacity_bytes <= 0:
            raise ConfigError("DRAM capacity must be positive")


#: HBM stack used by every GPM in the scaling study (Table III).
HBM = DramConfig(
    technology="HBM",
    bandwidth_gbps=256.0,
    latency_cycles=300.0,
    capacity_bytes=12 * 1024**3,
)

#: GDDR5 preset matching the Tesla K40 validation platform (Table Ia).
GDDR5 = DramConfig(
    technology="GDDR5",
    bandwidth_gbps=280.0,
    latency_cycles=350.0,
    capacity_bytes=12 * 1024**3,
)


class DramChannel:
    """Timing front-end for one DRAM stack.

    ``clock_hz`` is the simulator's cycle timebase (the core anchor clock),
    needed to turn the stack's GB/s figure into bytes per simulated cycle.
    """

    def __init__(
        self,
        engine: Engine,
        config: DramConfig,
        name: str = "dram",
        clock_hz: float = DEFAULT_CLOCK_HZ,
    ):
        self.engine = engine
        self.config = config
        self.name = name
        self.server = BandwidthServer(
            engine,
            gbps_to_bytes_per_cycle(config.bandwidth_gbps, clock_hz),
            name=name,
        )
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._queue_cycles = engine.metrics.accumulator("dram.queue_cycles")
        # Fixed at engine construction; snapshot out of the per-access path.
        self._tracer = engine.tracer
        self._trace = engine.tracer.enabled

    def _service(
        self, kind: str, nbytes: int, earliest: float | None
    ) -> float:
        """Reserve channel service, recording queueing and the trace span."""
        arrival = self.engine.now if earliest is None else earliest
        finish = self.server.reserve(nbytes, earliest=earliest)
        service = nbytes / self.server.rate
        self._queue_cycles.add(max(0.0, finish - service - arrival))
        if self._trace:
            self._tracer.complete(
                self.name, kind, finish - service, service,
                args={"bytes": nbytes},
            )
        return finish

    def read(self, nbytes: int, earliest: float | None = None) -> float:
        """Reserve a read; returns the absolute completion time.

        ``earliest`` bounds when channel service may begin (the time the
        request physically arrives at this stack).
        """
        self.reads += 1
        self.bytes_read += nbytes
        return self._service("read", nbytes, earliest) + self.config.latency_cycles

    def write(self, nbytes: int, earliest: float | None = None) -> float:
        """Reserve a write; returns the absolute completion time.

        Writes occupy channel bandwidth but the issuing warp does not wait on
        them; callers may discard the completion time.
        """
        self.writes += 1
        self.bytes_written += nbytes
        return self._service("write", nbytes, earliest)

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def utilization(self, elapsed: float) -> float:
        """Channel busy fraction over an elapsed window."""
        return self.server.utilization(elapsed)

    def __repr__(self) -> str:
        return (
            f"DramChannel({self.config.technology},"
            f" {self.config.bandwidth_gbps:g} GB/s)"
        )
