"""repro — a reproduction of *Understanding the Future of Energy Efficiency
in Multi-Module GPUs* (Arunkumar, Bolotin, Nellans, Wu — HPCA 2019).

The package provides, from the bottom up:

* a discrete-event multi-module GPU performance simulator
  (:mod:`repro.sim`, :mod:`repro.sm`, :mod:`repro.memory`,
  :mod:`repro.interconnect`, :mod:`repro.gpu`);
* **GPUJoule**, the paper's top-down instruction-based energy model, with
  its calibration and validation flow (:mod:`repro.core`,
  :mod:`repro.power`, :mod:`repro.microbench`);
* the **EDPSE** scaling-efficiency metric (:mod:`repro.core.edpse`);
* the Table II workload suite as synthetic traces (:mod:`repro.workloads`);
* experiment drivers regenerating every table and figure
  (:mod:`repro.experiments`, also ``python -m repro <experiment>``).

Quickstart::

    from repro import simulate, table_iii_config, BandwidthSetting
    from repro.core import EnergyModel, EnergyParams, edpse
    from repro.workloads import build_workload, get_spec

    workload = build_workload(get_spec("Stream"))
    result = simulate(workload, table_iii_config(4, BandwidthSetting.BW_2X))
    params = EnergyParams.for_config(table_iii_config(4, BandwidthSetting.BW_2X))
    joules = EnergyModel(params).total_energy(result.counters, result.seconds)
"""

from repro.core.edpse import ScalingPoint, edipse, edp, edpse, parallel_efficiency
from repro.core.energy_model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.gpu.config import (
    BandwidthSetting,
    GpmConfig,
    GpuConfig,
    IntegrationDomain,
    TopologyKind,
    k40_config,
    monolithic_config,
    table_iii_config,
)
from repro.gpu.simulator import GpuSimulator, RunResult, simulate
from repro.isa.kernel import Kernel, Workload, WorkloadCategory
from repro.workloads.generator import build_workload
from repro.workloads.suite import SCALING_SUBSET, WORKLOAD_SPECS, get_spec

__version__ = "1.0.0"

__all__ = [
    "ScalingPoint",
    "edipse",
    "edp",
    "edpse",
    "parallel_efficiency",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
    "BandwidthSetting",
    "GpmConfig",
    "GpuConfig",
    "IntegrationDomain",
    "TopologyKind",
    "k40_config",
    "monolithic_config",
    "table_iii_config",
    "GpuSimulator",
    "RunResult",
    "simulate",
    "Kernel",
    "Workload",
    "WorkloadCategory",
    "build_workload",
    "SCALING_SUBSET",
    "WORKLOAD_SPECS",
    "get_spec",
    "__version__",
]
