"""Command-line entry point: ``python -m repro <experiment>``.

Runs any of the paper's experiments from the shell and prints the same
rows/series the paper's table or figure reports.  ``all`` runs everything in
DESIGN.md's experiment-index order.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    amortization_study,
    config_tables,
    compression_study,
    edip_study,
    fig2_energy_scaling,
    fig4_validation,
    fig6_edpse_onpackage,
    fig7_incremental,
    fig8_bandwidth,
    fig9_switch,
    fig10_speedup_energy,
    headline,
    interconnect_energy_study,
    locality_ablation,
    powergate_study,
    table1b_epi_ept,
    topology_study,
)
from repro.experiments.runner import SweepRunner, SweepSettings

_EXPERIMENTS = {
    "table1b": lambda runner: table1b_epi_ept.run(),
    "fig2": fig2_energy_scaling.run,
    "fig4": fig4_validation.run,
    "fig6": fig6_edpse_onpackage.run,
    "fig7": fig7_incremental.run,
    "fig8": fig8_bandwidth.run,
    "fig9": fig9_switch.run,
    "fig10": fig10_speedup_energy.run,
    "interconnect-energy": interconnect_energy_study.run,
    "amortization": amortization_study.run,
    "headline": headline.run,
    # Extensions beyond the paper's evaluation (Section V-E directions).
    "tables": lambda runner: config_tables.run(),
    "compression": compression_study.run,
    "locality": locality_ablation.run,
    "powergate": powergate_study.run,
    "edip": edip_study.run,
    "topology": topology_study.run,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments, run experiments, print their rows."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'Understanding the Future of"
            " Energy Efficiency in Multi-Module GPUs' (HPCA 2019)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(_EXPERIMENTS) + ["all"],
        metavar="experiment",
        help="which tables/figures to regenerate ('all' for everything)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="simulation worker processes (default: auto)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the sweep result cache",
    )
    args = parser.parse_args(argv)

    settings_kwargs = {}
    if args.processes is not None:
        settings_kwargs["processes"] = args.processes
    if args.no_cache:
        settings_kwargs["use_cache"] = False
    runner = SweepRunner(SweepSettings(**settings_kwargs))

    if "all" in args.experiments:
        names = sorted(_EXPERIMENTS)
    else:
        names = list(dict.fromkeys(args.experiments))
    for name in names:
        start = time.time()
        result = _EXPERIMENTS[name](runner)
        print(result.render())
        print(f"[{name}: {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
