"""Command-line entry point: ``python -m repro <experiment>``.

Runs any of the paper's experiments from the shell and prints the same
rows/series the paper's table or figure reports.  ``all`` runs everything in
DESIGN.md's experiment-index order.

Two observability subcommands sit beside the experiments (see
``docs/OBSERVABILITY.md``):

* ``repro run <workload>`` — simulate a scaled-down copy of a Table II
  workload once and print its timing/counter summary; ``--shards N`` runs
  the per-GPM sharded engine (bit-identical results, see
  ``docs/PERFORMANCE.md``).
* ``repro trace <workload>`` — simulate a scaled-down copy of a Table II
  workload with the Chrome tracer attached and write a ``trace_event`` JSON
  file viewable at https://ui.perfetto.dev.
* ``repro profile <workload>`` — simulate the same scaled-down copy and print
  the component metrics (CTA runtimes, DRAM queueing, remote-access
  latencies, interconnect transfers) plus a counter summary.
* ``repro dvfs <workload>`` — sweep the same scaled-down copy over the K40
  V/f ladder, print delay/energy/EDP per operating point, and report the
  energy sweet spot (see ``docs/POWER.md``); ``--governed`` additionally runs
  the utilization governor and prints its per-GPM decisions;
  ``--cap-watts`` runs the chip under a power budget and prints the
  power-capping governor's decisions with residency-priced energy;
  ``--governor`` adds per-GPM sleep states (race-to-idle, deadline-paced,
  gate-only, or utilization) and prints the gated residency.
* ``repro capsweep`` — sweep chip power budgets across GPM counts and report
  residency-priced EDPSE per budget (``--quick`` for a small grid;
  ``--screen roofline`` prunes the budget grid analytically first;
  ``--governor`` attaches per-GPM sleep states under the cap).
* ``repro idlestudy`` — compare race-to-idle, deadline-paced, gate-only,
  and utilization governors on per-GPM sleep states and report EDPSE per
  workload shape (``--quick`` for the CI smoke grid; see ``docs/POWER.md``).
* ``repro roofline`` — score a workload's V/f ladder with the closed-form
  roofline predictor and compare against simulation; ``--check-bounds``
  verifies the committed error-bound manifest (see docs/MODELING.md).
* ``repro bench`` — run the simulator throughput benchmark (the headline
  1–32 GPM sweep, or ``--quick`` for a single small case) and write
  ``BENCH_sim.json``; ``--check`` compares against a committed baseline
  (see ``docs/PERFORMANCE.md``).
* ``repro serve`` / ``repro submit`` — run the sweep-as-a-service job queue
  (admission control, priority lanes, single-flight dedup, content-addressed
  result store) and submit jobs to it (see ``docs/SERVICE.md``).

Every subcommand maps configuration errors (bad DVFS grids, infeasible
power caps, malformed recipes) to a single ``repro <cmd>: <message>`` line
on stderr and exit code 2.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    amortization_study,
    capping_study,
    config_tables,
    compression_study,
    edip_study,
    fig2_energy_scaling,
    fig4_validation,
    fig6_edpse_onpackage,
    fig7_incremental,
    fig8_bandwidth,
    fig9_switch,
    fig10_speedup_energy,
    headline,
    idle_study,
    interconnect_energy_study,
    locality_ablation,
    powergate_study,
    sweetspot_study,
    table1b_epi_ept,
    topology_study,
)
from repro.experiments.runner import SweepRunner, SweepSettings

_EXPERIMENTS = {
    "table1b": lambda runner: table1b_epi_ept.run(),
    "fig2": fig2_energy_scaling.run,
    "fig4": fig4_validation.run,
    "fig6": fig6_edpse_onpackage.run,
    "fig7": fig7_incremental.run,
    "fig8": fig8_bandwidth.run,
    "fig9": fig9_switch.run,
    "fig10": fig10_speedup_energy.run,
    "interconnect-energy": interconnect_energy_study.run,
    "amortization": amortization_study.run,
    "headline": headline.run,
    # Extensions beyond the paper's evaluation (Section V-E directions).
    "tables": lambda runner: config_tables.run(),
    "compression": compression_study.run,
    "locality": locality_ablation.run,
    "powergate": powergate_study.run,
    "idle": idle_study.run,
    "edip": edip_study.run,
    "topology": topology_study.run,
    "sweetspot": sweetspot_study.run,
    "capping": capping_study.run,
}


def _observed_pair(parser: argparse.ArgumentParser, args: argparse.Namespace):
    """(workload, config) for one trace/profile invocation.

    Invalid combinations raise :class:`~repro.errors.ConfigError`, which the
    subcommand guard in :func:`main` maps to a one-line stderr message and
    exit code 2 — uniformly across every subcommand.
    """
    from repro.gpu.config import TopologyKind, table_iii_config
    from repro.workloads.generator import build_workload
    from repro.workloads.suite import shrunken_spec

    spec = shrunken_spec(
        args.workload, total_ctas=args.ctas, kernels=args.kernels
    )
    config = table_iii_config(
        args.gpms, topology=TopologyKind(args.topology)
    )
    return spec, build_workload(spec), config


def _add_observe_arguments(
    parser: argparse.ArgumentParser, workload_optional: bool = False
) -> None:
    from repro.gpu.config import TABLE_III_GPM_COUNTS
    from repro.workloads.suite import all_specs

    choices = sorted(all_specs())
    parser.add_argument(
        "workload",
        choices=choices,
        metavar="workload",
        # `submit --phases` composes the workload from a phase schedule
        # instead of naming one.
        **({"nargs": "?", "default": None} if workload_optional else {}),
        help=(
            "Table II or LLM-serving workload abbreviation"
            f" ({', '.join(choices)})"
        ),
    )
    parser.add_argument(
        "--gpms",
        type=int,
        choices=TABLE_III_GPM_COUNTS,
        default=4,
        help="GPU module count (default: 4)",
    )
    parser.add_argument(
        "--topology",
        choices=["ring", "switch", "mesh"],
        default="ring",
        help="inter-GPM network for multi-module configs (default: ring)",
    )
    parser.add_argument(
        "--ctas",
        type=int,
        default=64,
        help="shrink the workload grid to this many CTAs (default: 64)",
    )
    parser.add_argument(
        "--kernels",
        type=int,
        default=1,
        help="number of kernel launches to keep (default: 1)",
    )


def _add_idle_arguments(parser: argparse.ArgumentParser) -> None:
    """The per-GPM sleep-state knobs shared by dvfs/profile (docs/POWER.md)."""
    parser.add_argument(
        "--governor",
        choices=["utilization", "gate-only", "race-to-idle", "deadline-paced"],
        default=None,
        help=(
            "also run with per-GPM sleep states under this governor and"
            " print the gated residency (see docs/POWER.md)"
        ),
    )
    parser.add_argument(
        "--deadline-us",
        type=float,
        default=None,
        help=(
            "simulated-time deadline for --governor deadline-paced"
            " (microseconds; rejected up front if the roofline bound at"
            " f_max cannot meet it)"
        ),
    )
    parser.add_argument(
        "--entry-latency-cycles",
        type=float,
        default=None,
        help="override the clock-gated state's entry latency",
    )
    parser.add_argument(
        "--exit-latency-cycles",
        type=float,
        default=None,
        help="override the clock-gated state's exit latency",
    )
    parser.add_argument(
        "--residual",
        type=float,
        default=None,
        help=(
            "override the clock-gated state's residual power fraction"
            " (relative to the active idle floor)"
        ),
    )


def _idle_config_from_args(args, config):
    """Build the :class:`~repro.dvfs.idle.IdleConfig` the flags describe.

    Returns ``None`` when no idle flag was given.  All validation —
    negative latencies, residual above the active floor, exit latency
    beyond the wake budget, a deadline without the paced governor — happens
    inside :mod:`repro.dvfs.idle` and surfaces through the subcommand
    guard as one ``ConfigError`` line.
    """
    import dataclasses

    from repro.dvfs.idle import CLOCK_GATED, IdleConfig

    overrides = {
        "entry_latency_cycles": args.entry_latency_cycles,
        "exit_latency_cycles": args.exit_latency_cycles,
        "residual_fraction": args.residual,
    }
    overrides = {k: v for k, v in overrides.items() if v is not None}
    if args.governor is None and args.deadline_us is None and not overrides:
        return None
    clock_gated = (
        dataclasses.replace(CLOCK_GATED, **overrides)
        if overrides
        else CLOCK_GATED
    )
    deadline_cycles = (
        None
        if args.deadline_us is None
        else args.deadline_us * 1e-6 * config.gpm.clock_hz
    )
    return IdleConfig(
        clock_gated=clock_gated,
        governor=(
            None if args.governor in (None, "gate-only") else args.governor
        ),
        deadline_cycles=deadline_cycles,
    )


def _check_deadline_feasible(args, spec, config) -> None:
    """Reject a deadline the chip cannot meet even at f_max, up front.

    Mirrors the ``--cap-watts`` precedent: an unsatisfiable knob is one
    stderr line before any simulation, not a surprise after the sweep.
    The bound is the roofline prediction at the top of the ladder — the
    fastest the race governor itself could possibly finish.
    """
    if args.governor != "deadline-paced" or args.deadline_us is None:
        return
    if spec.phases is not None:
        # The roofline bound does not cover phase schedules; the governor
        # itself still enforces the deadline conservatively at runtime.
        return
    from repro.dvfs.operating_point import K40_VF_CURVE
    from repro.dvfs.sweetspot import with_operating_point
    from repro.errors import ConfigError
    from repro.roofline.model import RooflinePredictor

    curve = config.dvfs.curve if config.dvfs is not None else K40_VF_CURVE
    top = curve.points[-1]
    predicted = RooflinePredictor().predict(
        spec, with_operating_point(config, top)
    )
    if args.deadline_us * 1e-6 < predicted.delay_s:
        raise ConfigError(
            f"deadline {args.deadline_us:g} us is infeasible: the roofline"
            f" bound at {top.label()} needs at least"
            f" {predicted.delay_s * 1e6:.2f} us"
        )


def _print_sleep_residency(residency) -> None:
    """Per-GPM gated-cycle lines for a run that actually slept."""
    if residency is None or residency.total_sleep_cycles <= 0.0:
        return
    print("  per-GPM sleep residency:")
    for gpm_id, hist in enumerate(residency.core):
        for state, cycles in sorted(
            hist.sleep_cycles.items(), key=lambda kv: kv[0].name
        ):
            print(
                f"    gpm{gpm_id}: {state.name:<12} {cycles:>10.0f} cycles"
                f" ({cycles / hist.total_cycles:.1%})"
            )


def _run_main(argv: list[str]) -> int:
    """``repro run``: simulate one scaled-down workload, optionally sharded."""
    from repro.gpu.simulator import simulate

    parser = argparse.ArgumentParser(
        prog="repro run",
        description=(
            "Simulate a scaled-down workload once and print its timing and"
            " counter summary.  --shards N runs the per-GPM sharded engine"
            " (bit-identical results; see docs/PERFORMANCE.md)."
        ),
    )
    _add_observe_arguments(parser)
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="per-GPM shard engines (default: 1, the single-process engine)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        help="OS processes for the shards (default: min(shards, cores))",
    )
    args = parser.parse_args(argv)

    spec, workload, config = _observed_pair(parser, args)
    result = simulate(
        workload, config, shards=args.shards, shard_workers=args.shard_workers
    )
    print(f"{spec.abbr} on {config.label()}")
    sharding = result.sharding
    if sharding is None:
        print("  engine            single-process")
    elif sharding.fallback_reason is not None:
        print(f"  engine            single-process (fallback: {sharding.fallback_reason})")
    else:
        print(
            f"  engine            {sharding.shards} shards over"
            f" {sharding.workers} worker(s)"
        )
    counters = result.counters
    print(f"  cycles            {counters.elapsed_cycles:14.0f}")
    print(f"  instructions      {counters.total_instructions:14d}")
    print(f"  sm utilization    {result.sm_utilization:14.3f}")
    print(f"  l1 hit rate       {counters.l1_hit_rate:14.3f}")
    print(f"  l2 hit rate       {counters.l2_hit_rate:14.3f}")
    print(f"  events processed  {result.events_processed:14d}")
    print(f"  sim wall time     {result.wall_time_s:14.3f}s")
    print(f"  events/sec        {result.events_per_sec:14.0f}")
    return 0


def _trace_main(argv: list[str]) -> int:
    """``repro trace``: capture a Chrome trace of one scaled-down workload."""
    from repro.gpu.simulator import simulate
    from repro.trace import ChromeTracer

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Simulate a scaled-down workload with event tracing enabled and"
            " write Chrome trace_event JSON (open it at"
            " https://ui.perfetto.dev)."
        ),
    )
    _add_observe_arguments(parser)
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: <workload>_<gpms>gpm.trace.json)",
    )
    args = parser.parse_args(argv)

    spec, workload, config = _observed_pair(parser, args)
    tracer = ChromeTracer(process_name=f"{spec.abbr} on {config.label()}")
    result = simulate(workload, config, tracer=tracer)
    out = args.out or f"{spec.abbr.lower()}_{args.gpms}gpm.trace.json"
    path = tracer.write(out)
    print(f"{spec.abbr} on {config.label()}: {result.cycles:.0f} cycles,")
    print(f"  {len(tracer)} trace events on {len(tracer._tids)} tracks -> {path}")
    print("  open in https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def _profile_main(argv: list[str]) -> int:
    """``repro profile``: print component metrics for one workload."""
    from repro.core.energy_model import EnergyParams
    from repro.gpu.simulator import simulate
    from repro.trace import MetricsRegistry

    parser = argparse.ArgumentParser(
        prog="repro profile",
        description=(
            "Simulate a scaled-down workload and print its component metrics"
            " and counter summary."
        ),
    )
    _add_observe_arguments(parser)
    _add_idle_arguments(parser)
    args = parser.parse_args(argv)

    spec, workload, config = _observed_pair(parser, args)
    idle = _idle_config_from_args(args, config)
    if idle is not None:
        import dataclasses

        _check_deadline_feasible(args, spec, config)
        config = dataclasses.replace(config, idle=idle)
    metrics = MetricsRegistry()
    result = simulate(workload, config, metrics=metrics)
    counters = result.counters

    print(f"{spec.abbr} on {config.label()}")
    print(f"  cycles            {counters.elapsed_cycles:14.0f}")
    print(f"  instructions      {counters.total_instructions:14d}")
    print(f"  sm utilization    {result.sm_utilization:14.3f}")
    print(f"  l1 hit rate       {counters.l1_hit_rate:14.3f}")
    print(f"  l2 hit rate       {counters.l2_hit_rate:14.3f}")
    print(f"  remote fraction   {counters.remote_fraction:14.3f}")
    print(f"  inter-GPM bytes   {counters.inter_gpm_bytes:14d}")
    print(f"  events processed  {result.events_processed:14d}")
    print(f"  sim wall time     {result.wall_time_s:14.3f}s")
    print(f"  events/sec        {result.events_per_sec:14.0f}")

    breakdown = result.energy_breakdown(
        EnergyParams.for_operating_point(config, residency=result.residency)
    )
    print(f"  energy            {breakdown.total * 1e6:14.2f}uJ")
    _print_sleep_residency(result.residency)
    if breakdown.per_gpm:
        print()
        print(
            f"  {'gpm':<4} {'core scale':>10} {'busy uJ':>10}"
            f" {'stall uJ':>10} {'cache uJ':>10} {'total uJ':>10}"
        )
        for gpm in breakdown.per_gpm:
            cache_j = gpm.shared_to_rf + gpm.l1_to_rf + gpm.l2_to_l1
            print(
                f"  {gpm.gpm_id:<4d} {gpm.core_scale:>10.3f}"
                f" {gpm.sm_busy * 1e6:>10.2f} {gpm.sm_idle * 1e6:>10.2f}"
                f" {cache_j * 1e6:>10.2f} {gpm.total * 1e6:>10.2f}"
            )
    print()
    print(f"  {'metric':<32} {'count':>10} {'mean':>12} {'min':>12} {'max':>12}")
    for name, row in metrics.snapshot().items():
        if "mean" in row:
            print(
                f"  {name:<32} {row['count']:>10d} {row['mean']:>12.2f}"
                f" {row['min']:>12.2f} {row['max']:>12.2f}"
            )
        else:
            print(
                f"  {name:<32} {row['count']:>10d}"
                f" {'p50=' + format(row['p50'], '.0f'):>12}"
                f" {'p99=' + format(row['p99'], '.0f'):>12} {'':>12}"
            )
    return 0


def _dvfs_main(argv: list[str]) -> int:
    """``repro dvfs``: sweep one workload over the V/f ladder."""
    from repro.core.energy_model import EnergyModel, EnergyParams
    from repro.dvfs.governor import UtilizationGovernor
    from repro.dvfs.operating_point import K40_VF_CURVE
    from repro.dvfs.sweetspot import (
        METRICS,
        FrequencySample,
        SweetSpot,
        with_operating_point,
    )
    from repro.gpu.simulator import simulate

    parser = argparse.ArgumentParser(
        prog="repro dvfs",
        description=(
            "Simulate a scaled-down workload at every operating point of the"
            " K40 V/f ladder and report the energy sweet spot"
            " (see docs/POWER.md)."
        ),
    )
    _add_observe_arguments(parser)
    parser.add_argument(
        "--metric",
        choices=list(METRICS),
        default="edp",
        help="optimization metric for the sweet spot (default: edp)",
    )
    parser.add_argument(
        "--governed",
        action="store_true",
        help="also run the utilization governor and print its decisions",
    )
    parser.add_argument(
        "--cap-watts",
        type=float,
        default=None,
        help=(
            "also run under a chip power budget (PowerCapGovernor) and print"
            " its decisions and residency-priced energy"
        ),
    )
    _add_idle_arguments(parser)
    args = parser.parse_args(argv)

    spec, workload, config = _observed_pair(parser, args)
    # Reject malformed or infeasible idle knobs before the ladder sweep,
    # same as the cap-feasibility check below.  Building the governed
    # configuration here also validates the cap/governor mix (a budget and
    # a deadline cannot both own the operating-point policy).
    idle = _idle_config_from_args(args, config)
    idle_config = None
    if idle is not None:
        import dataclasses

        _check_deadline_feasible(args, spec, config)
        idle_config = dataclasses.replace(
            config, idle=idle, power_cap_watts=args.cap_watts
        )
    if args.cap_watts is not None:
        # Reject an unsatisfiable budget up front (one-line error via the
        # subcommand guard) instead of tracebacking after the (expensive)
        # ladder sweep.  Same feasibility check the sweep service runs at
        # admission (repro.service.admission.validate_request).
        from repro.dvfs.governor import PowerCapGovernor

        curve = config.dvfs.curve if config.dvfs is not None else K40_VF_CURVE
        PowerCapGovernor(
            curve=curve, cap_watts=args.cap_watts
        ).initial_points(config.num_gpms)
    anchor_hz = K40_VF_CURVE.anchor.frequency_hz
    samples = []
    for point in K40_VF_CURVE.points:
        pointed = with_operating_point(config, point)
        result = simulate(workload, pointed)
        params = EnergyParams.for_operating_point(pointed)
        energy = EnergyModel(params).evaluate(result.counters, result.seconds)
        samples.append(
            FrequencySample(
                point=point, delay_s=result.seconds, energy_j=energy.total
            )
        )
    spot = SweetSpot(
        workload=spec.abbr,
        config_label=config.label(),
        num_gpms=config.num_gpms,
        metric=args.metric,
        samples=tuple(samples),
    )

    print(f"{spec.abbr} on {config.label()}: V/f sweep ({args.metric})")
    header = (
        f"  {'point':<10} {'MHz':>5} {'V':>6} {'delay us':>10}"
        f" {'energy uJ':>10} {'EDP':>11} {'ED2P':>11}"
    )
    print(header)
    best = spot.best
    for sample in samples:
        point = sample.point
        marker = " <- sweet spot" if sample is best else (
            "  (anchor)" if point.frequency_hz == anchor_hz else ""
        )
        print(
            f"  {point.label():<10} {point.frequency_hz / 1e6:>5.0f}"
            f" {point.voltage_v:>6.2f} {sample.delay_s * 1e6:>10.2f}"
            f" {sample.energy_j * 1e6:>10.2f} {sample.edp:>11.3e}"
            f" {sample.ed2p:>11.3e}{marker}"
        )
    anchor_score = spot.sample_at(anchor_hz).score(args.metric)
    print(
        f"  sweet spot: {best.point.label()}"
        f" ({best.point.frequency_hz / 1e6:.0f} MHz,"
        f" {args.metric} {best.score(args.metric) / anchor_score:.3f}x"
        f" the anchor's)"
    )

    if args.governed:
        governor = UtilizationGovernor()
        result = simulate(workload, config, governor=governor)
        print()
        print(
            f"  governed run: {result.cycles:.0f} cycles,"
            f" {len(governor.trace)} interval decisions"
        )
        for decision in governor.trace:
            print(
                f"    cycle {decision.at_cycle:>10.0f}  gpm{decision.gpm_id}"
                f"  util={decision.utilization:.2f}"
                f"  -> {decision.point.label()}"
            )

    if args.cap_watts is not None:
        import dataclasses

        capped_config = dataclasses.replace(
            config, power_cap_watts=args.cap_watts
        )
        result = simulate(workload, capped_config)
        params = EnergyParams.for_operating_point(
            capped_config, residency=result.residency
        )
        energy = EnergyModel(params).evaluate(result.counters, result.seconds)
        trace = result.governor.trace
        print()
        print(
            f"  capped run ({args.cap_watts:g} W): {result.cycles:.0f} cycles,"
            f" {energy.total * 1e6:.2f} uJ residency-priced,"
            f" {len(trace)} interval decisions"
        )
        for decision in trace:
            print(
                f"    cycle {decision.at_cycle:>10.0f}  gpm{decision.gpm_id}"
                f"  util={decision.utilization:.2f}"
                f"  -> {decision.point.label()}"
                f"  (est {decision.estimated_chip_watts:.1f} W)"
            )
        if energy.per_gpm:
            print("    per-GPM core-domain energy (residency-priced):")
            for gpm in energy.per_gpm:
                print(
                    f"    gpm{gpm.gpm_id}: scale={gpm.core_scale:.3f}"
                    f" busy={gpm.sm_busy * 1e6:.2f}uJ"
                    f" stall={gpm.sm_idle * 1e6:.2f}uJ"
                    f" total={gpm.total * 1e6:.2f}uJ"
                )

    if idle_config is not None:
        result = simulate(workload, idle_config)
        params = EnergyParams.for_operating_point(
            idle_config, residency=result.residency
        )
        energy = EnergyModel(params).evaluate(result.counters, result.seconds)
        slept = result.residency.total_sleep_cycles
        print()
        print(
            f"  idle run ({idle_config.idle.label()}):"
            f" {result.cycles:.0f} cycles,"
            f" {energy.total * 1e6:.2f} uJ residency-priced,"
            f" {slept:.0f} gated cycles"
        )
        _print_sleep_residency(result.residency)
        if result.governor is not None and result.governor.trace:
            print(f"  {len(result.governor.trace)} interval decisions")
    return 0


def _add_screen_arguments(parser: argparse.ArgumentParser) -> None:
    """The screening knobs shared by sweep-shaped subcommands."""
    parser.add_argument(
        "--screen",
        choices=["roofline"],
        default=None,
        help=(
            "analytically rank the sweep grid and simulate only the top-k"
            " points (exact mode when omitted; see docs/MODELING.md)"
        ),
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=3,
        help="screened points simulated per curve (default: 3)",
    )
    parser.add_argument(
        "--guard",
        type=int,
        default=1,
        help="extra guard points simulated beyond top-k (default: 1)",
    )


def _roofline_main(argv: list[str]) -> int:
    """``repro roofline``: predicted-vs-simulated table for one workload."""
    parser = argparse.ArgumentParser(
        prog="repro roofline",
        description=(
            "Score a workload's V/f ladder with the closed-form roofline"
            " predictor and (unless --predict-only) compare every point"
            " against simulation (see docs/MODELING.md).  --check-bounds"
            " instead verifies the committed error-bound manifest"
            " (ROOFLINE_bounds.json) like CI does."
        ),
    )
    parser.add_argument(
        "--check-bounds",
        action="store_true",
        help="validate ROOFLINE_bounds.json against the golden configs",
    )
    # The workload is optional so `repro roofline --check-bounds` works bare.
    if "--check-bounds" in argv:
        extra = [arg for arg in argv if arg != "--check-bounds"]
        if extra:
            parser.error(f"--check-bounds takes no other arguments, got {extra}")
        from repro.tools.roofline_bounds import main as bounds_main

        return bounds_main([])
    _add_observe_arguments(parser)
    parser.add_argument(
        "--metric",
        choices=["edp", "ed2p"],
        default="edp",
        help="ranking metric (default: edp)",
    )
    parser.add_argument(
        "--predict-only",
        action="store_true",
        help="skip the simulations; print the analytic ranking only",
    )
    args = parser.parse_args(argv)

    from repro.core.energy_model import EnergyModel, EnergyParams
    from repro.dvfs.operating_point import K40_VF_CURVE
    from repro.dvfs.selection import best_candidate
    from repro.dvfs.sweetspot import with_operating_point
    from repro.gpu.simulator import simulate
    from repro.roofline.model import RooflinePredictor

    spec, workload, config = _observed_pair(parser, args)
    predictor = RooflinePredictor()
    points = K40_VF_CURVE.points
    predictions = {
        point: predictor.predict(spec, with_operating_point(config, point))
        for point in points
    }
    predicted_best = best_candidate(
        points,
        score=lambda p: predictions[p].score(args.metric),
        tie_key=lambda p: (p.frequency_hz, p.label()),
    )

    print(f"{spec.abbr} on {config.label()}: roofline ({args.metric})")
    if args.predict_only:
        print(
            f"  {'point':<10} {'MHz':>5} {'pred delay us':>13}"
            f" {'pred uJ':>9} {'pred EDP':>11} {'bound':>8}"
        )
        for point in points:
            pred = predictions[point]
            marker = " <- predicted best" if point is predicted_best else ""
            print(
                f"  {point.label():<10} {point.frequency_hz / 1e6:>5.0f}"
                f" {pred.delay_s * 1e6:>13.2f} {pred.energy_j * 1e6:>9.2f}"
                f" {pred.score(args.metric):>11.3e} {pred.bound:>8}{marker}"
            )
        return 0

    simulated = {}
    for point in points:
        pointed = with_operating_point(config, point)
        result = simulate(workload, pointed)
        params = EnergyParams.for_operating_point(pointed)
        energy = EnergyModel(params).evaluate(result.counters, result.seconds)
        simulated[point] = (result.seconds, energy.total)
    scores = {
        point: (
            delay * energy if args.metric == "edp" else delay**2 * energy
        )
        for point, (delay, energy) in simulated.items()
    }
    simulated_best = best_candidate(
        points,
        score=lambda p: scores[p],
        tie_key=lambda p: (p.frequency_hz, p.label()),
    )
    print(
        f"  {'point':<10} {'MHz':>5} {'pred us':>9} {'sim us':>9}"
        f" {'derr%':>6} {'pred uJ':>9} {'sim uJ':>9} {'eerr%':>6}"
        f" {'bound':>8}"
    )
    for point in points:
        pred = predictions[point]
        delay_s, energy_j = simulated[point]
        markers = []
        if point is predicted_best:
            markers.append("predicted best")
        if point is simulated_best:
            markers.append("simulated best")
        marker = f" <- {', '.join(markers)}" if markers else ""
        print(
            f"  {point.label():<10} {point.frequency_hz / 1e6:>5.0f}"
            f" {pred.delay_s * 1e6:>9.2f} {delay_s * 1e6:>9.2f}"
            f" {abs(pred.delay_s - delay_s) / delay_s * 100:>6.1f}"
            f" {pred.energy_j * 1e6:>9.2f} {energy_j * 1e6:>9.2f}"
            f" {abs(pred.energy_j - energy_j) / energy_j * 100:>6.1f}"
            f" {pred.bound:>8}{marker}"
        )
    agree = "agrees with" if predicted_best is simulated_best else "differs from"
    print(
        f"  predicted best {predicted_best.label()} {agree} simulated best"
        f" {simulated_best.label()}"
    )
    return 0


def _capsweep_main(argv: list[str]) -> int:
    """``repro capsweep``: EDPSE-vs-power-budget study (docs/POWER.md)."""
    from repro.experiments import capping_study

    parser = argparse.ArgumentParser(
        prog="repro capsweep",
        description=(
            "Sweep chip power budgets across GPM counts with the"
            " power-capping governor and report residency-priced EDPSE per"
            " budget (see docs/POWER.md)."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid (1/4 GPMs, two budgets, two workloads)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the rendered tables to this path",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="simulation worker processes (default: auto)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the sweep result cache",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="per-GPM shard engines per simulation (default: 1)",
    )
    parser.add_argument(
        "--governor",
        choices=["utilization", "gate-only", "race-to-idle"],
        default=None,
        help=(
            "attach per-GPM sleep states under this governor to every"
            " configuration in the sweep (composes with the cap: a"
            " race-to-idle ceiling rides inside the waterfill)"
        ),
    )
    _add_screen_arguments(parser)
    args = parser.parse_args(argv)

    settings_kwargs = {}
    if args.processes is not None:
        settings_kwargs["processes"] = args.processes
    if args.no_cache:
        settings_kwargs["use_cache"] = False
    if args.shards != 1:
        settings_kwargs["shards"] = args.shards
    runner = SweepRunner(SweepSettings(**settings_kwargs))

    screen_kwargs = {}
    if args.screen is not None:
        screen_kwargs = {
            "screen": args.screen, "top_k": args.top_k, "guard": args.guard
        }
    if args.governor is not None:
        from repro.dvfs.idle import IdleConfig

        screen_kwargs["idle"] = (
            IdleConfig()
            if args.governor == "gate-only"
            else IdleConfig(governor=args.governor)
        )
    start = time.time()
    if args.quick:
        result = capping_study.run(
            runner,
            gpm_counts=(1, 4),
            fractions=(None, 0.7),
            workloads=("Stream", "BPROP"),
            **screen_kwargs,
        )
    else:
        result = capping_study.run(runner, **screen_kwargs)
    rendered = result.render()
    print(rendered)
    print(f"[capsweep: {time.time() - start:.1f}s]")
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(rendered + "\n")
        print(f"wrote {args.out}")
    return 0


def _idlestudy_main(argv: list[str]) -> int:
    """``repro idlestudy``: governor comparison with real sleep states."""
    from repro.experiments import idle_study

    parser = argparse.ArgumentParser(
        prog="repro idlestudy",
        description=(
            "Compare race-to-idle, deadline-paced, gate-only, and"
            " utilization governors on per-GPM sleep states and report"
            " residency-priced EDPSE per workload shape"
            " (see docs/POWER.md)."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "one bursty + one steady workload under the"
            " static/utilization/race-to-idle trio (the CI smoke shape)"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the rendered tables to this path",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="simulation worker processes (default: auto)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the sweep result cache",
    )
    args = parser.parse_args(argv)

    settings_kwargs = {}
    if args.processes is not None:
        settings_kwargs["processes"] = args.processes
    if args.no_cache:
        settings_kwargs["use_cache"] = False
    runner = SweepRunner(SweepSettings(**settings_kwargs))

    start = time.time()
    result = idle_study.run(runner, quick=args.quick)
    rendered = result.render()
    print(rendered)
    print(f"[idlestudy: {time.time() - start:.1f}s]")
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(rendered + "\n")
        print(f"wrote {args.out}")
    return 0


def _figures_main(argv: list[str]) -> int:
    """``repro figures``: regenerate every fig* study into results/."""
    from repro.experiments.figures import FIGURES, run_figures

    parser = argparse.ArgumentParser(
        prog="repro figures",
        description=(
            "Regenerate the paper-figure logs end-to-end: every"
            " experiments/fig* study runs and writes its rendered tables"
            " (log.txt) plus headline numbers (summary.txt) into"
            " results/<figure>/ (see EXPERIMENTS.md)."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "smoke tier: shrunken workloads on a reduced grid, written to"
            " quick.txt/quick_summary.txt (gitignored) instead of the"
            " committed full-tier logs"
        ),
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(FIGURES),
        metavar="FIGURE",
        help=(
            "regenerate just this figure (repeatable; default: all of"
            f" {', '.join(FIGURES)})"
        ),
    )
    parser.add_argument(
        "--out",
        default="results",
        help="results root directory (default: results)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="simulation worker processes (default: auto)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="per-GPM shard engines per simulation (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the sweep result cache",
    )
    args = parser.parse_args(argv)

    settings_kwargs = {}
    if args.processes is not None:
        settings_kwargs["processes"] = args.processes
    if args.no_cache:
        settings_kwargs["use_cache"] = False
    if args.shards != 1:
        settings_kwargs["shards"] = args.shards
    runner = SweepRunner(SweepSettings(**settings_kwargs))

    start = time.time()
    written = run_figures(
        names=tuple(args.only) if args.only else None,
        out_dir=args.out,
        runner=runner,
        quick=args.quick,
        echo=print,
    )
    for name, fig_dir in written.items():
        print(f"wrote {fig_dir}/")
    print(f"[figures: {len(written)} figure(s), {time.time() - start:.1f}s]")
    return 0


def _serve_main(argv: list[str]) -> int:
    """``repro serve``: run the sweep service in the foreground."""
    from pathlib import Path

    from repro.service.server import ServiceConfig, run_service

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the sweep-as-a-service job queue: admission-validated"
            " submissions, size-classed priority lanes with aging,"
            " single-flight dedup, and a content-addressed result store"
            " shared with the sweep cache (see docs/SERVICE.md)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8787, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="concurrent job executions"
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="per-GPM shard engines per execution (default: 1)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=256, help="queue depth bound"
    )
    parser.add_argument(
        "--max-age-s", type=float, default=300.0,
        help="evict jobs pending longer than this (seconds)",
    )
    parser.add_argument(
        "--rate-per-s", type=float, default=None,
        help="per-client submission rate limit (default: unlimited)",
    )
    parser.add_argument(
        "--aging-seconds", type=float, default=30.0,
        help="priority aging interval (one lane class per this many seconds)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result store directory (default: the shared sweep cache)",
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="keep results in memory only",
    )
    args = parser.parse_args(argv)
    return run_service(
        ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            shards=args.shards,
            max_pending=args.max_pending,
            max_age_s=args.max_age_s,
            rate_per_s=args.rate_per_s,
            aging_seconds=args.aging_seconds,
            cache_dir=None if args.cache_dir is None else Path(args.cache_dir),
            use_disk_cache=not args.no_disk_cache,
        )
    )


def _parse_phase_schedule(text: str) -> list[dict]:
    """Decode ``prefill:64:1,decode:8:2`` into recipe phase entries."""
    from repro.errors import ConfigError

    entries = []
    for chunk in text.split(","):
        parts = chunk.strip().split(":")
        if not parts[0]:
            raise ConfigError(
                f"malformed phase entry {chunk!r}; expected"
                " phase:ctas[:kernels]"
            )
        if len(parts) > 3:
            raise ConfigError(
                f"malformed phase entry {chunk!r}; expected"
                " phase:ctas[:kernels]"
            )
        entry: dict = {"phase": parts[0]}
        try:
            if len(parts) > 1:
                entry["ctas"] = int(parts[1])
            if len(parts) > 2:
                entry["kernels"] = int(parts[2])
        except ValueError as error:
            raise ConfigError(
                f"malformed phase entry {chunk!r}: {error}"
            ) from error
        entries.append(entry)
    return entries


def _submit_main(argv: list[str]) -> int:
    """``repro submit``: send one job recipe to a running sweep service."""
    import json

    from repro.service.client import ServiceClient

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit one (workload, configuration) job to a running"
            " 'repro serve' instance and print how it was served"
            " (see docs/SERVICE.md)."
        ),
    )
    _add_observe_arguments(parser, workload_optional=True)
    parser.add_argument(
        "--full", action="store_true",
        help="simulate the full Table II workload instead of a shrunken copy",
    )
    parser.add_argument(
        "--phases", default=None, metavar="SCHEDULE",
        help=(
            "compose an LLM phase schedule instead of naming a workload:"
            " comma-separated phase:ctas[:kernels] entries, e.g."
            " 'prefill:64:1,decode:8:2' (see docs/WORKLOADS.md)"
        ),
    )
    parser.add_argument(
        "--tenants", default=None, metavar="CLIENTS",
        help=(
            "replicate the --phases schedule per tenant (comma-separated"
            " client ids, seed-decorrelated streams)"
        ),
    )
    parser.add_argument(
        "--bandwidth", choices=["1x-BW", "2x-BW"], default="2x-BW",
        help="inter-GPM bandwidth setting (default: 2x-BW)",
    )
    parser.add_argument(
        "--core-mhz", type=float, default=None,
        help="pin the core domain to this K40-ladder operating point",
    )
    parser.add_argument(
        "--cap-watts", type=float, default=None,
        help="run under a chip power budget (validated at admission)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="per-GPM shard engines for the execution (default: 1)",
    )
    parser.add_argument(
        "--screen", choices=["roofline"], default=None,
        help=(
            "attach the roofline prediction for this job to the response"
            " manifest (advisory; never changes the result or cache key)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="service address")
    parser.add_argument("--port", type=int, default=8787, help="service port")
    parser.add_argument(
        "--client", default="cli", help="client id for rate limiting"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the full outcome JSON"
    )
    args = parser.parse_args(argv)

    from repro.errors import ConfigError

    recipe: dict = {
        "gpms": args.gpms,
        "topology": args.topology,
        "bandwidth": args.bandwidth,
    }
    if args.phases is not None:
        if args.workload is not None:
            raise ConfigError(
                "--phases composes its own workload; drop the workload"
                " argument"
            )
        recipe["phases"] = _parse_phase_schedule(args.phases)
        if args.tenants is not None:
            recipe["tenants"] = [
                client.strip() for client in args.tenants.split(",")
            ]
    elif args.tenants is not None:
        raise ConfigError("--tenants requires a --phases schedule")
    elif args.workload is None:
        raise ConfigError("name a workload or compose one with --phases")
    else:
        recipe["workload"] = args.workload
        if args.full:
            recipe["full"] = True
        else:
            recipe["ctas"] = args.ctas
            recipe["kernels"] = args.kernels
    if args.core_mhz is not None:
        recipe["core_mhz"] = args.core_mhz
    if args.cap_watts is not None:
        recipe["cap_watts"] = args.cap_watts
    if args.shards != 1:
        recipe["shards"] = args.shards
    if args.screen is not None:
        recipe["screen"] = args.screen

    # Validate the recipe locally before any connection: a malformed
    # schedule is one stderr line + exit 2 here, identical to what the
    # server's admission would say, with zero engine (or network) time.
    from repro.service.job import request_from_recipe

    request_from_recipe(recipe)

    client = ServiceClient(args.host, args.port, client_id=args.client)
    outcome = client.submit_recipe(recipe)
    if args.json:
        print(json.dumps(outcome, indent=2, sort_keys=True))
        return 0
    job = outcome["job"]
    record = outcome["record"]
    print(f"{job['workload']} on {job['config_label']}: {outcome['cache']}")
    print(f"  job id        {job['job_id']}")
    print(f"  cache key     {job['cache_key']}")
    print(f"  lane          {job['lane']}")
    print(f"  queue wait    {job['queue_wait_s'] * 1e3:10.1f}ms")
    print(f"  execution     {job['exec_s'] * 1e3:10.1f}ms")
    print(f"  total         {job['total_s'] * 1e3:10.1f}ms")
    print(f"  sim seconds   {record['seconds']:12.6f}")
    screen = job.get("screen")
    if screen:
        if "error" in screen:
            print(f"  roofline      ({screen['error']})")
        else:
            err = abs(screen["predicted_delay_s"] - record["seconds"])
            err_pct = err / record["seconds"] * 100 if record["seconds"] else 0.0
            print(
                f"  roofline      predicted {screen['predicted_delay_s']:.6f}s"
                f" ({screen['bound']}-bound, {err_pct:.1f}% off)"
            )
    return 0


#: Subcommand dispatch: every entry runs under the same ConfigError guard,
#: so invalid configuration anywhere in the CLI is one stderr line + exit 2.
_SUBCOMMANDS = {
    "run": _run_main,
    "trace": _trace_main,
    "profile": _profile_main,
    "dvfs": _dvfs_main,
    "roofline": _roofline_main,
    "capsweep": _capsweep_main,
    "idlestudy": _idlestudy_main,
    "figures": _figures_main,
    "serve": _serve_main,
    "submit": _submit_main,
}


def _guarded(name: str, command, argv: list[str]) -> int:
    """Uniform error surface for every subcommand.

    ``ConfigError`` (bad grids, infeasible caps, malformed recipes),
    ``ExperimentError`` (bad study knobs like an unknown screen mode), and
    ``ServiceError`` (a service turned the request away) all map to one
    ``repro <name>: <message>`` line on stderr and exit code 2 — never a
    traceback, never argparse's multi-line usage dump.
    """
    from repro.errors import ConfigError, ExperimentError, ServiceError

    try:
        return command(argv)
    except (ConfigError, ExperimentError, ServiceError) as error:
        print(f"repro {name}: {error}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments, run experiments, print their rows."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _guarded(argv[0], _SUBCOMMANDS[argv[0]], argv[1:])
    if argv and argv[0] == "bench":
        from repro.tools.bench_engine import main as bench_main

        return _guarded("bench", bench_main, argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'Understanding the Future of"
            " Energy Efficiency in Multi-Module GPUs' (HPCA 2019)."
        ),
        epilog=(
            "Observability subcommands: 'repro trace <workload>' captures a"
            " Perfetto-viewable Chrome trace; 'repro profile <workload>'"
            " prints component metrics; 'repro dvfs <workload>' sweeps the"
            " V/f ladder and reports the energy sweet spot; 'repro capsweep'"
            " sweeps chip power budgets and reports residency-priced EDPSE;"
            " 'repro idlestudy' compares sleep-state governors; 'repro"
            " figures' regenerates every fig* log in results/; 'repro"
            " bench' measures simulator throughput.  See"
            " docs/OBSERVABILITY.md, docs/POWER.md, and docs/PERFORMANCE.md."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(_EXPERIMENTS) + ["all"],
        metavar="experiment",
        help="which tables/figures to regenerate ('all' for everything)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="simulation worker processes (default: auto)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the sweep result cache",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "per-GPM shard engines per simulation (bit-identical results;"
            " default: 1)"
        ),
    )
    _add_screen_arguments(parser)
    args = parser.parse_args(argv)

    def _experiments_main(_argv: list[str]) -> int:
        from repro.errors import ConfigError

        settings_kwargs = {}
        if args.processes is not None:
            settings_kwargs["processes"] = args.processes
        if args.no_cache:
            settings_kwargs["use_cache"] = False
        if args.shards != 1:
            settings_kwargs["shards"] = args.shards
        runner = SweepRunner(SweepSettings(**settings_kwargs))

        # Experiments whose grids the roofline screen can prune.
        screenable = {
            "sweetspot": sweetspot_study.run,
            "capping": capping_study.run,
        }
        if "all" in args.experiments:
            names = sorted(_EXPERIMENTS)
        else:
            names = list(dict.fromkeys(args.experiments))
        if args.screen is not None:
            unsupported = [n for n in names if n not in screenable]
            if unsupported:
                raise ConfigError(
                    f"--screen applies to {sorted(screenable)} only,"
                    f" got {unsupported}"
                )
        for name in names:
            start = time.time()
            if args.screen is not None and name in screenable:
                result = screenable[name](
                    runner, screen=args.screen,
                    top_k=args.top_k, guard=args.guard,
                )
            else:
                result = _EXPERIMENTS[name](runner)
            print(result.render())
            print(f"[{name}: {time.time() - start:.1f}s]")
            print()
        return 0

    # Experiments run under the same guard as the subcommands, so e.g.
    # `repro sweetspot --shards 0` fails with one line and exit 2 too.
    return _guarded(args.experiments[0], _experiments_main, [])


if __name__ == "__main__":
    sys.exit(main())
