"""Silicon measurement substrate.

The paper calibrates and validates GPUJoule against a physical Tesla K40 read
through NVML's on-board power sensor.  Offline we substitute a synthetic
*silicon* model — a ground-truth energy behaviour that is richer than the
top-down model (per-opcode perturbations, an interaction term the model does
not capture, a memory-subsystem utilization floor) — observed through an
NVML-like sensor with the real sensor's 15 ms refresh period.  The same
calibration code path the authors ran against hardware runs here against the
substitute, including its documented failure modes (Fig. 4b outliers).
"""

from repro.power.silicon import SiliconEffects, SiliconGpu
from repro.power.sensor import PowerSensor, SensorConfig
from repro.power.meter import Measurement, PowerMeter

__all__ = [
    "SiliconEffects",
    "SiliconGpu",
    "PowerSensor",
    "SensorConfig",
    "Measurement",
    "PowerMeter",
]
