"""Synthetic silicon: the ground-truth GPU energy behaviour.

This is the stand-in for the physical Tesla K40.  It prices a run from the
same counters the simulator produces, but with *more physics than the
top-down model captures*, so that calibration and validation exercise real
discrepancies instead of tautologically recovering the model:

* every opcode's true EPI deviates from the nominal table by a deterministic
  per-opcode perturbation (process/measurement spread);
* instruction *mixes* pay a small interaction overhead (operand-collector and
  scheduler switching activity the isolated microbenchmarks never see);
* the memory subsystem has a utilization floor: DRAM and L2 burn static power
  whether or not traffic flows.  Workloads that barely touch memory
  (RSBench, CoMD) therefore consume energy the transaction-count model
  misses — the paper's explanation for those Fig. 4b outliers;
* the whole platform has an idle power floor.

All perturbations are seeded and deterministic: two SiliconGpu instances with
the same seed are the same "chip".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.epi_tables import (
    EPI_TABLE_NJ,
    EPT_TABLE,
    TransactionKind,
)
from repro.errors import ConfigError
from repro.gpu.counters import CounterSet
from repro.isa.opcodes import Opcode
from repro.units import SECTOR_BYTES, WARP_SIZE, nj


@dataclass(frozen=True)
class SiliconEffects:
    """Magnitudes of the behaviours the top-down model does not capture."""

    #: Relative spread of true per-opcode EPIs around the nominal table.
    epi_spread: float = 0.06
    #: Relative spread of true per-level EPTs around the nominal table.
    ept_spread: float = 0.05
    #: Energy overhead per *mixed* instruction pair, as a fraction of EPI.
    mix_interaction: float = 0.02
    #: Power (W) the lit-but-underutilized memory subsystem burns: DLLs,
    #: I/O termination, row buffers.  Charged as ``W * (1 - util)^k`` while
    #: any DRAM traffic flows.  The sharp exponent concentrates the effect on
    #: sparse-access workloads (RSBench/CoMD at <10% utilization pay nearly
    #: all of it; streaming workloads pay almost none) — the energy the
    #: transaction-count model underestimates (Fig. 4b).
    low_util_memory_w: float = 58.0
    #: Falloff exponent k of the utilization gate.
    low_util_exponent: float = 7.0
    #: Peak DRAM bandwidth (GB/s) for the utilization computation.
    dram_peak_gbps: float = 280.0
    #: Idle power of the whole board (W) — what NVML reads at rest.
    idle_power_w: float = 25.0
    #: Stall-cycle energy actually burned by an idle SM pipeline (nJ/cycle).
    true_stall_nj: float = 2.1

    def __post_init__(self) -> None:
        for name in (
            "epi_spread",
            "ept_spread",
            "mix_interaction",
            "low_util_memory_w",
            "idle_power_w",
            "true_stall_nj",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"silicon effect {name!r} must be non-negative")
        if self.dram_peak_gbps <= 0:
            raise ConfigError("dram_peak_gbps must be positive")


class SiliconGpu:
    """One deterministic 'chip' whose energy behaviour can be measured."""

    def __init__(self, effects: SiliconEffects | None = None, seed: int = 40):
        self.effects = effects or SiliconEffects()
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._true_epi_nj: dict[Opcode, float] = {}
        for opcode in sorted(EPI_TABLE_NJ, key=lambda op: op.value):
            nominal = EPI_TABLE_NJ[opcode]
            factor = 1.0 + rng.normal(0.0, self.effects.epi_spread)
            self._true_epi_nj[opcode] = max(nominal * factor, nominal * 0.5)
        self._true_ept_nj: dict[TransactionKind, float] = {}
        for kind in TransactionKind:
            nominal_nj, _pj_bit, _nbytes = EPT_TABLE[kind]
            factor = 1.0 + rng.normal(0.0, self.effects.ept_spread)
            self._true_ept_nj[kind] = max(nominal_nj * factor, nominal_nj * 0.5)

    # ------------------------------------------------------------- ground truth

    def true_epi_nj(self, opcode: Opcode) -> float:
        """This chip's actual energy per thread-instruction (nJ)."""
        return self._true_epi_nj[opcode]

    def true_ept_nj(self, kind: TransactionKind) -> float:
        """This chip's actual energy per transaction (nJ)."""
        return self._true_ept_nj[kind]

    # ---------------------------------------------------------------- energy

    def _mix_entropy(self, instructions: dict[Opcode, int]) -> float:
        """Shannon entropy (bits) of the instruction mix — 0 for pure loops."""
        total = sum(instructions.values())
        if total == 0:
            return 0.0
        entropy = 0.0
        for count in instructions.values():
            if count > 0:
                p = count / total
                entropy -= p * math.log2(p)
        return entropy

    def dynamic_energy_j(self, counters: CounterSet, exec_time_s: float) -> float:
        """True dynamic energy (everything above the idle floor) in joules."""
        if exec_time_s < 0:
            raise ConfigError(f"negative execution time: {exec_time_s!r}")
        effects = self.effects

        compute_nj = 0.0
        mean_epi_nj = 0.0
        total_instr = 0
        for opcode, count in counters.instructions.items():
            epi = self._true_epi_nj.get(opcode)
            if epi is None:
                raise ConfigError(f"silicon has no EPI for opcode {opcode}")
            compute_nj += epi * count * WARP_SIZE
            mean_epi_nj += epi * count
            total_instr += count
        # Interaction overhead grows with the heterogeneity of the mix.
        if total_instr > 0:
            mean_epi_nj /= total_instr
            entropy = self._mix_entropy(counters.instructions)
            compute_nj += (
                effects.mix_interaction
                * entropy
                * mean_epi_nj
                * total_instr
                * WARP_SIZE
            )

        movement_nj = (
            self._true_ept_nj[TransactionKind.SHARED_TO_RF] * counters.shared_rf_txns
            + self._true_ept_nj[TransactionKind.L1_TO_RF] * counters.l1_rf_txns
            + self._true_ept_nj[TransactionKind.L2_TO_L1] * counters.l2_l1_txns
            + self._true_ept_nj[TransactionKind.DRAM_TO_L2] * counters.dram_l2_txns
        )
        stall_nj = effects.true_stall_nj * counters.sm_idle_cycles

        # Utilization-gated memory-subsystem power: only while DRAM traffic
        # flows, falling off sharply as the access stream approaches peak
        # bandwidth (where per-transaction costs fully amortize it).
        low_util_j = 0.0
        dram_bytes = counters.dram_l2_txns * SECTOR_BYTES
        if dram_bytes > 0 and exec_time_s > 0:
            achieved_gbps = dram_bytes / exec_time_s / 1e9
            utilization = min(1.0, achieved_gbps / effects.dram_peak_gbps)
            low_util_j = (
                effects.low_util_memory_w
                * (1.0 - utilization) ** effects.low_util_exponent
                * exec_time_s
            )
        return nj(compute_nj + movement_nj + stall_nj) + low_util_j

    def total_energy_j(self, counters: CounterSet, exec_time_s: float) -> float:
        """True wall-plug energy, including the idle floor."""
        return (
            self.dynamic_energy_j(counters, exec_time_s)
            + self.effects.idle_power_w * exec_time_s
        )

    def true_power_w(self, counters: CounterSet, exec_time_s: float) -> float:
        """Mean true power over the run (what a perfect sensor would read)."""
        if exec_time_s <= 0:
            raise ConfigError("power requires a positive execution time")
        return self.total_energy_j(counters, exec_time_s) / exec_time_s

    @property
    def idle_power_w(self) -> float:
        return self.effects.idle_power_w
