"""Steady-state power measurement harness.

Bridges a workload's counters (from the performance simulator or a
microbenchmark's analytic execution) to a sensor reading, producing the
:class:`~repro.core.calibration.MeasuredRun` records the calibration math
consumes.  This is the substitute for "run the binary, poll NVML".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import MeasuredRun
from repro.errors import CalibrationError
from repro.gpu.counters import CounterSet
from repro.power.sensor import PowerSensor
from repro.power.silicon import SiliconGpu


@dataclass(frozen=True)
class Measurement:
    """A completed power/energy measurement of one run."""

    power_active_w: float
    power_idle_w: float
    exec_time_s: float

    @property
    def energy_j(self) -> float:
        """Total wall-plug energy over the run as the sensor saw it."""
        return self.power_active_w * self.exec_time_s

    @property
    def dynamic_energy_j(self) -> float:
        """Energy above the idle floor (what calibration divides by counts)."""
        return (self.power_active_w - self.power_idle_w) * self.exec_time_s


class PowerMeter:
    """Measures runs on a :class:`SiliconGpu` through a :class:`PowerSensor`."""

    def __init__(self, silicon: SiliconGpu, sensor: PowerSensor | None = None):
        self.silicon = silicon
        self.sensor = sensor or PowerSensor()

    def measure(self, counters: CounterSet, exec_time_s: float) -> Measurement:
        """Measure one run's steady-state power through the sensor.

        Short runs (relative to the sensor refresh period) blend with the
        surrounding idle power — deliberately reproducing the on-board
        sensor's resolution limits.
        """
        if exec_time_s <= 0:
            raise CalibrationError("cannot measure a zero-duration run")
        true_power = self.silicon.true_power_w(counters, exec_time_s)
        observed = self.sensor.measure_roi(
            roi_duration_s=exec_time_s,
            roi_power_w=true_power,
            surrounding_power_w=self.silicon.idle_power_w,
        )
        return Measurement(
            power_active_w=observed,
            power_idle_w=self.silicon.idle_power_w,
            exec_time_s=exec_time_s,
        )

    def measured_run(
        self, counters: CounterSet, exec_time_s: float, event_count: int
    ) -> MeasuredRun:
        """Package a measurement for the Eq. 5 calibration math."""
        measurement = self.measure(counters, exec_time_s)
        return MeasuredRun(
            power_active_w=measurement.power_active_w,
            power_idle_w=measurement.power_idle_w,
            exec_time_s=measurement.exec_time_s,
            event_count=event_count,
        )
