"""NVML-like on-board power sensor.

The Tesla K40's board sensor refreshes roughly every 15 ms and quantizes its
readings; the paper attributes the BFS/MiniAMR validation outliers to exactly
this limitation — kernels lasting hundreds of microseconds are averaged
together with surrounding idle time inside one refresh window.

The sensor here models that mechanism directly: given a true power waveform
(a sequence of (duration, power) phases), it produces window-averaged,
quantized samples.  A measurement taken over a short region of interest sees
the *window averages overlapping the ROI*, not the true ROI power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class SensorConfig:
    """Sampling behaviour of the on-board sensor."""

    refresh_period_s: float = 15e-3
    quantization_w: float = 0.25

    def __post_init__(self) -> None:
        if self.refresh_period_s <= 0:
            raise ConfigError("refresh period must be positive")
        if self.quantization_w < 0:
            raise ConfigError("quantization must be non-negative")


@dataclass(frozen=True)
class Phase:
    """One constant-power stretch of the true waveform."""

    duration_s: float
    power_w: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ConfigError("phase duration must be non-negative")
        if self.power_w < 0:
            raise ConfigError("phase power must be non-negative")


class PowerSensor:
    """Window-averaging, quantizing sensor over a phase waveform."""

    def __init__(self, config: SensorConfig | None = None):
        self.config = config or SensorConfig()

    def _quantize(self, power_w: float) -> float:
        step = self.config.quantization_w
        if step == 0:
            return power_w
        return round(power_w / step) * step

    def sample_waveform(self, phases: list[Phase]) -> list[float]:
        """Window-averaged, quantized samples covering the whole waveform.

        Each sample is the true average power over one refresh window; the
        final (partial) window is averaged over its actual coverage, matching
        a sensor that latches on its own clock.
        """
        if not phases:
            raise ConfigError("waveform needs at least one phase")
        period = self.config.refresh_period_s
        samples: list[float] = []
        window_energy = 0.0
        window_time = 0.0
        for phase in phases:
            remaining = phase.duration_s
            while remaining > 0:
                room = period - window_time
                take = remaining if remaining < room else room
                window_energy += phase.power_w * take
                window_time += take
                remaining -= take
                if window_time >= period - 1e-15:
                    samples.append(self._quantize(window_energy / window_time))
                    window_energy = 0.0
                    window_time = 0.0
        # Guard against float dust: phase durations that sum to an exact
        # multiple of the period can leave a vanishing residual window
        # (~1e-17 s) that a real sensor would never latch.
        if window_time > 1e-12:
            samples.append(self._quantize(window_energy / window_time))
        return samples

    def measure_roi(
        self,
        roi_duration_s: float,
        roi_power_w: float,
        surrounding_power_w: float,
    ) -> float:
        """Power reported for a region of interest embedded in idle time.

        Models the calibration harness's read: the ROI executes surrounded by
        ``surrounding_power_w`` (host-side gaps, launch overhead at idle
        power).  When the ROI spans many windows, the middle windows read true
        steady-state power; when it is shorter than one window the reading
        collapses toward the surroundings — the short-kernel failure mode.
        """
        if roi_duration_s <= 0:
            raise ConfigError("ROI duration must be positive")
        period = self.config.refresh_period_s
        if roi_duration_s >= 2 * period:
            # At least one fully-covered window exists; steady state is seen.
            return self._quantize(roi_power_w)
        # ROI shorter than two windows: the best available sample is one
        # window that the ROI only partially fills.
        coverage = min(roi_duration_s / period, 1.0)
        blended = coverage * roi_power_w + (1.0 - coverage) * surrounding_power_w
        return self._quantize(blended)
