"""Analytic FCFS resources for the discrete-event engine.

The GPU model is dominated by *bandwidth-shaped* contention: DRAM channels,
inter-GPM links, and SM issue slots all behave like first-come-first-served
servers with a fixed service rate.  Rather than queueing callbacks, each server
keeps a single ``free_at`` horizon: a request arriving at time ``t`` for
``size`` units completes at ``max(t, free_at) + size/rate`` and pushes the
horizon forward.  This gives exact FCFS queueing semantics with O(1) work per
request and no events of its own — the requesting process simply sleeps until
the returned completion time.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.engine import Engine


class BandwidthServer:
    """A bandwidth-limited, FCFS service point (DRAM channel, link, port).

    Attributes:
        rate: service rate in units (typically bytes) per cycle.
        busy_time: cycles spent actively serving (for utilization accounting).
        units_served: total units transferred through the server.
        requests: number of reservations made.
    """

    __slots__ = ("engine", "name", "rate", "free_at", "busy_time", "units_served", "requests")

    def __init__(self, engine: Engine, rate: float, name: str = ""):
        if rate <= 0:
            raise SimulationError(f"server {name!r} needs a positive rate, got {rate!r}")
        self.engine = engine
        self.name = name
        self.rate = rate
        self.free_at = 0.0
        self.busy_time = 0.0
        self.units_served = 0.0
        self.requests = 0

    def reserve(self, size: float, earliest: float | None = None) -> float:
        """Reserve ``size`` units of service.

        Args:
            size: units (bytes/instructions) to serve.
            earliest: absolute time before which service cannot begin (e.g.
                when the request only *arrives* here after an upstream stage).
                Defaults to the current simulation time.

        Returns the absolute completion time.  The caller is responsible for
        sleeping until that time (``yield engine.wait_until(t)``).
        """
        if size < 0:
            raise SimulationError(f"negative reservation on {self.name!r}: {size!r}")
        arrival = self.engine.now if earliest is None else earliest
        start = self.free_at if self.free_at > arrival else arrival
        service = size / self.rate
        finish = start + service
        self.free_at = finish
        self.busy_time += service
        self.units_served += size
        self.requests += 1
        return finish

    def queue_delay(self) -> float:
        """Cycles a request arriving now would wait before service begins."""
        return max(0.0, self.free_at - self.engine.now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` cycles the server spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:
        return f"BandwidthServer({self.name!r}, rate={self.rate:.3f}/cyc)"


class ThroughputServer(BandwidthServer):
    """A :class:`BandwidthServer` whose units are *instructions*, not bytes.

    Used for SM issue bandwidth: reserving ``n`` instructions models the issue
    stage being occupied for ``n / issue_rate`` cycles.  Identical mechanics,
    separate type so counters and reprs stay self-describing.
    """

    def __repr__(self) -> str:
        return f"ThroughputServer({self.name!r}, rate={self.rate:.3f} instr/cyc)"


class LatencyStation:
    """A fixed-latency, infinite-bandwidth pipeline stage.

    Models structures whose occupancy never limits throughput in this study
    (e.g. cache tag pipelines): every request is delayed by ``latency`` cycles
    with no queueing.
    """

    __slots__ = ("engine", "name", "latency", "requests")

    def __init__(self, engine: Engine, latency: float, name: str = ""):
        if latency < 0:
            raise SimulationError(
                f"station {name!r} needs a non-negative latency, got {latency!r}"
            )
        self.engine = engine
        self.name = name
        self.latency = latency
        self.requests = 0

    def delay(self) -> float:
        """Return the absolute time a request entering now exits the stage."""
        self.requests += 1
        return self.engine.now + self.latency

    def __repr__(self) -> str:
        return f"LatencyStation({self.name!r}, latency={self.latency})"
