"""Per-GPM sharded execution of the multi-module GPU model.

The single-process engine interleaves every GPM's events on one heap.  For
*decoupled* workloads — no page is touched by more than one GPM and no
access ever crosses a module boundary — that interleaving is unnecessary:
each GPM's timeline is a pure function of its own state, so each module (or
group of modules) can run its kernels on a **private engine** and the chip
only needs to synchronize at kernel boundaries, exactly where the
bulk-synchronous driver already barriers.

The contract of this module is **bit identity**: counters (including the
per-GPM shards), DVFS residency, kernel timing, and the
``events_processed`` total of a sharded run are exactly equal to the
single-process run of the same (workload, config) pair.  That holds because

* per-GPM event outcomes depend only on module-local state (caches, DRAM
  horizon, issue servers) and on absolute time values, never on the global
  event interleaving;
* every kernel starts at the same absolute barrier time on every shard
  (each shard engine's clock is jumped to the chip-wide barrier, which is
  safe at quiescence: the heap and now-queue are empty);
* the governor/residency bookkeeping is replicated on the coordinator from
  the same per-GPM busy-cycle inputs, in the same order, with the same
  float association as :class:`~repro.gpu.multigpu.MultiGpu`;
* the chip totals merge the per-GPM shards in GPM-id order — the same
  association order the single-process driver uses;
* the event count differs from the shard engines' sum only by the driver
  process's own callbacks, which are reconstructed exactly: one initial
  driver step plus one barrier-hit callback per non-empty GPM partition
  per kernel.

Workloads that *do* couple modules (shared interleaved pages, halo traffic
across a partition boundary, striped placement) cannot be split without
changing remote-access timing, so :func:`run_sharded` detects coupling
statically — from the same vectorized address synthesis the run would use —
and falls back to the single-process engine.  The fallback is the exact
single-process path, so it is trivially bit-identical; the
:class:`~repro.gpu.simulator.ShardingSummary` on the result records why.

Layering note: this module lives in :mod:`repro.sim` for discoverability
(it is the sharded *execution mode* of the engine) but is layered above
:mod:`repro.gpu` — it drives :class:`~repro.gpu.gpm.Gpm` instances the same
way ``MultiGpu`` does.  Nothing inside :mod:`repro.gpu` imports it at
module scope.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.dvfs.config import IDENTITY_SCALES
from repro.dvfs.governor import Governor, GpmObservation
from repro.dvfs.idle import governor_for
from repro.dvfs.operating_point import K40_OPERATING_POINT, K40_VF_CURVE, OperatingPoint, VfCurve
from repro.dvfs.residency import DvfsResidency, ResidencyHistogram
from repro.errors import ConfigError, SimulationError
from repro.gpu.config import GpuConfig
from repro.gpu.counters import CounterSet
from repro.gpu.cta_scheduler import CtaPartitioning, partition_ctas
from repro.gpu.gpm import Gpm
from repro.gpu.multigpu import KernelStats
from repro.gpu.simulator import GpuSimulator, RunResult, ShardingSummary
from repro.isa.kernel import Workload
from repro.memory.coherence import SoftwareCoherence
from repro.memory.pages import PagePlacement, PlacementPolicy
from repro.sim.engine import Engine
from repro.trace.metrics import MetricsRegistry
from repro.units import PAGE_BYTES

_PAGE_SHIFT = PAGE_BYTES.bit_length() - 1

#: CTAs synthesized per analyzer batch: bounds peak array size and lets the
#: coupling scan bail out early on the first conflicting page.
_ANALYZER_CHUNK_CTAS = 64


# --------------------------------------------------------------------- planning


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of GPM ids to shards (one private engine per shard)."""

    groups: tuple[tuple[int, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.groups)


def plan_shards(num_gpms: int, shards: int) -> ShardPlan:
    """Split ``num_gpms`` modules into ``shards`` contiguous groups.

    Mirrors the contiguous CTA partitioner: the first ``num_gpms % shards``
    groups get one extra module.  Requests for more shards than modules
    clamp to one module per shard.
    """
    if num_gpms <= 0:
        raise ConfigError(f"num_gpms must be positive, got {num_gpms}")
    if shards <= 0:
        raise ConfigError(f"shards must be positive, got {shards}")
    shards = min(shards, num_gpms)
    base, extra = divmod(num_gpms, shards)
    groups = []
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return ShardPlan(groups=tuple(groups))


# ------------------------------------------------------------ coupling analysis


def _contiguous_runs(cta_ids: list[int]):
    """Yield ``(lo, hi)`` half-open runs of consecutive ids."""
    iterator = iter(cta_ids)
    lo = prev = next(iterator)
    for cta in iterator:
        if cta != prev + 1:
            yield lo, prev + 1
            lo = cta
        prev = cta
    yield lo, prev + 1


def coupling_reason(
    workload: Workload,
    config: GpuConfig,
    partitioning: CtaPartitioning = CtaPartitioning.CONTIGUOUS,
) -> str | None:
    """Why this (workload, config) pair cannot shard, or ``None`` if it can.

    The check is static and timing-independent: it walks the same vectorized
    address synthesis the run would execute (``_synthesize`` on each
    kernel's program factory) and accumulates, across **all** kernels, which
    GPM partitions touch which pages.  The pair is decoupled exactly when

    * no first-touch page is touched by more than one GPM (page homes and
      cache/DRAM state persist across kernels, hence the cross-kernel
      accumulation), and
    * every interleaved/striped page — whose home is ``page % num_gpms``
      regardless of toucher — is only ever touched by its home GPM.

    Shared-memory (LDS) accesses never reach page placement and are
    excluded.  Program factories without batched synthesis are reported as
    coupled: without the address stream there is nothing to prove.
    """
    num_gpms = config.num_gpms
    if num_gpms == 1:
        return None
    striped_all = config.placement_policy is PlacementPolicy.STRIPED
    interleaved_page = (
        None
        if workload.interleaved_base is None
        else workload.interleaved_base >> _PAGE_SHIFT
    )
    owner: dict[int, int] = {}
    for kernel in workload.kernels:
        synthesize = getattr(kernel.program_factory, "_synthesize", None)
        if synthesize is None:
            return (
                f"kernel {kernel.name!r}: program factory does not expose"
                " batched address synthesis"
            )
        partitions = partition_ctas(kernel.num_ctas, num_gpms, partitioning)
        for gpm_id, cta_ids in enumerate(partitions):
            if not cta_ids:
                continue
            for lo, hi in _contiguous_runs(cta_ids):
                for start in range(lo, hi, _ANALYZER_CHUNK_CTAS):
                    end = min(start + _ANALYZER_CHUNK_CTAS, hi)
                    addresses, _is_store, is_lds = synthesize(start, end)
                    pages = np.unique(addresses[~is_lds] >> _PAGE_SHIFT)
                    if striped_all:
                        interleaved = np.ones(pages.shape, dtype=bool)
                    elif interleaved_page is not None:
                        interleaved = pages >= interleaved_page
                    else:
                        interleaved = np.zeros(pages.shape, dtype=bool)
                    striped_pages = pages[interleaved]
                    if striped_pages.size and bool(
                        np.any(striped_pages % num_gpms != gpm_id)
                    ):
                        return (
                            f"kernel {kernel.name!r}: GPM {gpm_id} touches"
                            " interleaved pages homed on other modules"
                        )
                    for page in pages[~interleaved].tolist():
                        previous = owner.get(page)
                        if previous is None:
                            owner[page] = gpm_id
                        elif previous != gpm_id:
                            return (
                                f"kernel {kernel.name!r}: page {page:#x} is"
                                f" touched by GPM {previous} and GPM {gpm_id}"
                            )
    return None


# ------------------------------------------------------------------ shard runtime


class _ShardRuntime:
    """One shard: a private engine driving a subset of the chip's GPMs.

    The shard replicates exactly what :class:`~repro.gpu.multigpu.MultiGpu`
    builds for its modules — same GPM ids, same per-GPM DVFS scales, a page
    table spanning the *full* chip (so interleaved homes compute
    identically), and a per-shard software-coherence instance.  The memory
    hierarchies are connected with no topology: a decoupled workload never
    takes the remote path, and if the static analysis were ever wrong the
    first remote access raises instead of silently diverging.
    """

    def __init__(
        self,
        config: GpuConfig,
        gpm_ids: tuple[int, ...],
        interleaved_base: int | None,
        initial_points: list[OperatingPoint] | None,
        curve: VfCurve | None,
    ):
        self.config = config
        self.engine = Engine()
        self.placement = PagePlacement(
            num_gpms=config.num_gpms, policy=config.placement_policy
        )
        self.placement.set_interleaved_from(interleaved_base)
        self.counters: dict[int, CounterSet] = {}
        self.gpms: list[Gpm] = []
        for gpm_id in gpm_ids:
            scales = (
                IDENTITY_SCALES
                if config.dvfs is None
                else config.dvfs.scales_for_gpm(gpm_id)
            )
            shard_counters = CounterSet()
            gpm = Gpm(
                self.engine, gpm_id, config.gpm, self.placement,
                shard_counters, scales=scales,
            )
            gpm.memory.connect(None, [])
            self.counters[gpm_id] = shard_counters
            self.gpms.append(gpm)
        self.coherence = SoftwareCoherence()
        for gpm in self.gpms:
            self.coherence.register_l2(gpm.gpm_id, gpm.memory.l2)
        self._curve = curve
        if initial_points is not None and curve is not None:
            for gpm in self.gpms:
                gpm.apply_core_point(initial_points[gpm.gpm_id], curve)

    def run_epoch(self, kernel, partitions: list[list[int]]) -> float:
        """Run this shard's share of one kernel to quiescence."""
        engine = self.engine
        for gpm in self.gpms:
            cta_ids = partitions[gpm.gpm_id]
            if cta_ids:
                engine.process(
                    gpm.run_kernel(kernel, cta_ids),
                    name=f"gpm{gpm.gpm_id}.{kernel.name}",
                )
        return engine.run()

    def busy_by_gpm(self) -> dict[int, float]:
        return {gpm.gpm_id: gpm.busy_cycles() for gpm in self.gpms}

    def close_epoch(
        self, barrier: float, new_points: dict[int, OperatingPoint] | None
    ) -> None:
        """Advance to the chip-wide barrier and apply governor decisions.

        Jumping the clock directly is safe: ``run_epoch`` returned at
        quiescence, so the heap and now-queue are empty and no callback can
        observe the skipped interval.
        """
        self.engine.now = barrier
        if new_points:
            for gpm in self.gpms:
                point = new_points.get(gpm.gpm_id)
                if point is not None:
                    gpm.apply_core_point(point, self._curve)
        if self.config.num_gpms > 1:
            self.coherence.kernel_boundary()

    def finalize(self, elapsed: float):
        """Fill per-GPM utilization counters; return (counters, events, metrics)."""
        for gpm in self.gpms:
            shard = self.counters[gpm.gpm_id]
            shard.elapsed_cycles = elapsed
            shard.sm_busy_cycles = gpm.busy_cycles()
            shard.sm_idle_cycles = gpm.idle_cycles(elapsed)
        return self.counters, self.engine.events_processed, self.engine.metrics


# -------------------------------------------------------- governor replication


class _GovernorMirror:
    """Coordinator-side replica of ``MultiGpu``'s governor/residency loop.

    Consumes the same per-GPM busy-cycle readings at the same barrier times
    in the same GPM order, so every observation, decision, residency bucket
    and metrics sample is float-identical to the single-process driver.
    """

    def __init__(
        self, config: GpuConfig, governor: Governor | None, registry: MetricsRegistry
    ):
        self.config = config
        self.governor = governor
        num_gpms = config.num_gpms
        self._core_residency: list[dict[OperatingPoint, float]] = [
            {} for _ in range(num_gpms)
        ]
        self._last_core_point: list[OperatingPoint | None] = [None] * num_gpms
        if governor is not None:
            self._core_points = list(governor.initial_points(num_gpms))
            self._busy_snapshot = [0.0] * num_gpms
            self._interval_utilization = registry.accumulator(
                "dvfs.interval_utilization"
            )
            self._core_mhz = registry.accumulator("dvfs.core_mhz")

    def initial_points(self) -> list[OperatingPoint] | None:
        return None if self.governor is None else list(self._core_points)

    def govern(
        self, start: float, now: float, busy_by_gpm: dict[int, float]
    ) -> dict[int, OperatingPoint] | None:
        """One governor consultation; returns the points that changed."""
        governor = self.governor
        if governor is None:
            return None
        window = now - start
        num_sms = self.config.gpm.num_sms
        observations = []
        for gpm_id in range(self.config.num_gpms):
            current = self._core_points[gpm_id]
            busy = busy_by_gpm[gpm_id]
            busy_delta = busy - self._busy_snapshot[gpm_id]
            self._busy_snapshot[gpm_id] = busy
            utilization = (
                0.0 if window <= 0
                else min(1.0, busy_delta / (window * num_sms))
            )
            if window > 0:
                hist = self._core_residency[gpm_id]
                hist[current] = hist.get(current, 0.0) + window
                self._last_core_point[gpm_id] = current
            observations.append(
                GpmObservation(
                    gpm_id=gpm_id, utilization=utilization, current=current
                )
            )
        chosen_points = governor.on_chip_interval(observations, now, window)
        changed: dict[int, OperatingPoint] = {}
        for observed, chosen in zip(observations, chosen_points):
            self._interval_utilization.add(observed.utilization)
            self._core_mhz.add(chosen.frequency_hz / 1e6)
            if chosen != observed.current:
                self._core_points[observed.gpm_id] = chosen
                changed[observed.gpm_id] = chosen
        return changed

    def _normalized_core_histogram(
        self, gpm_id: int, elapsed: float
    ) -> ResidencyHistogram:
        # Same residual-bucket renormalization as MultiGpu: the last point's
        # bucket absorbs float dust so total_cycles == elapsed exactly.
        recorded = self._core_residency[gpm_id]
        last = self._last_core_point[gpm_id]
        if not recorded or last is None:
            return ResidencyHistogram(dict(recorded))
        cycles = {
            point: window
            for point, window in recorded.items()
            if point != last
        }
        residual = elapsed - sum(cycles.values())
        cycles[last] = residual if residual > 0.0 else recorded[last]
        return ResidencyHistogram(cycles)

    def residency(self, elapsed: float) -> DvfsResidency:
        dvfs = self.config.dvfs
        dram_point = dvfs.dram if dvfs is not None else K40_OPERATING_POINT
        ic_point = (
            dvfs.interconnect if dvfs is not None else K40_OPERATING_POINT
        )
        if self.governor is not None:
            return DvfsResidency(
                core=tuple(
                    self._normalized_core_histogram(gpm_id, elapsed)
                    for gpm_id in range(self.config.num_gpms)
                ),
                dram=ResidencyHistogram.single(dram_point, elapsed),
                interconnect=ResidencyHistogram.single(ic_point, elapsed),
            )
        core_points = [
            dvfs.core_point_for(gpm_id) if dvfs is not None
            else K40_OPERATING_POINT
            for gpm_id in range(self.config.num_gpms)
        ]
        return DvfsResidency.static_run(
            elapsed, core_points, dram_point, ic_point
        )


# ------------------------------------------------------------------ executors


class _InlineExecutor:
    """All shards in this process: private engines, no forking.

    This is the default on machines without spare cores — the gain is
    engine-locality (smaller heaps, smaller now-queues), not parallelism —
    and it is the reference implementation the fork executor must match.
    """

    def __init__(
        self,
        config: GpuConfig,
        workload: Workload,
        partitioning: CtaPartitioning,
        plan: ShardPlan,
        initial_points: list[OperatingPoint] | None,
        curve: VfCurve | None,
    ):
        self._config = config
        self._workload = workload
        self._partitioning = partitioning
        self._runtimes = {
            shard_id: _ShardRuntime(
                config, group, workload.interleaved_base, initial_points, curve
            )
            for shard_id, group in enumerate(plan.groups)
        }

    def run(self, kernel_index: int) -> dict[int, tuple[float, dict[int, float]]]:
        kernel = self._workload.kernels[kernel_index]
        partitions = partition_ctas(
            kernel.num_ctas, self._config.num_gpms, self._partitioning
        )
        replies = {}
        for shard_id, runtime in self._runtimes.items():
            now = runtime.run_epoch(kernel, partitions)
            replies[shard_id] = (now, runtime.busy_by_gpm())
        return replies

    def close(
        self, barrier: float, points: dict[int, OperatingPoint] | None
    ) -> None:
        for runtime in self._runtimes.values():
            runtime.close_epoch(barrier, points)

    def finish(self, elapsed: float):
        return {
            shard_id: runtime.finalize(elapsed)
            for shard_id, runtime in self._runtimes.items()
        }

    def shutdown(self) -> None:
        pass


def _worker_main(conn, config, workload, partitioning, groups, initial_points, curve):
    """Fork-worker loop: epoch-synchronous shard execution over a pipe.

    ``groups`` is this worker's list of ``(shard_id, gpm_ids)`` pairs.  The
    protocol is strictly parent-driven: ``("run", k)`` executes kernel ``k``
    to quiescence on every owned shard, ``("close", barrier, points)``
    advances the clocks and applies governor decisions (no reply), and
    ``("finish", elapsed)`` returns the final per-GPM counters, event count,
    and serialized metrics, then exits.
    """
    try:
        runtimes = {
            shard_id: _ShardRuntime(
                config, gpm_ids, workload.interleaved_base, initial_points, curve
            )
            for shard_id, gpm_ids in groups
        }
        kernels = workload.kernels
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "run":
                kernel = kernels[message[1]]
                partitions = partition_ctas(
                    kernel.num_ctas, config.num_gpms, partitioning
                )
                replies = {}
                for shard_id, runtime in runtimes.items():
                    now = runtime.run_epoch(kernel, partitions)
                    replies[shard_id] = (now, runtime.busy_by_gpm())
                conn.send(("ok", replies))
            elif tag == "close":
                _, barrier, points = message
                for runtime in runtimes.values():
                    runtime.close_epoch(barrier, points)
            elif tag == "finish":
                elapsed = message[1]
                payload = {}
                for shard_id, runtime in runtimes.items():
                    counters, events, metrics = runtime.finalize(elapsed)
                    payload[shard_id] = (counters, events, metrics.to_json())
                conn.send(("ok", payload))
                return
            else:  # pragma: no cover - protocol bug guard
                raise SimulationError(f"unknown shard message {tag!r}")
    except Exception as error:  # surface to the parent instead of hanging it
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


class _ForkExecutor:
    """Shards distributed over forked worker processes.

    Workers are forked (not spawned) so they inherit the already-built
    workload — program chunks and all — without pickling it; only the small
    epoch messages cross the pipes.  Floats survive pickling exactly, so
    the protocol preserves bit identity.
    """

    def __init__(
        self,
        config: GpuConfig,
        workload: Workload,
        partitioning: CtaPartitioning,
        plan: ShardPlan,
        workers: int,
        initial_points: list[OperatingPoint] | None,
        curve: VfCurve | None,
    ):
        context = multiprocessing.get_context("fork")
        assignments: list[list[tuple[int, tuple[int, ...]]]] = [
            [] for _ in range(workers)
        ]
        for shard_id, group in enumerate(plan.groups):
            assignments[shard_id % workers].append((shard_id, group))
        self._conns = []
        self._procs = []
        for worker_groups in assignments:
            if not worker_groups:
                continue
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_worker_main,
                args=(
                    child_conn, config, workload, partitioning,
                    worker_groups, initial_points, curve,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _recv(self, conn):
        try:
            tag, payload = conn.recv()
        except EOFError:
            raise SimulationError("sharded worker exited unexpectedly") from None
        if tag != "ok":
            raise SimulationError(f"sharded worker failed: {payload}")
        return payload

    def run(self, kernel_index: int) -> dict[int, tuple[float, dict[int, float]]]:
        for conn in self._conns:
            conn.send(("run", kernel_index))
        merged: dict[int, tuple[float, dict[int, float]]] = {}
        for conn in self._conns:
            merged.update(self._recv(conn))
        return merged

    def close(
        self, barrier: float, points: dict[int, OperatingPoint] | None
    ) -> None:
        for conn in self._conns:
            conn.send(("close", barrier, points))

    def finish(self, elapsed: float):
        for conn in self._conns:
            conn.send(("finish", elapsed))
        merged = {}
        for conn in self._conns:
            payload = self._recv(conn)
            for shard_id, (counters, events, metrics_json) in payload.items():
                merged[shard_id] = (
                    counters, events, MetricsRegistry.from_json(metrics_json)
                )
        self.shutdown()
        return merged

    def shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker cleanup
                proc.terminate()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []


# ------------------------------------------------------------------ entry point


def fallback_reason(
    workload: Workload,
    config: GpuConfig,
    shards: int,
    partitioning: CtaPartitioning = CtaPartitioning.CONTIGUOUS,
    tracer=None,
    max_events: int | None = None,
) -> str | None:
    """Why this run must take the single-process engine, or ``None``."""
    if shards <= 1:
        return "shards <= 1 selects the single-process engine"
    if config.num_gpms == 1:
        return "single-GPM configurations have nothing to shard"
    if tracer is not None:
        return "tracing requires the single-process event order"
    if max_events is not None:
        return "max_events accounting is engine-global"
    if config.idle is not None:
        return "idle-state bookkeeping needs the single-process driver"
    return coupling_reason(workload, config, partitioning)


def run_sharded(
    workload: Workload,
    config: GpuConfig,
    shards: int,
    partitioning: CtaPartitioning = CtaPartitioning.CONTIGUOUS,
    governor: Governor | None = None,
    metrics: MetricsRegistry | None = None,
    tracer=None,
    max_events: int | None = None,
    workers: int | None = None,
) -> RunResult:
    """Simulate ``workload`` with per-GPM shards, bit-identical to one engine.

    Args:
        shards: requested shard count (clamped to the GPM count).
        workers: OS processes to spread the shards over.  ``None`` picks
            ``min(shards, cpu_count)``; ``1`` keeps every shard in-process
            (private engines, no forking).
        governor: as in :meth:`~repro.gpu.simulator.GpuSimulator.run`; a
            config with ``power_cap_watts`` auto-attaches a
            :class:`~repro.dvfs.governor.PowerCapGovernor`.

    Runs that cannot shard (coupled workload, tracing, ``max_events``,
    single GPM) fall back to the exact single-process path; the returned
    result's ``sharding`` summary records the reason either way.

    Note on metrics: counters, residency, kernel timing and event counts
    are bit-identical; :class:`~repro.trace.MetricsRegistry` contents merge
    per-shard via the parallel Welford combine, which matches the
    single-process stream only up to float rounding.
    """
    if governor is None and (
        config.power_cap_watts is not None or config.idle is not None
    ):
        curve = config.dvfs.curve if config.dvfs is not None else K40_VF_CURVE
        governor = governor_for(config.idle, config.power_cap_watts, curve)
    reason = fallback_reason(
        workload, config, shards, partitioning, tracer, max_events
    )
    if reason is not None:
        result = GpuSimulator(config, partitioning=partitioning).run(
            workload,
            max_events=max_events,
            tracer=tracer,
            metrics=metrics,
            governor=governor,
        )
        result.sharding = ShardingSummary(
            requested=shards, shards=1, workers=1, fallback_reason=reason
        )
        return result

    plan = plan_shards(config.num_gpms, shards)
    if workers is None:
        workers = min(plan.num_shards, os.cpu_count() or 1)
    workers = max(1, min(workers, plan.num_shards))

    start_wall = time.perf_counter()
    registry = metrics if metrics is not None else MetricsRegistry()
    mirror = _GovernorMirror(config, governor, registry)
    initial_points = mirror.initial_points()
    curve = governor.curve if governor is not None else None
    if workers > 1:
        executor = _ForkExecutor(
            config, workload, partitioning, plan, workers, initial_points, curve
        )
    else:
        executor = _InlineExecutor(
            config, workload, partitioning, plan, initial_points, curve
        )
    kernel_stats: list[KernelStats] = []
    barrier = 0.0
    # The single-process driver's own callbacks, reconstructed: one initial
    # process step plus one counted barrier-hit per non-empty partition.
    driver_events = 1
    try:
        for index, kernel in enumerate(workload.kernels):
            start = barrier
            partitions = partition_ctas(
                kernel.num_ctas, config.num_gpms, partitioning
            )
            driver_events += sum(1 for cta_ids in partitions if cta_ids)
            replies = executor.run(index)
            barrier = max(now for now, _busy in replies.values())
            kernel_stats.append(
                KernelStats(kernel.name, start_cycle=start, end_cycle=barrier)
            )
            busy_by_gpm: dict[int, float] = {}
            for _now, busy in replies.values():
                busy_by_gpm.update(busy)
            points = mirror.govern(start, barrier, busy_by_gpm)
            executor.close(barrier, points)
        elapsed = barrier
        payloads = executor.finish(elapsed)
    except BaseException:
        executor.shutdown()
        raise

    counters_by_gpm: dict[int, CounterSet] = {}
    shard_events = 0
    for shard_id in sorted(payloads):
        counters, events, shard_metrics = payloads[shard_id]
        counters_by_gpm.update(counters)
        shard_events += events
        registry.merge(shard_metrics)
    totals = CounterSet(
        per_gpm=tuple(
            counters_by_gpm[gpm_id] for gpm_id in range(config.num_gpms)
        )
    )
    for shard in totals.per_gpm:
        totals.merge(shard)
    totals.elapsed_cycles = elapsed
    wall_time_s = time.perf_counter() - start_wall
    return RunResult(
        workload_name=workload.name,
        config_label=config.label(),
        counters=totals,
        kernel_stats=kernel_stats,
        clock_hz=config.gpm.clock_hz,
        metrics=registry,
        events_processed=shard_events + driver_events,
        wall_time_s=wall_time_s,
        residency=mirror.residency(elapsed),
        governor=governor,
        sharding=ShardingSummary(
            requested=shards,
            shards=plan.num_shards,
            workers=workers,
            fallback_reason=None,
        ),
    )
