"""Discrete-event simulation substrate.

The performance simulator is built on a small, dependency-free discrete-event
kernel:

* :class:`~repro.sim.engine.Engine` — the event heap and simulation clock.
* :class:`~repro.sim.engine.Process` — generator-based coroutines that model
  warps, CTA dispatchers, and other active agents.
* :mod:`~repro.sim.resources` — analytic FCFS bandwidth servers and latency
  stations used for SM issue slots, DRAM channels, and interconnect links.
* :mod:`~repro.sim.stats` — lightweight online statistics used by counters.
"""

from repro.sim.engine import AllOf, Engine, Event, Process, Timeout
from repro.sim.resources import BandwidthServer, LatencyStation, ThroughputServer
from repro.sim.stats import Accumulator, Histogram, UtilizationTracker

__all__ = [
    "AllOf",
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "BandwidthServer",
    "LatencyStation",
    "ThroughputServer",
    "Accumulator",
    "Histogram",
    "UtilizationTracker",
]
