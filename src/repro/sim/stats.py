"""Lightweight statistics helpers used by simulator counters and experiments."""

from __future__ import annotations

import math
from collections.abc import Iterable


class Accumulator:
    """Online mean/variance (Welford) plus min/max tracking."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "Accumulator") -> "Accumulator":
        """Fold another accumulator into this one (returns ``self``).

        Uses the parallel Welford combine (Chan et al.), so merging
        per-process accumulators is equivalent — up to float rounding — to
        having observed every sample in one process.  This is what lets
        :class:`~repro.trace.metrics.MetricsRegistry` aggregate sweep-worker
        metrics without shipping raw samples.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * (other.count / total)
        self._m2 += other._m2 + delta * delta * (self.count * other.count / total)
        self.count = total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    def to_json(self) -> dict:
        """Exact merge state as JSON data (``None`` bounds when empty)."""
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Accumulator":
        acc = cls()
        acc.count = int(data["count"])
        acc._mean = float(data["mean"])
        acc._m2 = float(data["m2"])
        if acc.count > 0:
            acc.minimum = float(data["min"])
            acc.maximum = float(data["max"])
        return acc

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty accumulator")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance."""
        if self.count == 0:
            raise ValueError("variance of an empty accumulator")
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if self.count == 0:
            return "Accumulator(empty)"
        return (
            f"Accumulator(n={self.count}, mean={self._mean:.4g},"
            f" min={self.minimum:.4g}, max={self.maximum:.4g})"
        )


class Histogram:
    """Fixed-width bucket histogram for diagnostic distributions."""

    def __init__(self, bucket_width: float, name: str = ""):
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width!r}")
        self.bucket_width = bucket_width
        self.name = name
        self.buckets: dict[int, int] = {}
        self.total = 0

    def add(self, value: float, weight: int = 1) -> None:
        """Record ``value`` with the given integer weight."""
        index = int(value // self.bucket_width)
        self.buckets[index] = self.buckets.get(index, 0) + weight
        self.total += weight

    def quantile(self, q: float) -> float:
        """Approximate quantile (bucket upper edge); q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.total == 0:
            raise ValueError("quantile of an empty histogram")
        target = q * self.total
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return (index + 1) * self.bucket_width
        return (max(self.buckets) + 1) * self.bucket_width

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram into this one (returns ``self``).

        Both histograms must share a bucket width; merging is exact (integer
        bucket sums), hence associative and commutative.
        """
        if other.bucket_width != self.bucket_width:
            raise ValueError(
                f"cannot merge histograms with bucket widths"
                f" {self.bucket_width} and {other.bucket_width}"
            )
        for index, weight in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + weight
        self.total += other.total
        return self

    def to_json(self) -> dict:
        """Exact state as JSON data (bucket indices as string keys)."""
        return {
            "bucket_width": self.bucket_width,
            "buckets": {
                str(index): weight
                for index, weight in sorted(self.buckets.items())
            },
        }

    @classmethod
    def from_json(cls, data: dict) -> "Histogram":
        histogram = cls(float(data["bucket_width"]))
        for index, weight in data["buckets"].items():
            histogram.buckets[int(index)] = int(weight)
        histogram.total = sum(histogram.buckets.values())
        return histogram

    def __len__(self) -> int:
        return self.total


class UtilizationTracker:
    """Tracks busy intervals of a unit to derive idle time post-hoc.

    SMs report their cumulative busy cycles; at the end of the run the GPU
    subtracts busy from elapsed to obtain the idle (stall) cycles that feed the
    EPStall term of the energy model.
    """

    __slots__ = ("busy_cycles", "last_start", "active")

    def __init__(self) -> None:
        self.busy_cycles = 0.0
        self.last_start = 0.0
        self.active = False

    def begin(self, now: float) -> None:
        """Mark the unit busy starting at ``now`` (idempotent)."""
        if not self.active:
            self.active = True
            self.last_start = now

    def end(self, now: float) -> None:
        """Mark the unit idle at ``now``, accumulating the busy interval."""
        if self.active:
            self.busy_cycles += now - self.last_start
            self.active = False

    def add_busy(self, cycles: float) -> None:
        """Directly credit busy cycles (used with analytic servers)."""
        if cycles < 0:
            raise ValueError(f"negative busy credit: {cycles!r}")
        self.busy_cycles += cycles

    def idle_cycles(self, elapsed: float) -> float:
        """Idle cycles over an ``elapsed`` window (clamped at zero)."""
        return max(0.0, elapsed - self.busy_cycles)
