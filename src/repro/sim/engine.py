"""A minimal generator-coroutine discrete-event engine.

The engine is intentionally small: a binary-heap event queue, a monotonically
advancing clock measured in core cycles, and processes expressed as Python
generators.  A process yields *commands* and is resumed when the command
completes:

``yield Timeout(delay)``
    Resume the process ``delay`` cycles from now.

``yield event``  (an :class:`Event`)
    Resume when the event succeeds.  Multiple processes may wait on one event.

``yield AllOf([event, ...])``
    Resume when every listed event has succeeded.

Resources (see :mod:`repro.sim.resources`) return absolute completion times;
processes convert those into timeouts via :meth:`Engine.wait_until`.

The design trades generality for speed: there is no process interruption, no
event cancellation, and no priority levels — none of which the GPU model
needs — so the hot path is a heap push/pop plus a generator ``send``.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from typing import Any

from repro.errors import SimulationError


class Timeout:
    """Command object: suspend the yielding process for ``delay`` cycles."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Event:
    """A one-shot event processes can wait on.

    Events succeed exactly once, optionally carrying a value that is delivered
    to every waiter.  Waiting on an already-succeeded event resumes the waiter
    immediately (on the next engine step), which makes completion races benign.
    """

    __slots__ = ("engine", "_callbacks", "triggered", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._callbacks: list[Any] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, resuming every waiter at the current time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        for callback in self._callbacks:
            self.engine.schedule(0.0, callback, value)
        self._callbacks.clear()

    def add_callback(self, callback: Any) -> None:
        """Register ``callback(value)``; fires now if already triggered."""
        if self.triggered:
            self.engine.schedule(0.0, callback, self.value)
        else:
            self._callbacks.append(callback)


class AllOf:
    """Command object: wait for every event in ``events`` to succeed."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)

    def __repr__(self) -> str:
        return f"AllOf(<{len(self.events)} events>)"


class Process:
    """A running generator coroutine bound to an engine.

    The process body is a generator yielding :class:`Timeout`, :class:`Event`,
    or :class:`AllOf` commands.  When the generator returns, the process's
    :attr:`done` event succeeds with the generator's return value.
    """

    __slots__ = ("engine", "_generator", "done", "name", "spawned_at")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self._generator = generator
        self.done = Event(engine)
        self.name = name
        self.spawned_at = engine.now
        engine.schedule(0.0, self._step, None)

    def _step(self, value: Any) -> None:
        try:
            command = self._generator.send(value)
        except StopIteration as stop:
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.complete(
                    "engine",
                    self.name or "process",
                    self.spawned_at,
                    self.engine.now - self.spawned_at,
                )
            self.done.succeed(stop.value)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self.engine.schedule(command.delay, self._step, None)
        elif isinstance(command, Event):
            command.add_callback(self._step)
        elif isinstance(command, AllOf):
            self._wait_all(command.events)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unknown command {command!r}"
            )

    def _wait_all(self, events: list[Event]) -> None:
        pending = [event for event in events if not event.triggered]
        if not pending:
            self.engine.schedule(0.0, self._step, None)
            return
        remaining = len(pending)

        def _one_done(_value: Any, _state: list[int] = [remaining]) -> None:
            _state[0] -= 1
            if _state[0] == 0:
                self._step(None)

        for event in pending:
            event.add_callback(_one_done)


class Engine:
    """Event heap plus simulation clock.

    Time is a float measured in cycles.  Events scheduled at identical times
    run in FIFO order (a monotonic sequence number breaks heap ties), keeping
    runs fully deterministic.
    """

    __slots__ = ("_heap", "_seq", "now", "_events_processed", "tracer", "metrics")

    def __init__(self, tracer: Any = None, metrics: Any = None) -> None:
        self._heap: list[tuple[float, int, Any, Any]] = []
        self._seq = 0
        self.now = 0.0
        self._events_processed = 0
        # Deferred imports keep this hot, dependency-free module from pulling
        # the observability package at import time (repro.trace.metrics
        # itself imports repro.sim.stats).
        if tracer is None:
            from repro.trace.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        if metrics is None:
            from repro.trace.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (diagnostic)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Any, value: Any = None) -> None:
        """Run ``callback(value)`` exactly ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, value))
        self._seq += 1

    def event(self) -> Event:
        """Create a fresh one-shot event bound to this engine."""
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a process from a generator; it starts on the next step."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float) -> Timeout:
        """Create a timeout command (for symmetry with SimPy-style code)."""
        return Timeout(delay)

    def wait_until(self, when: float) -> Timeout:
        """Timeout command resuming at absolute time ``when`` (>= now)."""
        if when < self.now - 1e-9:
            raise SimulationError(
                f"wait_until target {when!r} is before current time {self.now!r}"
            )
        return Timeout(max(0.0, when - self.now))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the event heap.

        Args:
            until: stop once the clock would pass this time (the event stays
                queued).  ``None`` runs to quiescence.
            max_events: safety valve against runaway simulations; raises
                :class:`SimulationError` when exceeded.

        Returns:
            The final simulation time.
        """
        heap = self._heap
        while heap:
            when, _seq, callback, value = heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(heap)
            self.now = when
            self._events_processed += 1
            if max_events is not None and self._events_processed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}"
                )
            callback(value)
        return self.now
