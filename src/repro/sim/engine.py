"""A minimal generator-coroutine discrete-event engine.

The engine is intentionally small: a binary-heap event queue, a zero-delay
*now queue*, a monotonically advancing clock measured in core cycles, and
processes expressed as Python generators.  A process yields *commands* and is
resumed when the command completes:

``yield Timeout(delay)``
    Resume the process ``delay`` cycles from now.

``yield event``  (an :class:`Event`)
    Resume when the event succeeds.  Multiple processes may wait on one event.

``yield AllOf([event, ...])``
    Resume when every listed event has succeeded.

Resources (see :mod:`repro.sim.resources`) return absolute completion times;
processes convert those into timeouts via :meth:`Engine.wait_until`.

The design trades generality for speed: there is no process interruption, no
event cancellation, and no priority levels — none of which the GPU model
needs — so the hot path is a heap pop (or deque pop) plus a generator
``send``.  Three structural optimizations keep the per-event cost low:

* **Now queue.**  Zero-delay work — process starts, ``Event.succeed``
  fan-out, waits on already-triggered events — goes through a plain deque
  instead of the heap.  A large fraction of all events are zero-delay, and a
  deque append/popleft is far cheaper than a heap push/pop.  Ordering is
  preserved: every heap entry at the current timestamp predates (in schedule
  order) every now-queue entry, because a zero delay never reaches the heap.
* **Same-timestamp batch dispatch.**  ``run`` pops every heap entry sharing
  the front timestamp in one inner loop (FIFO by sequence number, exactly as
  before) before draining the now queue, so the ``until``/bookkeeping checks
  run once per distinct time, not once per event.
* **Counting barriers.**  ``AllOf`` waits register one shared bound-method
  callback that decrements a counter on the waiting process — no per-wait
  closure, no materialized waiter list.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Generator, Iterable
from typing import Any

from repro.errors import SimulationError


class Timeout:
    """Command object: suspend the yielding process for ``delay`` cycles."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Event:
    """A one-shot event processes can wait on.

    Events succeed exactly once, optionally carrying a value that is delivered
    to every waiter.  Waiting on an already-succeeded event resumes the waiter
    immediately (on the next engine step, through the now queue — never via a
    zero-delay heap entry), which makes completion races benign.
    """

    __slots__ = ("engine", "_callbacks", "triggered", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._callbacks: list[Any] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, resuming every waiter at the current time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        callbacks = self._callbacks
        if callbacks:
            nowq = self.engine._nowq
            for callback in callbacks:
                nowq.append((callback, value))
            callbacks.clear()

    def add_callback(self, callback: Any) -> None:
        """Register ``callback(value)``; fires now if already triggered."""
        if self.triggered:
            self.engine._nowq.append((callback, self.value))
        else:
            self._callbacks.append(callback)


class AllOf:
    """Command object: wait for every event in ``events`` to succeed."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)

    def __repr__(self) -> str:
        return f"AllOf(<{len(self.events)} events>)"


class Process:
    """A running generator coroutine bound to an engine.

    The process body is a generator yielding :class:`Timeout`, :class:`Event`,
    or :class:`AllOf` commands.  When the generator returns, the process's
    :attr:`done` event succeeds with the generator's return value.

    ``AllOf`` waits use a *counting barrier*: every pending event gets the
    same bound-method callback (:meth:`_barrier_hit`), which decrements
    :attr:`_pending` and resumes the process at zero.  A process waits on at
    most one command at a time, so one counter per process suffices.
    """

    __slots__ = ("engine", "_generator", "done", "name", "spawned_at", "_pending")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self._generator = generator
        self.done = Event(engine)
        self.name = name
        self.spawned_at = engine.now
        self._pending = 0
        engine._nowq.append((self._step, None))

    def _step(self, value: Any) -> None:
        try:
            command = self._generator.send(value)
        except StopIteration as stop:
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.complete(
                    "engine",
                    self.name or "process",
                    self.spawned_at,
                    self.engine.now - self.spawned_at,
                )
            self.done.succeed(stop.value)
            return
        # Inline dispatch of the common commands; `_dispatch` only exists as
        # a seam for the error path and the rare AllOf case.  Exact class
        # checks instead of isinstance: the command protocol has no
        # subclasses, and the identity test is the cheapest branch CPython
        # offers on this per-event path.
        cls = command.__class__
        if cls is Timeout:
            engine = self.engine
            delay = command.delay
            if delay == 0.0:
                engine._nowq.append((self._step, None))
            else:
                heapq.heappush(
                    engine._heap,
                    (engine.now + delay, engine._seq, self._step, None),
                )
                engine._seq += 1
        elif cls is Event:
            if command.triggered:
                self.engine._nowq.append((self._step, command.value))
            else:
                command._callbacks.append(self._step)
        else:
            self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, AllOf):
            self._wait_all(command.events)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unknown command {command!r}"
            )

    def _wait_all(self, events: list[Event]) -> None:
        barrier = self._barrier_hit
        pending = 0
        for event in events:
            if not event.triggered:
                event._callbacks.append(barrier)
                pending += 1
        if pending == 0:
            self.engine._nowq.append((self._step, None))
            return
        self._pending = pending

    def _barrier_hit(self, _value: Any) -> None:
        self._pending -= 1
        if self._pending == 0:
            self._step(None)


class Engine:
    """Event heap, zero-delay now queue, and the simulation clock.

    Time is a float measured in cycles.  Events scheduled at identical times
    run in FIFO order: heap ties are broken by a monotonic sequence number,
    and zero-delay work lands in the now queue, which is drained *after* the
    heap's same-timestamp batch — equivalent to the sequence order a pure
    heap would impose, because zero-delay entries are always younger than any
    heap entry at the current time.  Runs are fully deterministic.
    """

    __slots__ = ("_heap", "_nowq", "_seq", "now", "_events_processed", "tracer", "metrics")

    def __init__(self, tracer: Any = None, metrics: Any = None) -> None:
        self._heap: list[tuple[float, int, Any, Any]] = []
        self._nowq: deque[tuple[Any, Any]] = deque()
        self._seq = 0
        self.now = 0.0
        self._events_processed = 0
        # Deferred imports keep this hot, dependency-free module from pulling
        # the observability package at import time (repro.trace.metrics
        # itself imports repro.sim.stats).
        if tracer is None:
            from repro.trace.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        if metrics is None:
            from repro.trace.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (diagnostic)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Any, value: Any = None) -> None:
        """Run ``callback(value)`` exactly ``delay`` cycles from now.

        Zero-delay work bypasses the heap through the now queue; it still
        runs after everything already scheduled for the current time, in
        FIFO order.
        """
        if delay == 0.0:
            self._nowq.append((callback, value))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, value))
        self._seq += 1

    def event(self) -> Event:
        """Create a fresh one-shot event bound to this engine."""
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a process from a generator; it starts on the next step."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float) -> Timeout:
        """Create a timeout command (for symmetry with SimPy-style code)."""
        return Timeout(delay)

    def wait_until(self, when: float) -> Timeout:
        """Timeout command resuming at absolute time ``when`` (>= now)."""
        if when < self.now - 1e-9:
            raise SimulationError(
                f"wait_until target {when!r} is before current time {self.now!r}"
            )
        return Timeout(max(0.0, when - self.now))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the now queue and the event heap.

        Args:
            until: stop once the clock would pass this time (the event stays
                queued).  ``None`` runs to quiescence.
            max_events: safety valve against runaway simulations; raises
                :class:`SimulationError` when exceeded.

        Returns:
            The final simulation time.

        Each outer iteration is one *epoch*: drain the now queue (work at the
        current time), then batch-dispatch every heap entry sharing the next
        timestamp.  Callbacks that schedule zero-delay work during an epoch
        append to the now queue and run after the heap batch — the same order
        a sequence-numbered heap would produce, without the heap traffic.
        """
        heap = self._heap
        nowq = self._nowq
        pop = heapq.heappop
        popleft = nowq.popleft
        processed = self._events_processed
        try:
            if max_events is None:
                # Fast loop: no per-event limit comparison.  Identical
                # dispatch order to the guarded loop below.
                while True:
                    while nowq:
                        callback, value = popleft()
                        processed += 1
                        callback(value)
                    if not heap:
                        break
                    when = heap[0][0]
                    if until is not None and when > until:
                        self.now = until
                        break
                    self.now = when
                    while True:
                        entry = pop(heap)
                        processed += 1
                        entry[2](entry[3])
                        if not heap or heap[0][0] != when:
                            break
                return self.now
            limit = max_events
            while True:
                while nowq:
                    callback, value = popleft()
                    processed += 1
                    if processed > limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events} at t={self.now}"
                        )
                    callback(value)
                if not heap:
                    break
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    break
                self.now = when
                while True:
                    entry = pop(heap)
                    processed += 1
                    if processed > limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events} at t={self.now}"
                        )
                    entry[2](entry[3])
                    if not heap or heap[0][0] != when:
                        break
        finally:
            self._events_processed = processed
        return self.now
