"""Point-to-point interconnect links.

A link is a unidirectional bandwidth server plus a propagation latency and an
energy cost per bit.  Energy is *accounted* (bytes recorded per link) rather
than consumed here; the energy model converts link traffic into joules so that
the same simulation can be re-priced under different pJ/bit assumptions — the
Section V-C interconnect-energy point study does exactly that re-pricing
without re-running the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.resources import BandwidthServer
from repro.units import DEFAULT_CLOCK_HZ, gbps_to_bytes_per_cycle


@dataclass(frozen=True)
class LinkConfig:
    """Electrical/physical parameters of one unidirectional link."""

    bandwidth_gbps: float
    latency_cycles: float
    energy_pj_per_bit: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigError("link bandwidth must be positive")
        if self.latency_cycles < 0:
            raise ConfigError("link latency must be non-negative")
        if self.energy_pj_per_bit < 0:
            raise ConfigError("link energy must be non-negative")


class Link:
    """One unidirectional link between two endpoints (GPMs or switch ports)."""

    __slots__ = ("config", "server", "src", "dst", "bytes_transferred", "transfers")

    def __init__(
        self,
        engine: Engine,
        config: LinkConfig,
        src: str,
        dst: str,
        clock_hz: float = DEFAULT_CLOCK_HZ,
    ):
        self.config = config
        self.src = src
        self.dst = dst
        self.server = BandwidthServer(
            engine,
            gbps_to_bytes_per_cycle(config.bandwidth_gbps, clock_hz),
            name=f"link:{src}->{dst}",
        )
        self.bytes_transferred = 0
        self.transfers = 0

    def reserve(self, nbytes: int, earliest: float | None = None) -> float:
        """Reserve ``nbytes`` of link capacity; returns serialization-complete
        time (propagation latency is added once per path by the topology).

        ``earliest`` bounds when serialization may begin, used when the
        payload only becomes available after an upstream stage completes.
        """
        self.bytes_transferred += nbytes
        self.transfers += 1
        return self.server.reserve(nbytes, earliest=earliest)

    def queue_delay(self) -> float:
        """Cycles a byte arriving now would wait before serialization."""
        return self.server.queue_delay()

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of this link over an elapsed window."""
        return self.server.utilization(elapsed)

    def __repr__(self) -> str:
        return (
            f"Link({self.src}->{self.dst},"
            f" {self.config.bandwidth_gbps:g} GB/s,"
            f" {self.config.energy_pj_per_bit:g} pJ/b)"
        )
