"""Inter-GPM interconnect substrate: links, ring and switch topologies."""

from repro.interconnect.link import Link, LinkConfig
from repro.interconnect.topology import Topology, TransferResult
from repro.interconnect.ring import RingTopology
from repro.interconnect.switch import SwitchTopology
from repro.interconnect.traffic import TrafficCounters

__all__ = [
    "Link",
    "LinkConfig",
    "Topology",
    "TransferResult",
    "RingTopology",
    "SwitchTopology",
    "TrafficCounters",
]
