"""High-radix switch interconnect (NVSwitch-like).

Section V-C studies replacing the on-board ring with a high-radix switch chip:
every GPM connects to the crossbar through an uplink and a downlink of the
full per-GPM I/O bandwidth, so any transfer takes exactly two link hops
(src uplink, dst downlink) regardless of GPM count.  The payload additionally
traverses the switch fabric, which the paper charges an extra 10 pJ/bit.

Compared to the ring, the switch removes multi-hop amplification: injected
bytes consume exactly 2x link bandwidth instead of ~N/4 x, which is why it
roughly doubles 32-GPM EDPSE in Figure 9 despite identical link bandwidth.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.interconnect.link import Link, LinkConfig
from repro.interconnect.topology import Topology
from repro.sim.engine import Engine
from repro.units import DEFAULT_CLOCK_HZ


class SwitchTopology(Topology):
    """Single crossbar switch with one full-bandwidth port pair per GPM."""

    def __init__(
        self,
        engine: Engine,
        num_gpms: int,
        per_gpm_bandwidth_gbps: float,
        link_latency_cycles: float,
        energy_pj_per_bit: float,
        switch_latency_cycles: float = 50.0,
        clock_hz: float = DEFAULT_CLOCK_HZ,
    ):
        super().__init__(num_gpms)
        if per_gpm_bandwidth_gbps <= 0:
            raise ConfigError("per-GPM I/O bandwidth must be positive")
        self.per_gpm_bandwidth_gbps = per_gpm_bandwidth_gbps
        self.switch_latency_cycles = switch_latency_cycles
        link_config = LinkConfig(
            bandwidth_gbps=per_gpm_bandwidth_gbps,
            latency_cycles=link_latency_cycles + switch_latency_cycles / 2.0,
            energy_pj_per_bit=energy_pj_per_bit,
        )
        self._uplinks: list[Link] = [
            Link(
                engine, link_config, src=f"gpm{i}", dst="switch",
                clock_hz=clock_hz,
            )
            for i in range(num_gpms)
        ]
        self._downlinks: list[Link] = [
            Link(
                engine, link_config, src="switch", dst=f"gpm{i}",
                clock_hz=clock_hz,
            )
            for i in range(num_gpms)
        ]

    def route(self, src: int, dst: int) -> tuple[list[Link], int]:
        """Uplink then downlink, always through the crossbar."""
        return [self._uplinks[src], self._downlinks[dst]], 1

    def links(self) -> list[Link]:
        """All uplinks and downlinks."""
        return list(self._uplinks) + list(self._downlinks)

    def hop_count(self, src: int, dst: int) -> int:
        """Always two link hops through the crossbar."""
        if src == dst:
            return 0
        return 2

    def __repr__(self) -> str:
        return (
            f"SwitchTopology(n={self.num_gpms},"
            f" port {self.per_gpm_bandwidth_gbps:g} GB/s)"
        )
