"""Topology interface shared by the ring and switch networks.

A topology turns a (src GPM, dst GPM, size) transfer into reservations on the
links along the route.  Transfers use *virtual cut-through* accounting: the
payload is serialized once on every hop link (each link's FCFS queue applies),
and the completion time is the latest link-completion plus the accumulated
per-hop propagation latency.  This costs one event per transfer regardless of
hop count, which is what keeps 32-GPM ring simulations cheap, while still
letting congestion emerge from per-link queueing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.interconnect.link import Link
from repro.interconnect.traffic import TrafficCounters


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one inter-GPM transfer reservation."""

    completion_time: float
    hops: int
    switch_traversals: int


class Topology(abc.ABC):
    """Common behaviour for inter-GPM networks."""

    def __init__(self, num_gpms: int):
        if num_gpms < 2:
            raise ConfigError(
                f"an interconnect needs at least 2 GPMs, got {num_gpms}"
            )
        self.num_gpms = num_gpms
        self.traffic = TrafficCounters()
        # Metric handles, bound lazily on first transfer (links carry the
        # engine; the topology itself is constructed before it has one).
        self._transfer_bytes = None
        self._transfer_cycles = None

    @abc.abstractmethod
    def route(self, src: int, dst: int) -> tuple[list[Link], int]:
        """Return ``(links, switch_traversals)`` for a src->dst transfer."""

    @abc.abstractmethod
    def links(self) -> list[Link]:
        """Every link in the network (diagnostics and tests)."""

    def transfer(
        self, src: int, dst: int, nbytes: int, earliest: float | None = None
    ) -> TransferResult:
        """Reserve a transfer of ``nbytes`` from GPM ``src`` to GPM ``dst``.

        ``earliest`` bounds when injection may begin (payload availability).
        Returns the completion time; the caller's process sleeps until then.
        """
        self._check_endpoints(src, dst)
        links, switch_traversals = self.route(src, dst)
        if not links:
            raise ConfigError(f"route {src}->{dst} has no links")
        finish = 0.0
        latency = 0.0
        for link in links:
            done = link.reserve(nbytes, earliest=earliest)
            if done > finish:
                finish = done
            latency += link.config.latency_cycles
        hops = len(links)
        self.traffic.record(nbytes, hops, switch_traversals)
        completion = finish + latency

        engine = links[0].server.engine
        if self._transfer_bytes is None:
            self._transfer_bytes = engine.metrics.histogram(
                "interconnect.transfer_bytes", 32.0
            )
            self._transfer_cycles = engine.metrics.accumulator(
                "interconnect.transfer_cycles"
            )
        injected = engine.now if earliest is None else earliest
        self._transfer_bytes.add(nbytes)
        self._transfer_cycles.add(max(0.0, completion - injected))
        tracer = engine.tracer
        if tracer.enabled:
            tracer.complete(
                "interconnect",
                f"g{src}->g{dst}",
                injected,
                max(0.0, completion - injected),
                args={
                    "bytes": nbytes,
                    "hops": hops,
                    "switch_traversals": switch_traversals,
                },
            )
        return TransferResult(
            completion_time=completion,
            hops=hops,
            switch_traversals=switch_traversals,
        )

    def _check_endpoints(self, src: int, dst: int) -> None:
        if not 0 <= src < self.num_gpms or not 0 <= dst < self.num_gpms:
            raise ConfigError(
                f"transfer endpoints ({src}, {dst}) out of range"
                f" [0, {self.num_gpms})"
            )
        if src == dst:
            raise ConfigError("local transfers must not enter the interconnect")

    def max_utilization(self, elapsed: float) -> float:
        """Highest per-link utilization (identifies the bottleneck link)."""
        return max((link.utilization(elapsed) for link in self.links()), default=0.0)
