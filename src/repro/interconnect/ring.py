"""Bidirectional ring interconnect.

The paper's multi-module configurations connect GPMs in a ring (Section V-A1).
Each GPM owns a per-GPM I/O bandwidth budget B (Table IV) that is split across
its two neighbor connections: each of the four unidirectional links touching a
GPM (out-clockwise, out-counter-clockwise and the two inbound ones) carries
B/2, so a GPM can inject at most B in aggregate and absorb at most B.

Routing is shortest-path: a transfer takes ``min(d, N-d)`` hops where ``d`` is
the clockwise distance.  Average hop count grows ~N/4, which is precisely the
ring-congestion mechanism the paper identifies as the EDPSE killer at high GPM
counts — it emerges here from per-hop link reservations rather than being
asserted analytically.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.interconnect.link import Link, LinkConfig
from repro.interconnect.topology import Topology
from repro.sim.engine import Engine
from repro.units import DEFAULT_CLOCK_HZ


class RingTopology(Topology):
    """Bidirectional shortest-path ring of GPMs."""

    def __init__(
        self,
        engine: Engine,
        num_gpms: int,
        per_gpm_bandwidth_gbps: float,
        link_latency_cycles: float,
        energy_pj_per_bit: float,
        clock_hz: float = DEFAULT_CLOCK_HZ,
    ):
        super().__init__(num_gpms)
        if per_gpm_bandwidth_gbps <= 0:
            raise ConfigError("per-GPM I/O bandwidth must be positive")
        self.per_gpm_bandwidth_gbps = per_gpm_bandwidth_gbps
        link_config = LinkConfig(
            bandwidth_gbps=per_gpm_bandwidth_gbps / 2.0,
            latency_cycles=link_latency_cycles,
            energy_pj_per_bit=energy_pj_per_bit,
        )
        # _cw[i] carries traffic i -> i+1 (mod N); _ccw[i] carries i -> i-1.
        self._cw: list[Link] = [
            Link(
                engine, link_config,
                src=f"gpm{i}", dst=f"gpm{(i + 1) % num_gpms}",
                clock_hz=clock_hz,
            )
            for i in range(num_gpms)
        ]
        self._ccw: list[Link] = [
            Link(
                engine, link_config,
                src=f"gpm{i}", dst=f"gpm{(i - 1) % num_gpms}",
                clock_hz=clock_hz,
            )
            for i in range(num_gpms)
        ]

    def route(self, src: int, dst: int) -> tuple[list[Link], int]:
        """Shortest-path link sequence around the ring."""
        n = self.num_gpms
        clockwise_distance = (dst - src) % n
        counter_distance = (src - dst) % n
        links: list[Link] = []
        if clockwise_distance <= counter_distance:
            node = src
            for _ in range(clockwise_distance):
                links.append(self._cw[node])
                node = (node + 1) % n
        else:
            node = src
            for _ in range(counter_distance):
                links.append(self._ccw[node])
                node = (node - 1) % n
        return links, 0

    def links(self) -> list[Link]:
        """All 2N directional ring links."""
        return list(self._cw) + list(self._ccw)

    def hop_count(self, src: int, dst: int) -> int:
        """Shortest-path hops between two GPMs (no side effects)."""
        n = self.num_gpms
        d = (dst - src) % n
        return min(d, n - d)

    def __repr__(self) -> str:
        return (
            f"RingTopology(n={self.num_gpms},"
            f" per-GPM {self.per_gpm_bandwidth_gbps:g} GB/s)"
        )
