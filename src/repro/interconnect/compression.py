"""Inter-GPM link compression (a Section V-E discussion item, made concrete).

The paper's discussion argues that data-compression techniques proposed for
on-chip traffic "need to be re-applied ... among GPU modules".  This module
implements that: a compression stage in front of the inter-GPM network that
shrinks payloads before they reserve link capacity.

Compression is modeled at the macro level the rest of the library works at:

* a *compression ratio* per traffic class (request headers are incompressible
  metadata; data payloads compress by the configured factor);
* a per-byte (de)compression energy cost, charged on the *uncompressed*
  bytes at both endpoints — compression is not free, and whether it pays is
  exactly the bandwidth-vs-energy trade the paper's Section V-C analyzes for
  links themselves;
* latency overhead per message for the compression pipeline.

The ablation experiment (:mod:`repro.experiments.compression_study`) sweeps
the ratio on the bandwidth-starved 32-GPM on-board design, where every byte
removed from the ring is worth far more than the joules spent removing it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.interconnect.link import Link
from repro.interconnect.topology import Topology, TransferResult


@dataclass(frozen=True)
class CompressionConfig:
    """Link-compression parameters."""

    #: Uncompressed/compressed size for data payloads (1.0 = off).
    data_ratio: float = 1.0
    #: Energy to compress + decompress one uncompressed byte (pJ/byte).
    codec_pj_per_byte: float = 2.0
    #: Added latency per compressed message (cycles).
    codec_latency_cycles: float = 8.0
    #: Payloads at or below this size skip compression (headers, requests).
    min_payload_bytes: int = 64

    def __post_init__(self) -> None:
        if self.data_ratio < 1.0:
            raise ConfigError(
                f"compression ratio must be >= 1.0, got {self.data_ratio}"
            )
        if self.codec_pj_per_byte < 0:
            raise ConfigError("codec energy must be non-negative")
        if self.codec_latency_cycles < 0:
            raise ConfigError("codec latency must be non-negative")
        if self.min_payload_bytes < 0:
            raise ConfigError("min_payload_bytes must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.data_ratio > 1.0


class CompressedTopology(Topology):
    """Wraps any topology with a payload-compression stage.

    Wire bytes shrink by the configured ratio (so links serialize and charge
    energy for less data), while the codec's own energy is accounted per
    *uncompressed* byte in :attr:`codec_bytes` for the energy model.
    """

    def __init__(self, inner: Topology, config: CompressionConfig):
        # Deliberately does NOT call super().__init__: this class delegates
        # state to `inner` and only overrides the transfer path.
        self.inner = inner
        self.config = config
        self.num_gpms = inner.num_gpms
        self.codec_bytes = 0
        self.compressed_messages = 0

    @property
    def traffic(self):
        return self.inner.traffic

    def route(self, src: int, dst: int) -> tuple[list[Link], int]:
        """Delegates routing to the wrapped topology."""
        return self.inner.route(src, dst)

    def links(self) -> list[Link]:
        """The wrapped topology's links."""
        return self.inner.links()

    def transfer(
        self, src: int, dst: int, nbytes: int, earliest: float | None = None
    ) -> TransferResult:
        """Compress eligible payloads, then transfer through the inner network."""
        config = self.config
        if not config.enabled or nbytes <= config.min_payload_bytes:
            return self.inner.transfer(src, dst, nbytes, earliest=earliest)
        wire_bytes = max(1, round(nbytes / config.data_ratio))
        self.codec_bytes += nbytes
        self.compressed_messages += 1
        result = self.inner.transfer(src, dst, wire_bytes, earliest=earliest)
        return TransferResult(
            completion_time=result.completion_time + config.codec_latency_cycles,
            hops=result.hops,
            switch_traversals=result.switch_traversals,
        )

    def max_utilization(self, elapsed: float) -> float:
        """Bottleneck-link utilization of the wrapped topology."""
        return self.inner.max_utilization(elapsed)

    def codec_energy_j(self) -> float:
        """Total (de)compression energy spent, in joules."""
        return self.codec_bytes * self.config.codec_pj_per_byte * 1e-12
