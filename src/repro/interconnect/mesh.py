"""2D-torus mesh interconnect (an on-package topology extension).

The paper's on-package configurations use a ring because planar substrates
favor multi-hop neighbor links over dedicated switch chips (Section II).  A
2D torus is the natural next step on the same substrate: each GPM keeps its
per-GPM I/O budget but spreads it over four neighbor links instead of two,
halving the average hop count (~sqrt(N)/2 instead of N/4) at the cost of
thinner links.

Routing is dimension-ordered (X then Y) over the torus's wrap-around links —
deadlock-free and deterministic, matching the library's reproducibility
requirements.  GPMs are laid out row-major on the smallest near-square grid
that holds them; non-square counts simply leave the last row short, with
wrap-around links preserving full connectivity.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.interconnect.link import Link, LinkConfig
from repro.interconnect.topology import Topology
from repro.sim.engine import Engine
from repro.units import DEFAULT_CLOCK_HZ


def grid_shape(num_gpms: int) -> tuple[int, int]:
    """Near-square (columns, rows) layout for ``num_gpms`` modules."""
    if num_gpms < 2:
        raise ConfigError("a mesh needs at least 2 GPMs")
    columns = int(math.isqrt(num_gpms))
    while num_gpms % columns != 0:
        columns -= 1
    rows = num_gpms // columns
    # Prefer the wider-than-tall orientation for readability.
    return max(columns, rows), min(columns, rows)


class MeshTopology(Topology):
    """Dimension-order-routed 2D torus of GPMs."""

    def __init__(
        self,
        engine: Engine,
        num_gpms: int,
        per_gpm_bandwidth_gbps: float,
        link_latency_cycles: float,
        energy_pj_per_bit: float,
        clock_hz: float = DEFAULT_CLOCK_HZ,
    ):
        super().__init__(num_gpms)
        if per_gpm_bandwidth_gbps <= 0:
            raise ConfigError("per-GPM I/O bandwidth must be positive")
        self.per_gpm_bandwidth_gbps = per_gpm_bandwidth_gbps
        self.columns, self.rows = grid_shape(num_gpms)
        # Four neighbor connections share the per-GPM budget; a 1-row torus
        # degenerates to a ring and keeps the ring's two-way split.
        ways = 4 if self.rows > 1 else 2
        link_config = LinkConfig(
            bandwidth_gbps=per_gpm_bandwidth_gbps / ways,
            latency_cycles=link_latency_cycles,
            energy_pj_per_bit=energy_pj_per_bit,
        )
        # Directional neighbor links keyed by (src, dst).
        self._links: dict[tuple[int, int], Link] = {}
        for gpm in range(num_gpms):
            for neighbor in self._neighbors(gpm):
                if (gpm, neighbor) not in self._links:
                    self._links[(gpm, neighbor)] = Link(
                        engine, link_config,
                        src=f"gpm{gpm}", dst=f"gpm{neighbor}",
                        clock_hz=clock_hz,
                    )

    # ----------------------------------------------------------------- layout

    def _coords(self, gpm: int) -> tuple[int, int]:
        return gpm % self.columns, gpm // self.columns

    def _gpm_at(self, x: int, y: int) -> int:
        row_width = self.columns
        # The last row may be short for non-rectangular counts; clamp x.
        gpm = y * row_width + (x % row_width)
        return gpm % self.num_gpms

    def _neighbors(self, gpm: int) -> list[int]:
        x, y = self._coords(gpm)
        neighbors = [
            self._gpm_at(x + 1, y),
            self._gpm_at(x - 1, y),
        ]
        if self.rows > 1:
            neighbors.append(self._gpm_at(x, (y + 1) % self.rows))
            neighbors.append(self._gpm_at(x, (y - 1) % self.rows))
        return [n for n in dict.fromkeys(neighbors) if n != gpm]

    @staticmethod
    def _torus_step(position: int, target: int, extent: int) -> int:
        """Next coordinate moving shortest-way around one torus dimension."""
        if position == target:
            return position
        forward = (target - position) % extent
        backward = (position - target) % extent
        if forward <= backward:
            return (position + 1) % extent
        return (position - 1) % extent

    # ---------------------------------------------------------------- routing

    def route(self, src: int, dst: int) -> tuple[list[Link], int]:
        """Dimension-ordered (X then Y) shortest-way torus route."""
        links: list[Link] = []
        x, y = self._coords(src)
        dst_x, dst_y = self._coords(dst)
        current = src
        guard = 0
        while x != dst_x:
            x = self._torus_step(x, dst_x, self.columns)
            nxt = self._gpm_at(x, y)
            links.append(self._links[(current, nxt)])
            current = nxt
            guard += 1
            if guard > self.num_gpms:  # pragma: no cover - routing invariant
                raise ConfigError("mesh X-routing failed to converge")
        while y != dst_y:
            y = self._torus_step(y, dst_y, self.rows)
            nxt = self._gpm_at(x, y)
            links.append(self._links[(current, nxt)])
            current = nxt
            guard += 1
            if guard > self.num_gpms:  # pragma: no cover - routing invariant
                raise ConfigError("mesh Y-routing failed to converge")
        return links, 0

    def links(self) -> list[Link]:
        """All directional neighbor links of the torus."""
        return list(self._links.values())

    def hop_count(self, src: int, dst: int) -> int:
        """Shortest-way torus distance (no side effects)."""
        sx, sy = self._coords(src)
        dx, dy = self._coords(dst)
        x_hops = min((dx - sx) % self.columns, (sx - dx) % self.columns)
        y_hops = min((dy - sy) % self.rows, (sy - dy) % self.rows)
        return x_hops + y_hops

    def __repr__(self) -> str:
        return (
            f"MeshTopology({self.columns}x{self.rows},"
            f" per-GPM {self.per_gpm_bandwidth_gbps:g} GB/s)"
        )
