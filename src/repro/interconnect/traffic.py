"""Aggregate interconnect traffic counters consumed by the energy model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TrafficCounters:
    """Network-wide totals for one simulation run.

    ``byte_hops`` is the energy-relevant quantity: a payload crossing three
    links costs three link traversals of energy.  ``switch_byte_traversals``
    tracks bytes that additionally passed through a switch fabric (charged the
    extra per-bit switch energy of Section V-C).
    """

    messages: int = 0
    bytes_injected: int = 0
    byte_hops: int = 0
    switch_byte_traversals: int = 0

    def record(self, nbytes: int, hops: int, switch_traversals: int) -> None:
        """Fold one transfer into the totals."""
        self.messages += 1
        self.bytes_injected += nbytes
        self.byte_hops += nbytes * hops
        self.switch_byte_traversals += nbytes * switch_traversals

    def merge(self, other: "TrafficCounters") -> None:
        """Accumulate another counter set into this one."""
        self.messages += other.messages
        self.bytes_injected += other.bytes_injected
        self.byte_hops += other.byte_hops
        self.switch_byte_traversals += other.switch_byte_traversals

    @property
    def mean_hops(self) -> float:
        if self.bytes_injected == 0:
            return 0.0
        return self.byte_hops / self.bytes_injected
