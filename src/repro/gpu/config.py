"""GPU configurations: the basic GPM, Table III scaling points, Table IV I/O.

The basic GPM mirrors the paper's building block (Section V-A1): 16 SMs with
32 KB L1 each, a 2 MB module L2, and one HBM stack at 256 GB/s.  Table III
scales the module count 1-32; Table IV sets per-GPM I/O bandwidth relative to
local DRAM bandwidth — 1x-BW (128 GB/s, on-board), 2x-BW (256 GB/s,
on-package), 4x-BW (512 GB/s, on-package).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.dvfs.config import DvfsConfig
from repro.dvfs.idle import IdleConfig
from repro.errors import ConfigError
from repro.interconnect.compression import CompressionConfig
from repro.memory.cache import CacheConfig
from repro.memory.dram import DramConfig, HBM
from repro.memory.hierarchy import HierarchyLatencies
from repro.memory.pages import PlacementPolicy
from repro.units import DEFAULT_CLOCK_HZ, KIB, MIB


class IntegrationDomain(enum.Enum):
    """Where the GPMs are integrated; drives link energy and amortization."""

    ON_PACKAGE = "on-package"
    ON_BOARD = "on-board"


class TopologyKind(enum.Enum):
    """Inter-GPM network shape."""

    RING = "ring"
    SWITCH = "switch"
    MESH = "mesh"  # 2D torus; an on-package extension (see interconnect.mesh)


class BandwidthSetting(enum.Enum):
    """Table IV per-GPM I/O bandwidth settings, relative to DRAM bandwidth."""

    BW_1X = "1x-BW"
    BW_2X = "2x-BW"
    BW_4X = "4x-BW"

    @property
    def dram_ratio(self) -> float:
        """Inter-GPM-to-DRAM bandwidth ratio of this setting."""
        return {self.BW_1X: 0.5, self.BW_2X: 1.0, self.BW_4X: 2.0}[self]


#: Published signaling energies (Section V-A2).
ON_PACKAGE_PJ_PER_BIT: float = 0.54   # ground-referenced signaling [23]
ON_BOARD_PJ_PER_BIT: float = 10.0     # board-level SerDes estimate [5]
SWITCH_HOP_PJ_PER_BIT: float = 10.0   # additional cost through a switch chip

#: Table IV's native integration domain for each bandwidth setting.
DEFAULT_DOMAIN_FOR_BW: dict[BandwidthSetting, IntegrationDomain] = {
    BandwidthSetting.BW_1X: IntegrationDomain.ON_BOARD,
    BandwidthSetting.BW_2X: IntegrationDomain.ON_PACKAGE,
    BandwidthSetting.BW_4X: IntegrationDomain.ON_PACKAGE,
}


@dataclass(frozen=True)
class GpmConfig:
    """The basic GPU module (one Table III column divided by module count)."""

    num_sms: int = 16
    l1_capacity_bytes: int = 32 * KIB
    l1_associativity: int = 4
    l2_capacity_bytes: int = 2 * MIB
    l2_associativity: int = 16
    dram: DramConfig = HBM
    issue_rate: float = 4.0
    slots_per_sm: int = 4
    clock_hz: float = DEFAULT_CLOCK_HZ
    latencies: HierarchyLatencies = field(default_factory=HierarchyLatencies)

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ConfigError("num_sms must be positive")
        if self.issue_rate <= 0:
            raise ConfigError("issue_rate must be positive")
        if self.slots_per_sm <= 0:
            raise ConfigError("slots_per_sm must be positive")
        if self.clock_hz <= 0:
            raise ConfigError("clock_hz must be positive")

    @property
    def l1_config(self) -> CacheConfig:
        return CacheConfig(
            capacity_bytes=self.l1_capacity_bytes,
            associativity=self.l1_associativity,
            name="l1",
        )

    @property
    def l2_config(self) -> CacheConfig:
        return CacheConfig(
            capacity_bytes=self.l2_capacity_bytes,
            associativity=self.l2_associativity,
            write_allocate=True,
            write_back=True,
            name="l2",
        )


@dataclass(frozen=True)
class InterconnectConfig:
    """Inter-GPM network parameters."""

    kind: TopologyKind
    per_gpm_bandwidth_gbps: float
    link_latency_cycles: float
    energy_pj_per_bit: float
    switch_hop_pj_per_bit: float = SWITCH_HOP_PJ_PER_BIT

    def __post_init__(self) -> None:
        if self.per_gpm_bandwidth_gbps <= 0:
            raise ConfigError("per-GPM I/O bandwidth must be positive")
        if self.link_latency_cycles < 0:
            raise ConfigError("link latency must be non-negative")
        if self.energy_pj_per_bit < 0:
            raise ConfigError("link energy must be non-negative")


@dataclass(frozen=True)
class GpuConfig:
    """A complete simulated GPU: N modules plus their integration domain.

    ``compression`` optionally inserts a payload-compression stage in front
    of the inter-GPM network (a Section V-E extension; see
    :mod:`repro.interconnect.compression`).

    ``dvfs`` optionally moves the core/DRAM/interconnect clock domains off
    the anchor K40 operating point (see :mod:`repro.dvfs`); ``None`` means
    the paper's fixed-clock configuration.

    ``power_cap_watts`` enforces a chip-level power budget at runtime: the
    simulator attaches a :class:`~repro.dvfs.governor.PowerCapGovernor`
    that waterfills per-GPM core points under the cap each kernel interval
    (``math.inf`` runs the governor but never throttles; ``None`` disables
    it entirely).  The cap is part of the cacheable configuration — it joins
    the config label and the sweep-cache fingerprint.

    ``idle`` optionally gives every GPM sleep states and picks the governor
    that steers the ladder on top of them (see :mod:`repro.dvfs.idle`);
    ``None`` keeps cores always-on and is bit-identical to the pre-idle
    simulator.  Like the cap, an idle config joins the label and the cache
    fingerprint; idle-off fingerprints are unchanged.
    """

    gpm: GpmConfig = field(default_factory=GpmConfig)
    num_gpms: int = 1
    interconnect: InterconnectConfig | None = None
    integration_domain: IntegrationDomain = IntegrationDomain.ON_PACKAGE
    placement_policy: PlacementPolicy = PlacementPolicy.FIRST_TOUCH
    compression: "CompressionConfig | None" = None
    dvfs: "DvfsConfig | None" = None
    power_cap_watts: float | None = None
    idle: "IdleConfig | None" = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_gpms <= 0:
            raise ConfigError("num_gpms must be positive")
        if self.num_gpms > 1 and self.interconnect is None:
            raise ConfigError(
                f"{self.num_gpms}-GPM configuration requires an interconnect"
            )
        if self.dvfs is not None and self.dvfs.core_per_gpm:
            if len(self.dvfs.core_per_gpm) != self.num_gpms:
                raise ConfigError(
                    f"dvfs.core_per_gpm has {len(self.dvfs.core_per_gpm)}"
                    f" points for {self.num_gpms} GPMs"
                )
        if self.power_cap_watts is not None and not self.power_cap_watts > 0:
            raise ConfigError(
                f"power_cap_watts must be positive, got"
                f" {self.power_cap_watts!r}"
            )
        if (
            self.power_cap_watts is not None
            and self.idle is not None
            and self.idle.governor == "deadline-paced"
        ):
            raise ConfigError(
                "a power cap and a deadline-paced governor cannot both own"
                " the operating-point policy: the cap may forbid the pace"
                " the deadline needs"
            )

    @property
    def total_sms(self) -> int:
        return self.num_gpms * self.gpm.num_sms

    @property
    def total_l2_bytes(self) -> int:
        return self.num_gpms * self.gpm.l2_capacity_bytes

    @property
    def total_dram_bandwidth_gbps(self) -> float:
        return self.num_gpms * self.gpm.dram.bandwidth_gbps

    def label(self) -> str:
        """Human-readable identity used in reports and cache keys."""
        base = self.name if self.name else f"{self.num_gpms}-GPM"
        if self.dvfs is not None:
            base = f"{base}@{self.dvfs.label()}"
        if self.power_cap_watts is not None:
            base = f"{base}+cap{self.power_cap_watts:g}W"
        if self.idle is not None:
            base = f"{base}+{self.idle.label()}"
        return base


#: GPM counts studied in Table III.
TABLE_III_GPM_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Interconnect propagation latency by integration domain (cycles).
LINK_LATENCY_CYCLES: dict[IntegrationDomain, float] = {
    IntegrationDomain.ON_PACKAGE: 15.0,
    IntegrationDomain.ON_BOARD: 45.0,
}


def table_iv_interconnect(
    bandwidth: BandwidthSetting,
    domain: IntegrationDomain | None = None,
    topology: TopologyKind = TopologyKind.RING,
    energy_pj_per_bit: float | None = None,
    gpm: GpmConfig | None = None,
) -> InterconnectConfig:
    """Build the Table IV interconnect for one bandwidth setting.

    Args:
        bandwidth: 1x/2x/4x-BW relative to local DRAM bandwidth.
        domain: overrides the setting's native integration domain.
        topology: ring (default, Section V-A1) or switch (Section V-C).
        energy_pj_per_bit: overrides the domain's published signaling energy
            (used by the interconnect-energy point study).
        gpm: module whose DRAM bandwidth anchors the ratio (default GPM).
    """
    module = gpm or GpmConfig()
    resolved_domain = domain or DEFAULT_DOMAIN_FOR_BW[bandwidth]
    energy = (
        energy_pj_per_bit
        if energy_pj_per_bit is not None
        else (
            ON_PACKAGE_PJ_PER_BIT
            if resolved_domain is IntegrationDomain.ON_PACKAGE
            else ON_BOARD_PJ_PER_BIT
        )
    )
    return InterconnectConfig(
        kind=topology,
        per_gpm_bandwidth_gbps=module.dram.bandwidth_gbps * bandwidth.dram_ratio,
        link_latency_cycles=LINK_LATENCY_CYCLES[resolved_domain],
        energy_pj_per_bit=energy,
    )


def table_iii_config(
    num_gpms: int,
    bandwidth: BandwidthSetting = BandwidthSetting.BW_2X,
    domain: IntegrationDomain | None = None,
    topology: TopologyKind = TopologyKind.RING,
    energy_pj_per_bit: float | None = None,
    gpm: GpmConfig | None = None,
) -> GpuConfig:
    """Build one Table III scaling point with Table IV I/O settings."""
    if num_gpms not in TABLE_III_GPM_COUNTS:
        raise ConfigError(
            f"num_gpms must be one of {TABLE_III_GPM_COUNTS}, got {num_gpms}"
        )
    module = gpm or GpmConfig()
    resolved_domain = domain or DEFAULT_DOMAIN_FOR_BW[bandwidth]
    interconnect = (
        None
        if num_gpms == 1
        else table_iv_interconnect(
            bandwidth,
            domain=resolved_domain,
            topology=topology,
            energy_pj_per_bit=energy_pj_per_bit,
            gpm=module,
        )
    )
    return GpuConfig(
        gpm=module,
        num_gpms=num_gpms,
        interconnect=interconnect,
        integration_domain=resolved_domain,
        name=f"{num_gpms}-GPM/{bandwidth.value}/{resolved_domain.value}/{topology.value}",
    )


def k40_config() -> GpuConfig:
    """The Tesla K40 validation platform (Table Ia): 15 SMs, 1.5 MB L2, GDDR5.

    Used by the Figure 4b experiment, which validates the calibrated GPUJoule
    model against the synthetic-silicon 'measurements' on the same platform
    the paper measured.
    """
    from repro.memory.dram import GDDR5

    return GpuConfig(
        gpm=GpmConfig(
            num_sms=15,
            l2_capacity_bytes=(3 * MIB) // 2,
            dram=GDDR5,
        ),
        num_gpms=1,
        interconnect=None,
        integration_domain=IntegrationDomain.ON_BOARD,
        name="K40",
    )


def monolithic_config(scale: int, gpm: GpmConfig | None = None) -> GpuConfig:
    """A hypothetical monolithic GPU with ``scale`` x the basic GPM resources.

    Used for the Figure 7 discussion: the same SM count as a ``scale``-GPM
    multi-module GPU but a single unified module (one big L2, aggregated DRAM
    bandwidth, no inter-module network), i.e. NUMA effects removed.
    """
    if scale <= 0:
        raise ConfigError("scale must be positive")
    module = gpm or GpmConfig()
    big_module = replace(
        module,
        num_sms=module.num_sms * scale,
        l2_capacity_bytes=module.l2_capacity_bytes * scale,
        dram=replace(
            module.dram,
            bandwidth_gbps=module.dram.bandwidth_gbps * scale,
            capacity_bytes=module.dram.capacity_bytes * scale,
        ),
    )
    return GpuConfig(
        gpm=big_module,
        num_gpms=1,
        interconnect=None,
        integration_domain=IntegrationDomain.ON_PACKAGE,
        name=f"monolithic-{scale}x",
    )
