"""The assembled multi-module GPU and its workload driver.

``MultiGpu`` owns the shared simulation engine, the GPMs, the inter-GPM
network, the global page table, and the software-coherence protocol.  Running
a workload executes its kernels back-to-back: each kernel is partitioned
across GPMs (distributed CTA scheduling), every GPM drains its share, a
global barrier closes the kernel, and the coherence protocol flash-invalidates
remote-homed L2 lines before the next launch.

DVFS enters in two ways.  A static :class:`~repro.dvfs.config.DvfsConfig`
on the configuration rescales each GPM's core domain and the global DRAM and
interconnect domains for the whole run (cacheable — part of the config
fingerprint).  A runtime :class:`~repro.dvfs.governor.Governor` additionally
re-points each GPM's core domain at every kernel boundary from its
issue-stage utilization over the interval just closed; governed runs are a
runtime behaviour, not part of the cacheable configuration.

Idle states (:class:`~repro.dvfs.idle.IdleConfig` on the configuration) add
a third mechanism at the same kernel-boundary granularity: a GPM whose share
drained before the barrier — or that had no share at all — sat idle for a
measurable *gap*, and the driver retroactively enters the deepest sleep
state whose break-even cost fits inside it.  Entry latencies stay awake
(the drain/flush), the rest of the gap lands in the histogram's sleep
buckets, and the exit latency stalls that GPM's next kernel share.  A GPM
with no work in consecutive kernels stays gated across them.  Every idle
code path is gated on ``config.idle is not None``, keeping idle-off runs
bit-identical to the pre-idle driver.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.dvfs.config import DomainScales, IDENTITY_SCALES
from repro.dvfs.governor import Governor, GpmObservation
from repro.dvfs.idle import SleepState
from repro.dvfs.operating_point import K40_OPERATING_POINT, OperatingPoint
from repro.dvfs.residency import DvfsResidency, ResidencyHistogram
from repro.errors import ConfigError
from repro.gpu.config import GpuConfig, TopologyKind
from repro.gpu.counters import CounterSet
from repro.gpu.cta_scheduler import CtaPartitioning, partition_ctas
from repro.gpu.gpm import Gpm
from repro.interconnect.compression import CompressedTopology
from repro.interconnect.mesh import MeshTopology
from repro.interconnect.ring import RingTopology
from repro.interconnect.switch import SwitchTopology
from repro.interconnect.topology import Topology
from repro.isa.kernel import Workload
from repro.memory.coherence import SoftwareCoherence
from repro.memory.pages import PagePlacement
from repro.sim.engine import AllOf, Engine, Timeout


@dataclass
class KernelStats:
    """Per-kernel timing recorded by the driver."""

    name: str
    start_cycle: float
    end_cycle: float

    @property
    def cycles(self) -> float:
        return self.end_cycle - self.start_cycle


class MultiGpu:
    """A 1..32-module GPU instance bound to one simulation engine."""

    def __init__(
        self,
        config: GpuConfig,
        partitioning: CtaPartitioning = CtaPartitioning.CONTIGUOUS,
        tracer=None,
        metrics=None,
        governor: Governor | None = None,
    ):
        self.config = config
        self.partitioning = partitioning
        self.engine = Engine(tracer=tracer, metrics=metrics)
        # Each GPM accumulates into its own shard; the chip-global totals on
        # the parent CounterSet are derived from the shards at end of run.
        self.counters = CounterSet(
            per_gpm=tuple(CounterSet() for _ in range(config.num_gpms))
        )
        self.placement = PagePlacement(
            num_gpms=config.num_gpms, policy=config.placement_policy
        )
        self.scales = [
            self._gpm_scales(gpm_id) for gpm_id in range(config.num_gpms)
        ]
        self.gpms = [
            Gpm(
                self.engine, gpm_id, config.gpm, self.placement,
                self.counters.per_gpm[gpm_id],
                scales=self.scales[gpm_id],
            )
            for gpm_id in range(config.num_gpms)
        ]
        self.topology = self._build_topology()
        peers = [gpm.memory for gpm in self.gpms]
        for gpm in self.gpms:
            gpm.memory.connect(self.topology, peers)
        self.coherence = SoftwareCoherence()
        if config.num_gpms > 1:
            for gpm in self.gpms:
                self.coherence.register_l2(gpm.gpm_id, gpm.memory.l2)
        self.kernel_stats: list[KernelStats] = []
        self.governor = governor
        #: Per-GPM anchor cycles spent at each core point (governed runs).
        self._core_residency: list[dict[OperatingPoint, float]] = [
            {} for _ in self.gpms
        ]
        #: The point each GPM last accumulated residency at; the final bucket
        #: is renormalized so every histogram exactly partitions the run.
        self._last_core_point: list[OperatingPoint | None] = [
            None for _ in self.gpms
        ]
        if governor is not None:
            self._core_points = governor.initial_points(config.num_gpms)
            for gpm, point in zip(self.gpms, self._core_points):
                gpm.apply_core_point(point, governor.curve)
            self._interval_utilization = self.engine.metrics.accumulator(
                "dvfs.interval_utilization"
            )
            self._core_mhz = self.engine.metrics.accumulator("dvfs.core_mhz")
        self.idle = config.idle
        if self.idle is not None:
            #: Per-GPM gated anchor cycles, by sleep state.
            self._sleep_residency: list[dict[SleepState, float]] = [
                {} for _ in self.gpms
            ]
            #: The state each GPM is currently gated in; sticky across
            #: kernels while the GPM has no work.
            self._asleep: list[SleepState | None] = [None for _ in self.gpms]
            #: Gated cycles inside the kernel window just closed (the
            #: governed residency subtracts them from the active bucket).
            self._window_sleep = [0.0 for _ in self.gpms]
            #: When each GPM's share of the current kernel drained.
            self._drain_cycle = [0.0 for _ in self.gpms]
            self._had_share = [False for _ in self.gpms]

    @property
    def dvfs_residency(self) -> dict[int, dict[str, float]]:
        """Governed core residency as ``{gpm_id: {point label: cycles}}``."""
        return {
            gpm_id: {point.label(): cycles for point, cycles in hist.items()}
            for gpm_id, hist in enumerate(self._core_residency)
            if hist
        }

    @property
    def sleep_residency(self) -> dict[int, dict[str, float]]:
        """Gated cycles as ``{gpm_id: {state name: cycles}}`` (idle runs)."""
        if self.idle is None:
            return {}
        return {
            gpm_id: {state.name: cycles for state, cycles in sleeps.items()}
            for gpm_id, sleeps in enumerate(self._sleep_residency)
            if sleeps
        }

    def _gpm_scales(self, gpm_id: int) -> DomainScales:
        if self.config.dvfs is None:
            return IDENTITY_SCALES
        return self.config.dvfs.scales_for_gpm(gpm_id)

    def _build_topology(self) -> Topology | None:
        config = self.config
        if config.num_gpms == 1:
            return None
        interconnect = config.interconnect
        if interconnect is None:  # pragma: no cover - GpuConfig already guards
            raise ConfigError("multi-GPM config lost its interconnect")
        # The interconnect domain is chip-global: scale link serialization
        # rate up and propagation down with its frequency ratio (exact no-ops
        # at the anchor point).
        ic_scale = self.scales[0].interconnect_freq
        bandwidth = interconnect.per_gpm_bandwidth_gbps * ic_scale
        latency = interconnect.link_latency_cycles / ic_scale
        clock_hz = config.gpm.clock_hz
        if interconnect.kind is TopologyKind.MESH:
            topology: Topology = MeshTopology(
                self.engine,
                config.num_gpms,
                per_gpm_bandwidth_gbps=bandwidth,
                link_latency_cycles=latency,
                energy_pj_per_bit=interconnect.energy_pj_per_bit,
                clock_hz=clock_hz,
            )
        elif interconnect.kind is TopologyKind.RING:
            topology = RingTopology(
                self.engine,
                config.num_gpms,
                per_gpm_bandwidth_gbps=bandwidth,
                link_latency_cycles=latency,
                energy_pj_per_bit=interconnect.energy_pj_per_bit,
                clock_hz=clock_hz,
            )
        else:
            topology = SwitchTopology(
                self.engine,
                config.num_gpms,
                per_gpm_bandwidth_gbps=bandwidth,
                link_latency_cycles=latency,
                energy_pj_per_bit=interconnect.energy_pj_per_bit,
                clock_hz=clock_hz,
            )
        if config.compression is not None:
            topology = CompressedTopology(topology, config.compression)
        return topology

    # ------------------------------------------------------------------ driver

    def _govern_interval(self, start: float) -> None:
        """One governor consultation covering the kernel just finished.

        All GPMs are observed first and the governor decides *jointly* over
        the chip (:meth:`~repro.dvfs.governor.Governor.on_chip_interval`) —
        a power-capping policy must see every module's utilization before it
        can redistribute the budget.  Per-GPM governors behave identically to
        the old one-module-at-a-time consultation.
        """
        governor = self.governor
        if governor is None:
            return
        now = self.engine.now
        window = now - start
        num_sms = self.config.gpm.num_sms
        tracer = self.engine.tracer
        observations = []
        for gpm in self.gpms:
            current = self._core_points[gpm.gpm_id]
            busy_delta = gpm.busy_cycles() - self._busy_snapshot[gpm.gpm_id]
            self._busy_snapshot[gpm.gpm_id] = gpm.busy_cycles()
            utilization = (
                0.0 if window <= 0
                else min(1.0, busy_delta / (window * num_sms))
            )
            if window > 0:
                awake = window
                if self.idle is not None:
                    awake -= self._window_sleep[gpm.gpm_id]
                hist = self._core_residency[gpm.gpm_id]
                if awake > 0:
                    hist[current] = hist.get(current, 0.0) + awake
                self._last_core_point[gpm.gpm_id] = current
            observations.append(
                GpmObservation(
                    gpm_id=gpm.gpm_id, utilization=utilization, current=current
                )
            )
        chosen_points = governor.on_chip_interval(observations, now, window)
        for gpm, observed, chosen in zip(self.gpms, observations, chosen_points):
            self._interval_utilization.add(observed.utilization)
            self._core_mhz.add(chosen.frequency_hz / 1e6)
            if chosen != observed.current:
                self._core_points[gpm.gpm_id] = chosen
                gpm.apply_core_point(chosen, governor.curve)
                if tracer.enabled:
                    tracer.instant(
                        "gpu",
                        f"dvfs.g{gpm.gpm_id}->{chosen.label()}",
                        now,
                        args={"utilization": round(observed.utilization, 3)},
                    )

    def _gated_kernel(self, gpm: Gpm, kernel, cta_ids: list[int]) -> Generator:
        """One GPM's kernel share, behind the wake stall its sleep state owes.

        Also records when the share drained: the span from there to the
        barrier is the gap :meth:`_account_idle_window` classifies.
        """
        gpm_id = gpm.gpm_id
        state = self._asleep[gpm_id]
        if state is not None:
            self._asleep[gpm_id] = None
            if state.exit_latency_cycles > 0.0:
                yield Timeout(state.exit_latency_cycles)
        yield from gpm.run_kernel(kernel, cta_ids)
        self._drain_cycle[gpm_id] = self.engine.now

    def _account_idle_window(self, start: float) -> None:
        """Classify each GPM's gap behind the kernel barrier just closed.

        A GPM that drained early (or had no share) sat idle until the
        barrier; if the gap clears a sleep state's break-even cost, the GPM
        entered that state: the entry latency stays awake (the drain and
        flush), the remainder of the gap is gated.  A GPM that was already
        gated and got no work stays gated across the whole window, paying
        no new entry cost.
        """
        idle = self.idle
        now = self.engine.now
        tracer = self.engine.tracer
        for gpm in self.gpms:
            gpm_id = gpm.gpm_id
            self._window_sleep[gpm_id] = 0.0
            state = self._asleep[gpm_id]
            if state is not None:
                slept = now - start
                if slept > 0.0:
                    sleeps = self._sleep_residency[gpm_id]
                    sleeps[state] = sleeps.get(state, 0.0) + slept
                    self._window_sleep[gpm_id] = slept
                continue
            drained = (
                self._drain_cycle[gpm_id] if self._had_share[gpm_id] else start
            )
            gap = now - drained
            state = idle.state_for_gap(gap)
            if state is None:
                continue
            slept = gap - state.entry_latency_cycles
            sleeps = self._sleep_residency[gpm_id]
            sleeps[state] = sleeps.get(state, 0.0) + slept
            self._window_sleep[gpm_id] = slept
            self._asleep[gpm_id] = state
            if tracer.enabled:
                tracer.instant(
                    "gpu",
                    f"idle.g{gpm_id}->{state.name}",
                    now,
                    args={"gap_cycles": round(gap, 1)},
                )

    def _workload_body(self, workload: Workload) -> Generator:
        tracer = self.engine.tracer
        if self.governor is not None:
            self.governor.on_run_begin(len(workload.kernels))
            self._busy_snapshot = [gpm.busy_cycles() for gpm in self.gpms]
        for kernel in workload.kernels:
            start = self.engine.now
            partitions = partition_ctas(
                kernel.num_ctas, self.config.num_gpms, self.partitioning
            )
            if tracer.enabled:
                tracer.begin(
                    "gpu",
                    kernel.name,
                    start,
                    args={
                        "ctas": kernel.num_ctas,
                        "warps_per_cta": kernel.warps_per_cta,
                    },
                )
            if self.idle is None:
                processes = [
                    self.engine.process(
                        gpm.run_kernel(kernel, cta_ids),
                        name=f"gpm{gpm.gpm_id}.{kernel.name}",
                    )
                    for gpm, cta_ids in zip(self.gpms, partitions)
                    if cta_ids
                ]
            else:
                processes = []
                for gpm, cta_ids in zip(self.gpms, partitions):
                    self._had_share[gpm.gpm_id] = bool(cta_ids)
                    if not cta_ids:
                        continue
                    processes.append(
                        self.engine.process(
                            self._gated_kernel(gpm, kernel, cta_ids),
                            name=f"gpm{gpm.gpm_id}.{kernel.name}",
                        )
                    )
            yield AllOf([process.done for process in processes])
            if tracer.enabled:
                tracer.end("gpu", self.engine.now)
            self.kernel_stats.append(
                KernelStats(kernel.name, start_cycle=start, end_cycle=self.engine.now)
            )
            if self.idle is not None:
                self._account_idle_window(start)
            self._govern_interval(start)
            if self.config.num_gpms > 1:
                self.coherence.kernel_boundary()
                if tracer.enabled:
                    tracer.instant("gpu", "coherence.flush", self.engine.now)

    def run(self, workload: Workload, max_events: int | None = None) -> CounterSet:
        """Execute ``workload`` to completion and return the filled counters."""
        self.placement.set_interleaved_from(workload.interleaved_base)
        driver = self.engine.process(self._workload_body(workload), name="driver")
        self.engine.run(max_events=max_events)
        if not driver.done.triggered:
            raise ConfigError(
                f"workload {workload.name!r} deadlocked: driver never finished"
            )
        elapsed = self.engine.now
        counters = self.counters
        for gpm, shard in zip(self.gpms, counters.per_gpm):
            shard.elapsed_cycles = elapsed
            shard.sm_busy_cycles = gpm.busy_cycles()
            shard.sm_idle_cycles = gpm.idle_cycles(elapsed)
        # Chip-global totals derive from the shards: integer sums are exact,
        # and the float sums accumulate in GPM order — the same association
        # order as summing the GPMs directly.
        for shard in counters.per_gpm:
            counters.merge(shard)
        counters.elapsed_cycles = elapsed
        if self.topology is not None:
            traffic = self.topology.traffic
            counters.inter_gpm_bytes = traffic.bytes_injected
            counters.inter_gpm_byte_hops = traffic.byte_hops
            counters.switch_byte_traversals = traffic.switch_byte_traversals
            if isinstance(self.topology, CompressedTopology):
                counters.compression_codec_bytes = self.topology.codec_bytes
        return counters

    def _normalized_core_histogram(
        self, gpm_id: int, elapsed: float
    ) -> ResidencyHistogram:
        """One GPM's governed core histogram, made to partition the run.

        Interval windows are float differences, so their sum drifts from the
        true elapsed time by accumulated dust — and trailing fire-and-forget
        drains extend the run past the last governor interval entirely.  Both
        gaps belong to the point the GPM last sat at, so the final bucket is
        set to exactly ``elapsed`` minus the other buckets — sleep buckets
        included — making ``total_cycles == elapsed`` hold in exact float64.
        """
        recorded = self._core_residency[gpm_id]
        sleep = (
            dict(self._sleep_residency[gpm_id])
            if self.idle is not None
            else {}
        )
        last = self._last_core_point[gpm_id]
        if last is None:
            return ResidencyHistogram(dict(recorded), sleep)
        cycles = {
            point: window
            for point, window in recorded.items()
            if point != last
        }
        residual = elapsed - sum(cycles.values()) - sum(sleep.values())
        cycles[last] = residual if residual > 0.0 else recorded.get(last, 0.0)
        return ResidencyHistogram(cycles, sleep)

    def residency(self) -> DvfsResidency:
        """Per-domain time-at-operating-point record of the finished run.

        Governed runs report the accumulated per-GPM core histograms (DRAM
        and interconnect stay at their configured static points); ungoverned
        runs degenerate to single-bucket histograms spanning the whole run.
        """
        dvfs = self.config.dvfs
        dram_point = dvfs.dram if dvfs is not None else K40_OPERATING_POINT
        ic_point = (
            dvfs.interconnect if dvfs is not None else K40_OPERATING_POINT
        )
        elapsed = self.engine.now
        if self.governor is not None:
            return DvfsResidency(
                core=tuple(
                    self._normalized_core_histogram(gpm_id, elapsed)
                    for gpm_id in range(len(self.gpms))
                ),
                dram=ResidencyHistogram.single(dram_point, elapsed),
                interconnect=ResidencyHistogram.single(ic_point, elapsed),
            )
        core_points = [
            dvfs.core_point_for(gpm.gpm_id) if dvfs is not None
            else K40_OPERATING_POINT
            for gpm in self.gpms
        ]
        if self.idle is None:
            return DvfsResidency.static_run(
                elapsed, core_points, dram_point, ic_point
            )
        # Ungoverned idle run: one awake bucket per GPM (its static point)
        # plus whatever it slept; awake = elapsed - slept by construction,
        # so every histogram partitions the run exactly.
        core = []
        for gpm_id, point in enumerate(core_points):
            sleep = dict(self._sleep_residency[gpm_id])
            awake = elapsed - sum(sleep.values())
            core.append(ResidencyHistogram({point: awake}, sleep))
        return DvfsResidency(
            core=tuple(core),
            dram=ResidencyHistogram.single(dram_point, elapsed),
            interconnect=ResidencyHistogram.single(ic_point, elapsed),
        )
