"""The assembled multi-module GPU and its workload driver.

``MultiGpu`` owns the shared simulation engine, the GPMs, the inter-GPM
network, the global page table, and the software-coherence protocol.  Running
a workload executes its kernels back-to-back: each kernel is partitioned
across GPMs (distributed CTA scheduling), every GPM drains its share, a
global barrier closes the kernel, and the coherence protocol flash-invalidates
remote-homed L2 lines before the next launch.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpu.config import GpuConfig, TopologyKind
from repro.gpu.counters import CounterSet
from repro.gpu.cta_scheduler import CtaPartitioning, partition_ctas
from repro.gpu.gpm import Gpm
from repro.interconnect.compression import CompressedTopology
from repro.interconnect.mesh import MeshTopology
from repro.interconnect.ring import RingTopology
from repro.interconnect.switch import SwitchTopology
from repro.interconnect.topology import Topology
from repro.isa.kernel import Workload
from repro.memory.coherence import SoftwareCoherence
from repro.memory.pages import PagePlacement
from repro.sim.engine import AllOf, Engine


@dataclass
class KernelStats:
    """Per-kernel timing recorded by the driver."""

    name: str
    start_cycle: float
    end_cycle: float

    @property
    def cycles(self) -> float:
        return self.end_cycle - self.start_cycle


class MultiGpu:
    """A 1..32-module GPU instance bound to one simulation engine."""

    def __init__(
        self,
        config: GpuConfig,
        partitioning: CtaPartitioning = CtaPartitioning.CONTIGUOUS,
        tracer=None,
        metrics=None,
    ):
        self.config = config
        self.partitioning = partitioning
        self.engine = Engine(tracer=tracer, metrics=metrics)
        self.counters = CounterSet()
        self.placement = PagePlacement(
            num_gpms=config.num_gpms, policy=config.placement_policy
        )
        self.gpms = [
            Gpm(self.engine, gpm_id, config.gpm, self.placement, self.counters)
            for gpm_id in range(config.num_gpms)
        ]
        self.topology = self._build_topology()
        peers = [gpm.memory for gpm in self.gpms]
        for gpm in self.gpms:
            gpm.memory.connect(self.topology, peers)
        self.coherence = SoftwareCoherence()
        if config.num_gpms > 1:
            for gpm in self.gpms:
                self.coherence.register_l2(gpm.gpm_id, gpm.memory.l2)
        self.kernel_stats: list[KernelStats] = []

    def _build_topology(self) -> Topology | None:
        config = self.config
        if config.num_gpms == 1:
            return None
        interconnect = config.interconnect
        if interconnect is None:  # pragma: no cover - GpuConfig already guards
            raise ConfigError("multi-GPM config lost its interconnect")
        if interconnect.kind is TopologyKind.MESH:
            topology: Topology = MeshTopology(
                self.engine,
                config.num_gpms,
                per_gpm_bandwidth_gbps=interconnect.per_gpm_bandwidth_gbps,
                link_latency_cycles=interconnect.link_latency_cycles,
                energy_pj_per_bit=interconnect.energy_pj_per_bit,
            )
        elif interconnect.kind is TopologyKind.RING:
            topology = RingTopology(
                self.engine,
                config.num_gpms,
                per_gpm_bandwidth_gbps=interconnect.per_gpm_bandwidth_gbps,
                link_latency_cycles=interconnect.link_latency_cycles,
                energy_pj_per_bit=interconnect.energy_pj_per_bit,
            )
        else:
            topology = SwitchTopology(
                self.engine,
                config.num_gpms,
                per_gpm_bandwidth_gbps=interconnect.per_gpm_bandwidth_gbps,
                link_latency_cycles=interconnect.link_latency_cycles,
                energy_pj_per_bit=interconnect.energy_pj_per_bit,
            )
        if config.compression is not None:
            topology = CompressedTopology(topology, config.compression)
        return topology

    # ------------------------------------------------------------------ driver

    def _workload_body(self, workload: Workload) -> Generator:
        tracer = self.engine.tracer
        for kernel in workload.kernels:
            start = self.engine.now
            partitions = partition_ctas(
                kernel.num_ctas, self.config.num_gpms, self.partitioning
            )
            if tracer.enabled:
                tracer.begin(
                    "gpu",
                    kernel.name,
                    start,
                    args={
                        "ctas": kernel.num_ctas,
                        "warps_per_cta": kernel.warps_per_cta,
                    },
                )
            processes = [
                self.engine.process(
                    gpm.run_kernel(kernel, cta_ids),
                    name=f"gpm{gpm.gpm_id}.{kernel.name}",
                )
                for gpm, cta_ids in zip(self.gpms, partitions)
                if cta_ids
            ]
            yield AllOf([process.done for process in processes])
            if tracer.enabled:
                tracer.end("gpu", self.engine.now)
            self.kernel_stats.append(
                KernelStats(kernel.name, start_cycle=start, end_cycle=self.engine.now)
            )
            if self.config.num_gpms > 1:
                self.coherence.kernel_boundary()
                if tracer.enabled:
                    tracer.instant("gpu", "coherence.flush", self.engine.now)

    def run(self, workload: Workload, max_events: int | None = None) -> CounterSet:
        """Execute ``workload`` to completion and return the filled counters."""
        self.placement.set_interleaved_from(workload.interleaved_base)
        driver = self.engine.process(self._workload_body(workload), name="driver")
        self.engine.run(max_events=max_events)
        if not driver.done.triggered:
            raise ConfigError(
                f"workload {workload.name!r} deadlocked: driver never finished"
            )
        elapsed = self.engine.now
        counters = self.counters
        counters.elapsed_cycles = elapsed
        counters.sm_busy_cycles = sum(gpm.busy_cycles() for gpm in self.gpms)
        counters.sm_idle_cycles = sum(gpm.idle_cycles(elapsed) for gpm in self.gpms)
        if self.topology is not None:
            traffic = self.topology.traffic
            counters.inter_gpm_bytes = traffic.bytes_injected
            counters.inter_gpm_byte_hops = traffic.byte_hops
            counters.switch_byte_traversals = traffic.switch_byte_traversals
            if isinstance(self.topology, CompressedTopology):
                counters.compression_codec_bytes = self.topology.codec_bytes
        return counters
