"""GPU assembly: configurations, GPMs, CTA scheduling, and the simulator facade."""

from repro.gpu.config import (
    BandwidthSetting,
    GpmConfig,
    GpuConfig,
    IntegrationDomain,
    InterconnectConfig,
    TopologyKind,
    monolithic_config,
    table_iii_config,
)
from repro.gpu.counters import CounterSet
from repro.gpu.simulator import GpuSimulator, RunResult, simulate

__all__ = [
    "BandwidthSetting",
    "GpmConfig",
    "GpuConfig",
    "IntegrationDomain",
    "InterconnectConfig",
    "TopologyKind",
    "monolithic_config",
    "table_iii_config",
    "CounterSet",
    "GpuSimulator",
    "RunResult",
    "simulate",
]
