"""Simulator facade: one call from (workload, config) to counters and time.

This is the integration point the rest of the package uses: GPUJoule consumes
the returned :class:`~repro.gpu.counters.CounterSet` and execution time, the
EDPSE analysis consumes the derived speedups, and the experiment drivers never
touch engine internals.  The sweep service (``repro.service``) executes
through this same facade — one :func:`simulate` call per admitted job, in a
worker thread's executor — so service results are bit-identical to direct
calls and share the sweep cache's content-addressed keys
(``repro.service.keys``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.dvfs.governor import Governor
from repro.dvfs.idle import governor_for
from repro.dvfs.operating_point import K40_VF_CURVE
from repro.dvfs.residency import DvfsResidency
from repro.gpu.config import GpuConfig
from repro.gpu.counters import CounterSet
from repro.gpu.cta_scheduler import CtaPartitioning
from repro.gpu.multigpu import KernelStats, MultiGpu
from repro.isa.kernel import Workload
from repro.trace.metrics import MetricsRegistry
from repro.trace.tracer import Tracer
from repro.units import cycles_to_seconds


@dataclass(frozen=True)
class ShardingSummary:
    """How a run was (or was not) split across per-GPM shard engines."""

    #: Shard count the caller asked for.
    requested: int
    #: Shard engines actually used (1 when the run fell back).
    shards: int
    #: OS processes the shards were spread over.
    workers: int
    #: Why the run fell back to the single-process engine, or ``None``.
    fallback_reason: str | None = None

    @property
    def used_sharding(self) -> bool:
        return self.shards > 1


@dataclass
class RunResult:
    """Everything one simulation run produces."""

    workload_name: str
    config_label: str
    counters: CounterSet
    kernel_stats: list[KernelStats] = field(default_factory=list)
    clock_hz: float = 0.0
    metrics: MetricsRegistry | None = None
    #: Engine callbacks dispatched during the run (throughput accounting).
    events_processed: int = 0
    #: Host wall-clock seconds the simulation took (not simulated time).
    wall_time_s: float = 0.0
    #: Per-domain time-at-operating-point record (energy pricing input).
    residency: DvfsResidency | None = None
    #: The governor that steered the run, when one did (decision trace).
    governor: Governor | None = None
    #: Shard-engine usage record; ``None`` for plain single-engine runs.
    sharding: ShardingSummary | None = None

    @property
    def events_per_sec(self) -> float:
        """Host-side simulator throughput for this run."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.events_processed / self.wall_time_s

    @property
    def cycles(self) -> float:
        return self.counters.elapsed_cycles

    @property
    def seconds(self) -> float:
        return cycles_to_seconds(self.counters.elapsed_cycles, self.clock_hz)

    @property
    def sm_utilization(self) -> float:
        """Mean SM issue-stage utilization over the run."""
        busy = self.counters.sm_busy_cycles
        total = busy + self.counters.sm_idle_cycles
        return 0.0 if total == 0 else busy / total

    def energy_breakdown(self, params: "EnergyParams") -> "EnergyBreakdown":
        """Price this run under ``params`` (per-GPM attribution included).

        Convenience over building an :class:`~repro.core.EnergyModel` by
        hand; when the params carry per-GPM core pricing and the counters
        carry shards, the returned breakdown's ``per_gpm`` entries attribute
        each module's core-domain energy at its own scale.
        """
        from repro.core.energy_model import EnergyModel

        return EnergyModel(params).evaluate(self.counters, self.seconds)

    def __repr__(self) -> str:
        return (
            f"RunResult({self.workload_name!r} on {self.config_label!r},"
            f" {self.cycles:.0f} cycles, util={self.sm_utilization:.2f})"
        )


class GpuSimulator:
    """Reusable entry point binding a configuration to workload runs."""

    def __init__(
        self,
        config: GpuConfig,
        partitioning: CtaPartitioning = CtaPartitioning.CONTIGUOUS,
    ):
        self.config = config
        self.partitioning = partitioning

    def run(
        self,
        workload: Workload,
        max_events: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        governor: Governor | None = None,
        shards: int = 1,
        shard_workers: int | None = None,
    ) -> RunResult:
        """Simulate ``workload`` on a fresh GPU instance.

        Every run builds a new :class:`MultiGpu`, so results are independent
        and deterministic: identical (workload, config) pairs produce
        identical counters.  Pass a :class:`~repro.trace.ChromeTracer` to
        capture the run's event timeline and/or a
        :class:`~repro.trace.MetricsRegistry` to collect component metrics;
        both default to the no-op fast path.  A
        :class:`~repro.dvfs.governor.Governor` re-points each GPM's core
        V/f domain at kernel boundaries; explicitly-passed governors are
        runtime behaviour and must not go through the sweep cache.

        A configuration with ``power_cap_watts`` or ``idle`` set (and no
        explicit governor) automatically attaches the governor those knobs
        imply — a :class:`~repro.dvfs.governor.PowerCapGovernor` for the
        budget, or the :mod:`repro.dvfs.idle` governor kind the idle config
        selects — making the run a deterministic function of the
        configuration, which is what lets it share the sweep cache (both
        knobs join the cache fingerprint).

        ``shards > 1`` requests the per-GPM sharded engine
        (:mod:`repro.sim.sharded`): decoupled workloads split across
        ``shards`` private engines (over ``shard_workers`` processes) with
        bit-identical results; runs that cannot shard fall back to this
        single-process path and record why on ``RunResult.sharding``.
        """
        if governor is None and (
            self.config.power_cap_watts is not None
            or self.config.idle is not None
        ):
            curve = (
                self.config.dvfs.curve
                if self.config.dvfs is not None
                else K40_VF_CURVE
            )
            governor = governor_for(
                self.config.idle, self.config.power_cap_watts, curve
            )
        if shards > 1:
            # Deferred import: repro.sim.sharded drives this facade for its
            # fallback path, so a module-scope import would cycle.
            from repro.sim.sharded import run_sharded

            return run_sharded(
                workload,
                self.config,
                shards=shards,
                partitioning=self.partitioning,
                governor=governor,
                metrics=metrics,
                tracer=tracer,
                max_events=max_events,
                workers=shard_workers,
            )
        gpu = MultiGpu(
            self.config,
            partitioning=self.partitioning,
            tracer=tracer,
            metrics=metrics,
            governor=governor,
        )
        start = time.perf_counter()
        counters = gpu.run(workload, max_events=max_events)
        wall_time_s = time.perf_counter() - start
        return RunResult(
            workload_name=workload.name,
            config_label=self.config.label(),
            counters=counters,
            kernel_stats=list(gpu.kernel_stats),
            clock_hz=self.config.gpm.clock_hz,
            metrics=gpu.engine.metrics,
            events_processed=gpu.engine.events_processed,
            wall_time_s=wall_time_s,
            residency=gpu.residency(),
            governor=governor,
        )


def simulate(
    workload: Workload,
    config: GpuConfig,
    partitioning: CtaPartitioning = CtaPartitioning.CONTIGUOUS,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    governor: Governor | None = None,
    shards: int = 1,
    shard_workers: int | None = None,
) -> RunResult:
    """Convenience wrapper: simulate one workload on one configuration."""
    return GpuSimulator(config, partitioning=partitioning).run(
        workload,
        tracer=tracer,
        metrics=metrics,
        governor=governor,
        shards=shards,
        shard_workers=shard_workers,
    )
