"""One GPU module: SMs, memory path, and its kernel driver."""

from __future__ import annotations

from collections.abc import Generator

from repro.gpu.config import GpmConfig
from repro.gpu.counters import CounterSet
from repro.isa.kernel import Kernel
from repro.memory.dram import DramChannel
from repro.memory.hierarchy import GpmMemory
from repro.memory.pages import PagePlacement
from repro.sim.engine import Engine
from repro.sm.scheduler import CtaSlotScheduler
from repro.sm.smcore import SmCore


class Gpm:
    """A GPU module: the replicated building block of the multi-module GPU."""

    def __init__(
        self,
        engine: Engine,
        gpm_id: int,
        config: GpmConfig,
        placement: PagePlacement,
        counters: CounterSet,
    ):
        self.engine = engine
        self.gpm_id = gpm_id
        self.config = config
        self.counters = counters
        self.dram = DramChannel(engine, config.dram, name=f"gpm{gpm_id}.dram")
        self.memory = GpmMemory(
            engine=engine,
            gpm_id=gpm_id,
            num_sms=config.num_sms,
            l1_config=config.l1_config,
            l2_config=config.l2_config,
            dram=self.dram,
            placement=placement,
            counters=counters,
            latencies=config.latencies,
        )
        self.sms = [
            SmCore(
                engine=engine,
                sm_id=gpm_id * config.num_sms + local,
                gpm_id=gpm_id,
                local_index=local,
                issue_rate=config.issue_rate,
                memory=self.memory,
                counters=counters,
            )
            for local in range(config.num_sms)
        ]
        self.scheduler = CtaSlotScheduler(self.sms, config.slots_per_sm)

    def run_kernel(self, kernel: Kernel, cta_ids: list[int]) -> Generator:
        """Process generator executing this GPM's share of one kernel."""
        if not cta_ids:
            return
            yield  # pragma: no cover - keeps this a generator for empty shares
        yield from self.scheduler.run_kernel(kernel, cta_ids)

    def busy_cycles(self) -> float:
        """Summed SM issue-stage busy cycles."""
        return sum(sm.busy_cycles() for sm in self.sms)

    def idle_cycles(self, elapsed: float) -> float:
        """Summed SM issue-stage idle cycles over an elapsed window."""
        return sum(sm.idle_cycles(elapsed) for sm in self.sms)

    def __repr__(self) -> str:
        return f"Gpm(id={self.gpm_id}, sms={self.config.num_sms})"
