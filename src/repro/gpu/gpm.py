"""One GPU module: SMs, memory path, and its kernel driver.

Clock domains: the engine's timebase is the *anchor* core clock
(``config.clock_hz``); a :class:`~repro.dvfs.config.DomainScales` bundle
rescales this module's rates relative to it — SM issue throughput and cache
pipeline latencies for the core domain, DRAM bandwidth and access latency
for the memory domain.  At the anchor point every ratio is exactly 1.0 and
the arithmetic is IEEE-exact, so un-scaled configurations behave
bit-identically to a build without DVFS.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import replace

from repro.dvfs.config import DomainScales, IDENTITY_SCALES
from repro.dvfs.operating_point import OperatingPoint, VfCurve
from repro.gpu.config import GpmConfig
from repro.gpu.counters import CounterSet
from repro.isa.kernel import Kernel
from repro.memory.dram import DramChannel
from repro.memory.hierarchy import GpmMemory, HierarchyLatencies
from repro.memory.pages import PagePlacement
from repro.sim.engine import Engine
from repro.sm.scheduler import CtaSlotScheduler
from repro.sm.smcore import SmCore


class Gpm:
    """A GPU module: the replicated building block of the multi-module GPU."""

    def __init__(
        self,
        engine: Engine,
        gpm_id: int,
        config: GpmConfig,
        placement: PagePlacement,
        counters: CounterSet,
        scales: DomainScales | None = None,
    ):
        scales = IDENTITY_SCALES if scales is None else scales
        self.engine = engine
        self.gpm_id = gpm_id
        self.config = config
        self.counters = counters
        self.scales = scales
        self.core_scale = scales.core_freq
        dram_config = replace(
            config.dram,
            bandwidth_gbps=config.dram.bandwidth_gbps * scales.dram_freq,
            latency_cycles=config.dram.latency_cycles / scales.dram_freq,
        )
        self.dram = DramChannel(
            engine, dram_config, name=f"gpm{gpm_id}.dram",
            clock_hz=config.clock_hz,
        )
        self.memory = GpmMemory(
            engine=engine,
            gpm_id=gpm_id,
            num_sms=config.num_sms,
            l1_config=config.l1_config,
            l2_config=config.l2_config,
            dram=self.dram,
            placement=placement,
            counters=counters,
            latencies=self._scaled_latencies(scales.core_freq),
        )
        self.sms = [
            SmCore(
                engine=engine,
                sm_id=gpm_id * config.num_sms + local,
                gpm_id=gpm_id,
                local_index=local,
                issue_rate=config.issue_rate * scales.core_freq,
                memory=self.memory,
                counters=counters,
            )
            for local in range(config.num_sms)
        ]
        self.scheduler = CtaSlotScheduler(self.sms, config.slots_per_sm)

    def _scaled_latencies(self, core_ratio: float) -> HierarchyLatencies:
        """Fixed core-cycle pipeline depths expressed in anchor cycles."""
        base = self.config.latencies
        return HierarchyLatencies(
            shared=base.shared / core_ratio,
            l1=base.l1 / core_ratio,
            l2=base.l2 / core_ratio,
        )

    # -------------------------------------------------------------------- dvfs

    def apply_core_point(self, point: OperatingPoint, curve: VfCurve) -> None:
        """Retarget this module's core domain to ``point`` (governor hook).

        Takes effect for subsequently issued work: issue reservations use the
        new rate and cache stages the new latencies; in-flight reservations
        keep the completion times they were given (the standard horizon-server
        approximation).
        """
        ratio = curve.frequency_ratio(point)
        self.core_scale = ratio
        for sm in self.sms:
            sm.issue.rate = self.config.issue_rate * ratio
        self.memory.latencies = self._scaled_latencies(ratio)

    def run_kernel(self, kernel: Kernel, cta_ids: list[int]) -> Generator:
        """Process generator executing this GPM's share of one kernel."""
        if not cta_ids:
            return
            yield  # pragma: no cover - keeps this a generator for empty shares
        yield from self.scheduler.run_kernel(kernel, cta_ids)

    def busy_cycles(self) -> float:
        """Summed SM issue-stage busy cycles."""
        return sum(sm.busy_cycles() for sm in self.sms)

    def idle_cycles(self, elapsed: float) -> float:
        """Summed SM issue-stage idle cycles over an elapsed window."""
        return sum(sm.idle_cycles(elapsed) for sm in self.sms)

    def __repr__(self) -> str:
        return f"Gpm(id={self.gpm_id}, sms={self.config.num_sms})"
