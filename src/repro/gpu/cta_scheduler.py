"""Distributed thread-block (CTA) scheduling across GPMs.

Following the multi-module GPU proposals the paper builds on, CTAs are
partitioned across GPMs in *contiguous chunks*: CTA ids [0, C) are split into
``num_gpms`` consecutive ranges.  Adjacent CTAs of real kernels touch adjacent
data, so contiguous assignment plus first-touch page placement localizes the
bulk of each GPM's working set in its own DRAM stack — the locality capture
the paper assumes (Section V-A1).

A round-robin partitioner is included as the locality-oblivious baseline for
ablation studies: it interleaves CTA ids across GPMs, destroying the
correlation between CTA adjacency and GPM residency.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError


class CtaPartitioning(enum.Enum):
    """How the grid is split across modules."""

    CONTIGUOUS = "contiguous"
    ROUND_ROBIN = "round_robin"


def partition_ctas(
    num_ctas: int,
    num_gpms: int,
    scheme: CtaPartitioning = CtaPartitioning.CONTIGUOUS,
) -> list[list[int]]:
    """Split CTA ids [0, num_ctas) into one work list per GPM.

    Contiguous partitioning assigns each GPM a consecutive range; when the
    grid does not divide evenly, the first ``num_ctas % num_gpms`` GPMs take
    one extra CTA, so sizes differ by at most one.
    """
    if num_ctas <= 0:
        raise ConfigError(f"num_ctas must be positive, got {num_ctas}")
    if num_gpms <= 0:
        raise ConfigError(f"num_gpms must be positive, got {num_gpms}")

    if scheme is CtaPartitioning.ROUND_ROBIN:
        partitions: list[list[int]] = [[] for _ in range(num_gpms)]
        for cta in range(num_ctas):
            partitions[cta % num_gpms].append(cta)
        return partitions

    base = num_ctas // num_gpms
    extra = num_ctas % num_gpms
    partitions = []
    start = 0
    for gpm in range(num_gpms):
        size = base + (1 if gpm < extra else 0)
        partitions.append(list(range(start, start + size)))
        start += size
    return partitions


def partition_bounds(num_ctas: int, num_gpms: int) -> list[tuple[int, int]]:
    """Half-open [start, end) CTA ranges of the contiguous partitioning.

    Workload generators use these bounds to reason about which GPM will
    first-touch a CTA's data without materializing the id lists.
    """
    partitions = partition_ctas(num_ctas, num_gpms, CtaPartitioning.CONTIGUOUS)
    bounds = []
    for ids in partitions:
        if ids:
            bounds.append((ids[0], ids[-1] + 1))
        else:
            bounds.append((0, 0))
    return bounds
