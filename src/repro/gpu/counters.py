"""Performance counters bridging the simulator and the GPUJoule energy model.

The GPUJoule equation (Eq. 4) needs exactly four families of inputs:

1. per-opcode instruction counts (``instructions``),
2. memory transaction counts at each hierarchy level, at the transaction
   granularities implied by Table Ib (128 B for shared->RF and L1->RF, 32 B
   sectors for L2->L1 and DRAM->L2),
3. compute-lane stall counts (we use aggregate SM issue-slot idle cycles),
4. execution time (for the constant-power term).

The interconnect counters (bytes, byte-hops, switch traversals) extend the
model for the multi-module study exactly as Section V-A2 extends it with link
signaling energy.  Everything else in the struct is diagnostic.

A chip-level :class:`CounterSet` may additionally carry one *shard* per GPM
(``per_gpm``): the same struct, restricted to events that physically happened
on that module's hardware.  Shards are what let the energy model price each
GPM's core-domain events at that GPM's own V²f scale when modules run at
different operating points (see ``docs/POWER.md``); the chip-global integer
totals are always the exact sums of the shard values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.isa.opcodes import Opcode


@dataclass
class CounterSet:
    """All event counts produced by one simulation run."""

    # -- instruction execution ------------------------------------------------
    instructions: dict[Opcode, int] = field(default_factory=dict)

    # -- memory transactions (at Table Ib granularities) ----------------------
    shared_rf_txns: int = 0   # 128 B shared-memory <-> register-file moves
    l1_rf_txns: int = 0       # 128 B L1 <-> register-file moves
    l2_l1_txns: int = 0       # 32 B  L2 <-> L1 sector moves
    dram_l2_txns: int = 0     # 32 B  DRAM <-> L2 sector moves

    # -- inter-GPM interconnect ------------------------------------------------
    inter_gpm_bytes: int = 0            # payload bytes injected into the network
    inter_gpm_byte_hops: int = 0        # bytes x link traversals (energy basis)
    switch_byte_traversals: int = 0     # bytes through a switch fabric
    compression_codec_bytes: int = 0    # uncompressed bytes through link codecs

    # -- pipeline utilization ---------------------------------------------------
    sm_busy_cycles: float = 0.0   # summed over SMs
    sm_idle_cycles: float = 0.0   # summed over SMs ("stalls" in Eq. 4)

    # -- time -------------------------------------------------------------------
    elapsed_cycles: float = 0.0

    # -- diagnostics --------------------------------------------------------------
    local_accesses: int = 0
    remote_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dirty_writebacks: int = 0

    # -- per-GPM shards -----------------------------------------------------------
    #: One shard per GPM, in GPM-id order, each holding the events that
    #: happened on that module's hardware.  Empty on shard structs themselves
    #: and on counters from sources without module attribution.
    per_gpm: tuple["CounterSet", ...] = ()

    def count_instruction(self, opcode: Opcode, count: int = 1) -> None:
        """Record ``count`` dynamic executions of ``opcode``."""
        self.instructions[opcode] = self.instructions.get(opcode, 0) + count

    def count_compute_map(self, compute: dict[Opcode, int]) -> None:
        """Record a segment's aggregate compute counts."""
        instructions = self.instructions
        for opcode, count in compute.items():
            instructions[opcode] = instructions.get(opcode, 0) + count

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions.values())

    @property
    def total_memory_accesses(self) -> int:
        return self.local_accesses + self.remote_accesses

    @property
    def remote_fraction(self) -> float:
        total = self.total_memory_accesses
        return 0.0 if total == 0 else self.remote_accesses / total

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return 0.0 if total == 0 else self.l1_hits / total

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return 0.0 if total == 0 else self.l2_hits / total

    def merge(self, other: "CounterSet") -> None:
        """Accumulate another run's counters (used per-kernel -> per-workload).

        ``elapsed_cycles`` adds, since kernels execute back-to-back.
        """
        for opcode, count in other.instructions.items():
            self.count_instruction(opcode, count)
        self.shared_rf_txns += other.shared_rf_txns
        self.l1_rf_txns += other.l1_rf_txns
        self.l2_l1_txns += other.l2_l1_txns
        self.dram_l2_txns += other.dram_l2_txns
        self.inter_gpm_bytes += other.inter_gpm_bytes
        self.inter_gpm_byte_hops += other.inter_gpm_byte_hops
        self.switch_byte_traversals += other.switch_byte_traversals
        self.compression_codec_bytes += other.compression_codec_bytes
        self.sm_busy_cycles += other.sm_busy_cycles
        self.sm_idle_cycles += other.sm_idle_cycles
        self.elapsed_cycles += other.elapsed_cycles
        self.local_accesses += other.local_accesses
        self.remote_accesses += other.remote_accesses
        self.l1_hits += other.l1_hits
        self.l1_misses += other.l1_misses
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        self.dirty_writebacks += other.dirty_writebacks
        if other.per_gpm:
            if not self.per_gpm:
                self.per_gpm = tuple(CounterSet() for _ in other.per_gpm)
            if len(self.per_gpm) != len(other.per_gpm):
                raise ConfigError(
                    f"cannot merge counters with {len(other.per_gpm)} per-GPM"
                    f" shards into counters with {len(self.per_gpm)}"
                )
            for mine, theirs in zip(self.per_gpm, other.per_gpm):
                mine.merge(theirs)

    def scaled(self, factor: float) -> "CounterSet":
        """Return a copy with every count multiplied by ``factor``.

        Used by the microbenchmark harness to extrapolate a measured loop body
        to the full iteration count without replaying it.
        """
        result = CounterSet(
            instructions={
                opcode: int(round(count * factor))
                for opcode, count in self.instructions.items()
            }
        )
        result.shared_rf_txns = int(round(self.shared_rf_txns * factor))
        result.l1_rf_txns = int(round(self.l1_rf_txns * factor))
        result.l2_l1_txns = int(round(self.l2_l1_txns * factor))
        result.dram_l2_txns = int(round(self.dram_l2_txns * factor))
        result.inter_gpm_bytes = int(round(self.inter_gpm_bytes * factor))
        result.inter_gpm_byte_hops = int(round(self.inter_gpm_byte_hops * factor))
        result.switch_byte_traversals = int(
            round(self.switch_byte_traversals * factor)
        )
        result.compression_codec_bytes = int(
            round(self.compression_codec_bytes * factor)
        )
        result.sm_busy_cycles = self.sm_busy_cycles * factor
        result.sm_idle_cycles = self.sm_idle_cycles * factor
        result.elapsed_cycles = self.elapsed_cycles * factor
        result.local_accesses = int(round(self.local_accesses * factor))
        result.remote_accesses = int(round(self.remote_accesses * factor))
        result.l1_hits = int(round(self.l1_hits * factor))
        result.l1_misses = int(round(self.l1_misses * factor))
        result.l2_hits = int(round(self.l2_hits * factor))
        result.l2_misses = int(round(self.l2_misses * factor))
        result.dirty_writebacks = int(round(self.dirty_writebacks * factor))
        result.per_gpm = tuple(shard.scaled(factor) for shard in self.per_gpm)
        return result
