"""The SM core: issue bandwidth, memory port, and utilization accounting.

The SM's scarce resource in this model is *issue bandwidth*: a
:class:`~repro.sim.resources.ThroughputServer` serving issue-slot units at a
configurable rate (instructions/cycle).  Double-precision and SFU operations
carry larger issue weights (see :mod:`repro.isa.opcodes`), so a segment heavy
in FP64 occupies the issue stage ~3x longer than the same count of FP32 —
matching the throughput ratios of the modeled Kepler-class machine without
simulating functional-unit pipelines individually.

The SM's idle cycles — elapsed time minus issue busy time, summed over SMs —
are the ``stalls`` input of the GPUJoule equation: cycles in which the SM had
nothing ready to issue because every resident warp was waiting on memory (or
the SM had no work at all, the load-imbalance case at high GPM counts).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.gpu.counters import CounterSet
from repro.isa.program import MemAccess
from repro.memory.hierarchy import GpmMemory
from repro.sim.engine import Engine
from repro.sim.resources import ThroughputServer


class SmCore:
    """One streaming multiprocessor inside a GPM."""

    __slots__ = (
        "engine",
        "sm_id",
        "gpm_id",
        "local_index",
        "issue",
        "memory",
        "counters",
        "ctas_retired",
    )

    def __init__(
        self,
        engine: Engine,
        sm_id: int,
        gpm_id: int,
        local_index: int,
        issue_rate: float,
        memory: GpmMemory,
        counters: CounterSet,
    ):
        if issue_rate <= 0:
            raise ConfigError(f"SM issue rate must be positive, got {issue_rate}")
        self.engine = engine
        self.sm_id = sm_id
        self.gpm_id = gpm_id
        self.local_index = local_index
        self.issue = ThroughputServer(engine, issue_rate, name=f"sm{sm_id}.issue")
        self.memory = memory
        self.counters = counters
        self.ctas_retired = 0

    def memory_access(
        self, access: MemAccess, earliest: float
    ) -> "tuple[float, tuple | list]":
        """Route one warp access through this SM's L1 and the GPM hierarchy.

        Returns the analytic completion bound plus any remote-path completion
        events the warp must additionally wait on (a shared immutable empty
        container when there are none).
        """
        return self.memory.access(self.local_index, access, earliest)

    def busy_cycles(self) -> float:
        """Cycles the issue stage spent serving instructions so far."""
        return self.issue.busy_time

    def idle_cycles(self, elapsed: float) -> float:
        """Issue-stage idle cycles over an ``elapsed`` window."""
        return max(0.0, elapsed - self.issue.busy_time)

    def __repr__(self) -> str:
        return f"SmCore(sm={self.sm_id}, gpm={self.gpm_id})"
