"""Streaming-multiprocessor model: warps, schedulers, and the SM core."""

from repro.sm.warp import WarpContext, WarpState
from repro.sm.scheduler import CtaSlotScheduler
from repro.sm.smcore import SmCore

__all__ = ["WarpContext", "WarpState", "CtaSlotScheduler", "SmCore"]
