"""Warp execution contexts.

A warp advances segment by segment (see :mod:`repro.isa.program`): it reserves
issue slots on its SM, prices each of the segment's memory accesses through
the GPM memory path, then sleeps until the slowest dependency resolves.  Each
segment costs exactly one simulation event.

The warp records its own issue/stall split for diagnostics; the authoritative
idle accounting that feeds the EPStall energy term is done at the SM level
(issue-server busy time vs. elapsed time), because warp-private wait time
overlaps across warps and must not be double counted.
"""

from __future__ import annotations

import enum
from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.isa.program import WarpProgram
from repro.sim.engine import AllOf

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sm.smcore import SmCore


class WarpState(enum.Enum):
    """Lifecycle of a warp context."""

    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"


class WarpContext:
    """One resident warp: identity, program, and progress statistics."""

    __slots__ = (
        "cta_id",
        "warp_id",
        "program",
        "state",
        "instructions_executed",
        "segments_executed",
        "wait_cycles",
    )

    def __init__(self, cta_id: int, warp_id: int, program: WarpProgram):
        self.cta_id = cta_id
        self.warp_id = warp_id
        self.program = program
        self.state = WarpState.READY
        self.instructions_executed = 0
        self.segments_executed = 0
        self.wait_cycles = 0.0

    def body(self, sm: "SmCore") -> Generator:
        """Process generator executing this warp on ``sm``.

        Execution is software-pipelined one segment deep, mirroring how GPU
        compilers hoist the next iteration's loads above the current
        iteration's consumers: segment ``k+1`` issues while segment ``k``'s
        memory is still in flight, so a warp tolerates one full memory round
        trip beyond its per-segment MLP.
        """
        engine = sm.engine
        counters = sm.counters
        self.state = WarpState.RUNNING
        prev_completion = 0.0
        prev_events = None
        for segment in self.program:
            issue_done = sm.issue.reserve(segment.issue_slots)
            counters.count_compute_map(segment.compute)
            completion = issue_done
            pending = None
            for access in segment.accesses:
                done, events = sm.memory_access(access, earliest=issue_done)
                if done > completion:
                    completion = done
                if events:
                    if pending is None:
                        pending = events
                    else:
                        pending.extend(events)
            self.instructions_executed += segment.total_instructions
            self.segments_executed += 1
            # Drain the PREVIOUS segment before moving past this one.
            if prev_completion > engine.now:
                yield engine.wait_until(prev_completion)
            if prev_events:
                yield AllOf(prev_events)
            self.wait_cycles += max(0.0, engine.now - issue_done)
            prev_completion = completion
            prev_events = pending
        if prev_completion > engine.now:
            yield engine.wait_until(prev_completion)
        if prev_events:
            yield AllOf(prev_events)
        self.state = WarpState.FINISHED

    def __repr__(self) -> str:
        return (
            f"WarpContext(cta={self.cta_id}, warp={self.warp_id},"
            f" state={self.state.value})"
        )
