"""Warp execution contexts.

A warp advances segment by segment (see :mod:`repro.isa.program`): it reserves
issue slots on its SM, prices each of the segment's memory accesses through
the GPM memory path, then sleeps until the slowest dependency resolves.  Each
segment costs exactly one simulation event.

The warp records its own issue/stall split for diagnostics; the authoritative
idle accounting that feeds the EPStall energy term is done at the SM level
(issue-server busy time vs. elapsed time), because warp-private wait time
overlaps across warps and must not be double counted.
"""

from __future__ import annotations

import enum
from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.isa.program import WarpProgram
from repro.sim.engine import AllOf, Timeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sm.smcore import SmCore


class WarpState(enum.Enum):
    """Lifecycle of a warp context."""

    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"


class WarpContext:
    """One resident warp: identity, program, and progress statistics.

    Contexts are poolable: a CTA slot runs its CTAs serially, so the
    scheduler keeps one context per resident-warp slot and :meth:`reset`\\ s
    it for each new CTA instead of allocating ``ctas x warps_per_cta``
    contexts (plus their scratch buffers) over a kernel's lifetime.
    """

    __slots__ = (
        "cta_id",
        "warp_id",
        "program",
        "state",
        "instructions_executed",
        "segments_executed",
        "wait_cycles",
        "_timeout",
        "_pending",
        "_prev_events",
    )

    def __init__(self, cta_id: int, warp_id: int, program: WarpProgram):
        # Scratch reused across every body() this context ever runs: the
        # engine consumes a yielded Timeout synchronously and AllOf copies
        # its event list, so one mutable timeout and two ping-pong pending
        # buffers serve a whole program without per-segment allocation —
        # and, pooled, without per-CTA allocation either.
        self._timeout = Timeout(0.0)
        self._pending: list = []
        self._prev_events: list = []
        self.reset(cta_id, warp_id, program)

    def reset(self, cta_id: int, warp_id: int, program: WarpProgram) -> None:
        """Rebind this context to a new (CTA, warp) and clear its stats."""
        self.cta_id = cta_id
        self.warp_id = warp_id
        self.program = program
        self.state = WarpState.READY
        self.instructions_executed = 0
        self.segments_executed = 0
        self.wait_cycles = 0.0

    def body(self, sm: "SmCore") -> Generator:
        """Process generator executing this warp on ``sm``.

        Execution is software-pipelined one segment deep, mirroring how GPU
        compilers hoist the next iteration's loads above the current
        iteration's consumers: segment ``k+1`` issues while segment ``k``'s
        memory is still in flight, so a warp tolerates one full memory round
        trip beyond its per-segment MLP.
        """
        engine = sm.engine
        reserve = sm.issue.reserve
        # Call straight into the GPM memory path: SmCore.memory_access is a
        # one-line forwarding wrapper, and at one call per access the extra
        # frame is measurable on the hot path.
        memory_access = sm.memory.access
        local_index = sm.local_index
        count_compute = sm.counters.count_compute_map
        # Pooled scratch (see __init__): cleared here because a recycled
        # context may carry the previous CTA's drained event lists.
        timeout = self._timeout
        pending = self._pending
        prev_events = self._prev_events
        pending.clear()
        prev_events.clear()
        self.state = WarpState.RUNNING
        prev_completion = 0.0
        prev_waiting = False
        for segment in self.program:
            issue_done = reserve(segment.issue_slots)
            count_compute(segment.compute)
            completion = issue_done
            pending.clear()
            for access in segment.accesses:
                done, events = memory_access(local_index, access, issue_done)
                if done > completion:
                    completion = done
                if events:
                    pending.extend(events)
            self.instructions_executed += segment.total_instructions
            self.segments_executed += 1
            # Drain the PREVIOUS segment before moving past this one.
            if prev_completion > engine.now:
                timeout.delay = prev_completion - engine.now
                yield timeout
            if prev_waiting:
                if len(prev_events) == 1:
                    yield prev_events[0]
                else:
                    yield AllOf(prev_events)
            self.wait_cycles += max(0.0, engine.now - issue_done)
            prev_completion = completion
            prev_waiting = bool(pending)
            pending, prev_events = prev_events, pending
        if prev_completion > engine.now:
            timeout.delay = prev_completion - engine.now
            yield timeout
        if prev_waiting:
            if len(prev_events) == 1:
                yield prev_events[0]
            else:
                yield AllOf(prev_events)
        self.state = WarpState.FINISHED

    def __repr__(self) -> str:
        return (
            f"WarpContext(cta={self.cta_id}, warp={self.warp_id},"
            f" state={self.state.value})"
        )
