"""Intra-SM CTA slot scheduling.

Each SM exposes a fixed number of *CTA slots* (occupancy).  A slot runs one
CTA at a time: it spawns all of the CTA's warps as concurrent processes,
waits for every warp to retire, then pulls the next CTA from the GPM's work
queue.  With ``slots`` concurrent CTAs of ``warps_per_cta`` warps each, the SM
holds ``slots * warps_per_cta`` resident warps — the latency-tolerance pool
that lets issue bandwidth stay busy while individual warps wait on memory.

The GPM work queue is shared by the GPM's SMs, giving dynamic load balancing
within a module; *across* modules, CTAs are partitioned statically by the
distributed scheduler in :mod:`repro.gpu.cta_scheduler` so that first-touch
placement localizes each partition's pages.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.isa.kernel import Kernel
from repro.sim.engine import AllOf
from repro.sm.warp import WarpContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sm.smcore import SmCore


class CtaSlotScheduler:
    """Runs a GPM's CTA queue across that GPM's SMs for one kernel."""

    def __init__(self, sms: list["SmCore"], slots_per_sm: int):
        if not sms:
            raise ConfigError("scheduler needs at least one SM")
        if slots_per_sm <= 0:
            raise ConfigError(f"slots_per_sm must be positive, got {slots_per_sm}")
        self.sms = sms
        self.slots_per_sm = slots_per_sm
        self.ctas_started = 0
        self.ctas_finished = 0

    def run_kernel(self, kernel: Kernel, cta_ids: list[int]) -> Generator:
        """Process generator: execute ``cta_ids`` of ``kernel``; returns when done.

        This is itself run as a process by the GPM; it spawns one process per
        (SM, slot) pair and waits for all of them.
        """
        queue: deque[int] = deque(cta_ids)
        engine = self.sms[0].engine
        slot_processes = []
        for sm in self.sms:
            for slot in range(self.slots_per_sm):
                process = engine.process(
                    self._slot_body(sm, slot, kernel, queue),
                    name=f"sm{sm.sm_id}.slot{slot}",
                )
                slot_processes.append(process)
        yield AllOf([process.done for process in slot_processes])

    def _slot_body(
        self, sm: "SmCore", slot: int, kernel: Kernel, queue: deque[int]
    ) -> Generator:
        engine = sm.engine
        tracer = engine.tracer
        cta_cycles = engine.metrics.accumulator("sm.cta_cycles")
        track = f"sm{sm.sm_id}.slot{slot}"
        # Warp-context pool: this slot runs CTAs serially, so every CTA's
        # warp i can recycle the same context (and its scratch buffers)
        # instead of allocating ctas x warps_per_cta contexts per kernel.
        pool: list[WarpContext] = []
        while queue:
            cta_id = queue.popleft()
            self.ctas_started += 1
            started = engine.now
            if tracer.enabled:
                tracer.begin(
                    track,
                    f"{kernel.name}/cta{cta_id}",
                    started,
                    args={"warps": kernel.warps_per_cta},
                )
            processes = []
            for warp_id, program in enumerate(kernel.cta_programs(cta_id)):
                if warp_id < len(pool):
                    warp = pool[warp_id]
                    warp.reset(cta_id, warp_id, program)
                else:
                    warp = WarpContext(cta_id, warp_id, program)
                    pool.append(warp)
                processes.append(
                    engine.process(
                        warp.body(sm), name=f"cta{cta_id}.w{warp_id}"
                    )
                )
            yield AllOf([process.done for process in processes])
            self.ctas_finished += 1
            sm.ctas_retired += 1
            cta_cycles.add(engine.now - started)
            if tracer.enabled:
                tracer.end(track, engine.now)
