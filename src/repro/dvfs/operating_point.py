"""Operating points and validated voltage/frequency curves.

The paper holds clock and voltage fixed at the Tesla K40 boost point; this
module opens that axis.  An :class:`OperatingPoint` is one (frequency,
voltage) pair; a :class:`VfCurve` is the validated table of points a clock
domain may run at, anchored at the K40 point so that the anchor operating
point reproduces the paper's configuration bit-for-bit.

The curve is the single source of truth for the V/f relationship: governors
step along it, the sweet-spot search sweeps it, and the energy model derives
its V² and f scaling ratios from it.  Points between table entries are
priced by piecewise-linear voltage interpolation — the standard approximation
for published DVFS tables (cf. "Modeling and Chasing the Energy-Efficiency
Sweet Spots in Modern GPUs").
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.units import DEFAULT_CLOCK_HZ

#: Relative tolerance for matching a frequency against a curve entry.
_FREQ_RTOL = 1e-9


@dataclass(frozen=True)
class OperatingPoint:
    """One V/f setting of a clock domain."""

    frequency_hz: float
    voltage_v: float
    name: str = ""

    def __post_init__(self) -> None:
        # Finiteness is checked explicitly: a NaN frequency or voltage slips
        # through plain comparisons (NaN <= 0 is False) and would propagate
        # into every derived ratio as NaN energy.
        if not (
            isinstance(self.frequency_hz, (int, float))
            and math.isfinite(self.frequency_hz)
            and self.frequency_hz > 0
        ):
            raise ConfigError(
                f"operating-point frequency must be finite and positive, got"
                f" {self.frequency_hz!r}"
            )
        if not (
            isinstance(self.voltage_v, (int, float))
            and math.isfinite(self.voltage_v)
            and self.voltage_v > 0
        ):
            raise ConfigError(
                f"operating-point voltage must be finite and positive, got"
                f" {self.voltage_v!r}"
            )

    def label(self) -> str:
        """Short human-readable identity (used in config labels)."""
        if self.name:
            return self.name
        return f"{self.frequency_hz / 1e6:g}MHz"

    def __repr__(self) -> str:
        return (
            f"OperatingPoint({self.frequency_hz / 1e6:g} MHz,"
            f" {self.voltage_v:g} V{', ' + self.name if self.name else ''})"
        )


@dataclass(frozen=True)
class VfCurve:
    """A validated, monotonic voltage/frequency table for one clock domain.

    Invariants enforced at construction:

    * at least two points, so stepping and interpolation are meaningful;
    * strictly increasing frequency;
    * non-decreasing voltage (higher clocks never need *less* voltage);
    * exactly one point at the anchor frequency — the fixed-clock baseline
      every ratio is computed against (the K40 boost clock by default).
    """

    points: tuple[OperatingPoint, ...]
    anchor_frequency_hz: float = DEFAULT_CLOCK_HZ

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ConfigError("a V/f curve needs at least two points")
        frequencies = [point.frequency_hz for point in self.points]
        voltages = [point.voltage_v for point in self.points]
        for prev, cur in zip(frequencies, frequencies[1:]):
            if cur <= prev:
                raise ConfigError(
                    f"V/f curve frequencies must strictly increase;"
                    f" got {prev!r} then {cur!r}"
                )
        for prev, cur in zip(voltages, voltages[1:]):
            if cur < prev:
                raise ConfigError(
                    f"V/f curve voltages must be non-decreasing;"
                    f" got {prev!r} then {cur!r}"
                )
        anchors = [
            point for point in self.points
            if self._matches(point.frequency_hz, self.anchor_frequency_hz)
        ]
        if len(anchors) != 1:
            raise ConfigError(
                f"V/f curve needs exactly one point at the anchor frequency"
                f" ({self.anchor_frequency_hz / 1e6:g} MHz), found"
                f" {len(anchors)}"
            )

    @staticmethod
    def _matches(a: float, b: float) -> bool:
        return abs(a - b) <= _FREQ_RTOL * max(abs(a), abs(b))

    # ------------------------------------------------------------------ lookup

    @property
    def anchor(self) -> OperatingPoint:
        """The fixed-clock baseline point (K40 boost by default)."""
        for point in self.points:
            if self._matches(point.frequency_hz, self.anchor_frequency_hz):
                return point
        raise ConfigError("validated curve lost its anchor")  # pragma: no cover

    @property
    def min_frequency_hz(self) -> float:
        return self.points[0].frequency_hz

    @property
    def max_frequency_hz(self) -> float:
        return self.points[-1].frequency_hz

    def voltage_at(self, frequency_hz: float) -> float:
        """Piecewise-linear voltage for a frequency within the curve span."""
        if not self.min_frequency_hz <= frequency_hz <= self.max_frequency_hz:
            raise ConfigError(
                f"frequency {frequency_hz / 1e6:g} MHz outside the curve span"
                f" [{self.min_frequency_hz / 1e6:g},"
                f" {self.max_frequency_hz / 1e6:g}] MHz"
            )
        frequencies = [point.frequency_hz for point in self.points]
        index = bisect.bisect_left(frequencies, frequency_hz)
        if index < len(frequencies) and self._matches(
            frequencies[index], frequency_hz
        ):
            return self.points[index].voltage_v
        lo, hi = self.points[index - 1], self.points[index]
        span = hi.frequency_hz - lo.frequency_hz
        fraction = (frequency_hz - lo.frequency_hz) / span
        return lo.voltage_v + fraction * (hi.voltage_v - lo.voltage_v)

    def point_at(self, frequency_hz: float, name: str = "") -> OperatingPoint:
        """The operating point (exact or interpolated) for one frequency.

        An exact table frequency returns the table entry itself, keeping its
        name (and hence its config-label identity).
        """
        voltage = self.voltage_at(frequency_hz)
        frequencies = [point.frequency_hz for point in self.points]
        index = bisect.bisect_left(frequencies, frequency_hz)
        if index < len(frequencies) and self._matches(
            frequencies[index], frequency_hz
        ):
            entry = self.points[index]
            return replace(entry, name=name) if name else entry
        return OperatingPoint(
            frequency_hz=frequency_hz, voltage_v=voltage, name=name
        )

    def contains(self, point: OperatingPoint) -> bool:
        """True when ``point`` lies within this curve's frequency span."""
        return (
            self.min_frequency_hz <= point.frequency_hz <= self.max_frequency_hz
        )

    # ---------------------------------------------------------------- stepping

    def _index_of(self, point: OperatingPoint) -> int:
        frequencies = [entry.frequency_hz for entry in self.points]
        index = bisect.bisect_left(frequencies, point.frequency_hz)
        if index < len(frequencies) and self._matches(
            frequencies[index], point.frequency_hz
        ):
            return index
        # Between entries: snap to the nearest lower table point.
        return max(0, index - 1)

    def step_down(self, point: OperatingPoint) -> OperatingPoint:
        """The next lower table point (or the floor, when already there)."""
        return self.points[max(0, self._index_of(point) - 1)]

    def step_up(self, point: OperatingPoint) -> OperatingPoint:
        """The next higher table point (or the ceiling, when already there)."""
        return self.points[min(len(self.points) - 1, self._index_of(point) + 1)]

    # ------------------------------------------------------------------ ratios

    def frequency_ratio(self, point: OperatingPoint) -> float:
        """``f / f_anchor`` — the timing scale factor of this point."""
        return point.frequency_hz / self.anchor.frequency_hz

    def voltage_ratio(self, point: OperatingPoint) -> float:
        """``V / V_anchor`` — the linear (leakage) energy scale factor."""
        return point.voltage_v / self.anchor.voltage_v


#: The Tesla K40 (GK110B) application-clock ladder.  The 745 MHz boost point
#: is the anchor every published number in this reproduction was taken at;
#: voltages follow the 28 nm part's reported DVFS range (~0.84 V at the
#: lowest application clock up to ~1.12 V at the 875 MHz ceiling).
K40_VF_CURVE = VfCurve(
    points=(
        OperatingPoint(324.0e6, 0.84, name="k40-324"),
        OperatingPoint(405.0e6, 0.86, name="k40-405"),
        OperatingPoint(480.0e6, 0.88, name="k40-480"),
        OperatingPoint(562.0e6, 0.91, name="k40-562"),
        OperatingPoint(614.0e6, 0.93, name="k40-614"),
        OperatingPoint(666.0e6, 0.96, name="k40-666"),
        OperatingPoint(705.0e6, 0.99, name="k40-705"),
        OperatingPoint(DEFAULT_CLOCK_HZ, 1.02, name="k40-boost"),
        OperatingPoint(810.0e6, 1.07, name="k40-810"),
        OperatingPoint(875.0e6, 1.12, name="k40-875"),
    ),
)

#: The anchor operating point: run everything exactly as the paper did.
K40_OPERATING_POINT = K40_VF_CURVE.anchor
