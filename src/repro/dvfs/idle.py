"""Per-GPM idle states and the governors that exploit them.

The paper prices multi-module GPUs under *active* scaling only: every core
domain is always clocked, and idle SMs still burn the full per-cycle stall
and constant power of their operating point.  The idle-management literature
the ROADMAP names (*Racing to Idle*; *Chasing the Energy-Efficiency Sweet
Spots in Modern GPUs*) shows the other side of the curve: for bursty
workloads, what a module does while its kernel queue is *empty* dominates
EDPSE.

This module adds that side:

* :class:`SleepState` — a clock-gated or power-gated module state with an
  entry latency (drain/flush, spent awake), an exit latency (wake stall paid
  before the next kernel share issues), and a *residual fraction*: the share
  of the module's active-idle power (stall + constant) still burned while
  gated.  Clock gating is cheap to enter but leaky; power gating is nearly
  free to hold but expensive to cross into.
* :class:`IdleConfig` — the per-chip idle policy attached to
  :class:`~repro.gpu.config.GpuConfig`: which states exist, the wake budget
  bounding their exit latencies, and which governor steers the ladder while
  the states handle the gaps.
* :class:`RaceToIdleGovernor` — sprint every GPM at the top of the curve so
  the active phase ends as early as possible, maximizing the gap the sleep
  states can swallow.  The gating itself lives in the driver
  (:class:`~repro.gpu.multigpu.MultiGpu`) and composes with *any* governor,
  including the PR 4 power cap.
* :class:`DeadlinePacedGovernor` — the opposite bet: given a per-run
  deadline, pick the slowest operating point whose worst-case remaining
  time still meets it, saving V² energy instead of racing for gap time.

Timing is only ever perturbed when an :class:`IdleConfig` is attached:
entry latencies are pure accounting (the drain happens inside the gap), and
exit latencies delay only the woken GPM's next kernel share.  With idle
disabled — or enabled but never engaged, e.g. an infinite entry latency —
runs are bit-identical to the pre-idle simulator, which
``tests/differential/test_idle_identity.py`` pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dvfs.operating_point import OperatingPoint, VfCurve
from repro.dvfs.governor import (
    Governor,
    GpmObservation,
    PowerCapGovernor,
    UtilizationGovernor,
)
from repro.errors import ConfigError


@dataclass(frozen=True)
class SleepState:
    """One per-GPM sleep state: gating depth traded against transition cost.

    ``entry_latency_cycles`` anchor cycles are spent draining into the state
    (the module is still awake and burning active-idle power); the remainder
    of the gap is gated at ``residual_fraction`` of the active-idle power.
    ``exit_latency_cycles`` anchor cycles stall the module's *next* kernel
    share while it powers back up.  An infinite entry latency makes the
    state unreachable — useful for proving the idle machinery never engages.
    """

    name: str
    entry_latency_cycles: float
    exit_latency_cycles: float
    residual_fraction: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a sleep state needs a non-empty name")
        if math.isnan(self.entry_latency_cycles) or self.entry_latency_cycles < 0:
            raise ConfigError(
                f"sleep state {self.name!r} entry latency must be"
                f" non-negative, got {self.entry_latency_cycles!r}"
            )
        if not math.isfinite(self.exit_latency_cycles) or self.exit_latency_cycles < 0:
            raise ConfigError(
                f"sleep state {self.name!r} exit latency must be finite and"
                f" non-negative, got {self.exit_latency_cycles!r}"
            )
        if math.isnan(self.residual_fraction) or self.residual_fraction < 0:
            raise ConfigError(
                f"sleep state {self.name!r} residual fraction must be"
                f" non-negative, got {self.residual_fraction!r}"
            )
        if self.residual_fraction > 1.0:
            raise ConfigError(
                f"sleep state {self.name!r} residual fraction"
                f" {self.residual_fraction!r} exceeds the active idle floor"
                " (1.0): gating cannot burn more than staying awake"
            )

    @property
    def breakeven_cycles(self) -> float:
        """Shortest gap worth entering the state for (entry + exit cost)."""
        return self.entry_latency_cycles + self.exit_latency_cycles

    def label(self) -> str:
        return self.name

    def fingerprint(self) -> dict:
        return {
            "name": self.name,
            "entry_latency_cycles": self.entry_latency_cycles,
            "exit_latency_cycles": self.exit_latency_cycles,
            "residual_fraction": self.residual_fraction,
        }


#: Clock gating: stop the clock tree, keep the rails up.  Crossing costs a
#: pipeline drain (~tens of nanoseconds at the anchor clock), but leakage
#: and retention still burn ~30% of the active-idle power.
CLOCK_GATED = SleepState(
    name="clock-gated",
    entry_latency_cycles=50.0,
    exit_latency_cycles=100.0,
    residual_fraction=0.30,
)

#: Power gating: collapse the rails behind retention flops.  Crossing costs
#: microseconds of rail settle, but almost nothing leaks while gated.
POWER_GATED = SleepState(
    name="power-gated",
    entry_latency_cycles=1_000.0,
    exit_latency_cycles=2_500.0,
    residual_fraction=0.02,
)

#: Governor kinds an :class:`IdleConfig` may select.  ``None`` keeps the
#: static operating point and only gates the gaps.
IDLE_GOVERNOR_KINDS = ("race-to-idle", "deadline-paced", "utilization")

#: Default bound on the wake stall the driver will hide at a kernel
#: boundary (anchor cycles).
DEFAULT_WAKE_BUDGET_CYCLES = 50_000.0


@dataclass(frozen=True)
class IdleConfig:
    """Chip-wide idle policy: available sleep states plus the governor.

    At every kernel boundary the driver measures each GPM's gap (how long
    its queue was empty before the barrier closed) and enters the deepest
    state whose break-even cost fits inside it.  A GPM with no work in the
    next kernel *stays* gated across it — the main win on imbalanced grids.
    """

    clock_gated: SleepState | None = CLOCK_GATED
    power_gated: SleepState | None = POWER_GATED
    #: Longest wake stall the driver will hide at a kernel boundary; a state
    #: whose exit latency exceeds it could stall the chip longer than the
    #: gap it saved, so such configs are rejected up front.
    wake_budget_cycles: float = DEFAULT_WAKE_BUDGET_CYCLES
    #: Which governor steers the V/f ladder on top of the gating; ``None``
    #: gates at the static operating point.
    governor: str | None = None
    #: Per-run deadline in anchor cycles; required by ``deadline-paced``.
    deadline_cycles: float | None = None

    def __post_init__(self) -> None:
        if not self.wake_budget_cycles > 0:
            raise ConfigError(
                f"wake budget must be positive, got {self.wake_budget_cycles!r}"
            )
        for state in self.states():
            if state.exit_latency_cycles > self.wake_budget_cycles:
                raise ConfigError(
                    f"sleep state {state.name!r} exit latency"
                    f" {state.exit_latency_cycles:g} exceeds the wake budget"
                    f" {self.wake_budget_cycles:g} (the longest kernel-boundary"
                    " stall the driver will hide)"
                )
        if self.power_gated is not None and self.clock_gated is not None:
            if self.power_gated.name == self.clock_gated.name:
                raise ConfigError(
                    f"sleep states need distinct names, both are"
                    f" {self.clock_gated.name!r}"
                )
            if self.power_gated.residual_fraction > self.clock_gated.residual_fraction:
                raise ConfigError(
                    "the power-gated state must burn no more residual power"
                    " than the clock-gated state"
                    f" ({self.power_gated.residual_fraction!r} >"
                    f" {self.clock_gated.residual_fraction!r})"
                )
        if self.governor is not None and self.governor not in IDLE_GOVERNOR_KINDS:
            raise ConfigError(
                f"unknown idle governor {self.governor!r}; choose one of"
                f" {', '.join(IDLE_GOVERNOR_KINDS)}"
            )
        if self.governor == "deadline-paced":
            if self.deadline_cycles is None:
                raise ConfigError(
                    "the deadline-paced governor needs deadline_cycles"
                )
            if not (
                math.isfinite(self.deadline_cycles) and self.deadline_cycles > 0
            ):
                raise ConfigError(
                    f"deadline_cycles must be positive and finite, got"
                    f" {self.deadline_cycles!r}"
                )
        elif self.deadline_cycles is not None:
            raise ConfigError(
                "a deadline needs the deadline-paced governor"
                + (
                    " (no governor was selected)"
                    if self.governor is None
                    else f", not {self.governor!r}"
                )
            )

    @classmethod
    def governor_only(
        cls, governor: str, deadline_cycles: float | None = None
    ) -> "IdleConfig":
        """An idle policy with no sleep states: the governor alone.

        The cacheable way to run a plain governed configuration — the
        governor kind joins the config fingerprint, and with no states the
        driver's gating machinery never engages, so the run is bit-identical
        to passing the governor explicitly.
        """
        return cls(
            clock_gated=None,
            power_gated=None,
            governor=governor,
            deadline_cycles=deadline_cycles,
        )

    def states(self) -> tuple[SleepState, ...]:
        """Available states, deepest first."""
        return tuple(
            state
            for state in (self.power_gated, self.clock_gated)
            if state is not None
        )

    def state_for_gap(self, gap_cycles: float) -> SleepState | None:
        """Deepest state whose break-even cost fits strictly inside the gap."""
        for state in self.states():
            if gap_cycles > state.breakeven_cycles:
                return state
        return None

    def label(self) -> str:
        if self.governor is None:
            return "idle"
        return f"idle[{self.governor}]"

    def fingerprint(self) -> dict:
        """Stable dict for cache keys; only set when idle is configured."""
        return {
            **(
                {}
                if self.clock_gated is None
                else {"clock_gated": self.clock_gated.fingerprint()}
            ),
            **(
                {}
                if self.power_gated is None
                else {"power_gated": self.power_gated.fingerprint()}
            ),
            "wake_budget_cycles": self.wake_budget_cycles,
            **({} if self.governor is None else {"governor": self.governor}),
            **(
                {}
                if self.deadline_cycles is None
                else {"deadline_cycles": self.deadline_cycles}
            ),
        }


def governor_for(
    idle: IdleConfig | None,
    power_cap_watts: float | None,
    curve: VfCurve,
) -> Governor | None:
    """The governor a config's power knobs imply, or ``None`` for static.

    A power cap is a hard constraint and keeps the point-selection slot; a
    race-to-idle request composes with it by raising the cap governor's
    ceiling to the top of the curve — sprint as high as the budget allows.
    Without a cap the idle governor kind maps directly to its policy.
    """
    kind = idle.governor if idle is not None else None
    if power_cap_watts is not None:
        ceiling = curve.points[-1] if kind == "race-to-idle" else None
        return PowerCapGovernor(
            curve=curve, cap_watts=power_cap_watts, ceiling=ceiling
        )
    if kind is None:
        return None
    if kind == "race-to-idle":
        return RaceToIdleGovernor(curve=curve)
    if kind == "deadline-paced":
        assert idle is not None  # kind came from idle
        return DeadlinePacedGovernor(
            curve=curve, deadline_cycles=idle.deadline_cycles
        )
    return UtilizationGovernor(curve=curve)


@dataclass
class RaceToIdleGovernor(Governor):
    """Sprint at the top of the curve; let the sleep states eat the slack.

    The point policy is trivially static — the *race* half of race-to-idle
    is simply "finish the active phase as early as physics allows".  The
    *idle* half is the driver's gating, which this governor maximizes the
    raw material for: every cycle shaved off the critical path becomes gap
    time some module spends gated instead of burning stall power.
    """

    sprint: OperatingPoint | None = None

    def __post_init__(self) -> None:
        if self.sprint is not None and not self.curve.contains(self.sprint):
            raise ConfigError(
                f"sprint point {self.sprint!r} lies outside the governor curve"
            )

    @property
    def sprint_point(self) -> OperatingPoint:
        return self.sprint if self.sprint is not None else self.curve.points[-1]

    def initial_point(self, gpm_id: int) -> OperatingPoint:
        return self.sprint_point

    def decide(
        self, gpm_id: int, utilization: float, current: OperatingPoint
    ) -> OperatingPoint:
        return self.sprint_point


@dataclass
class DeadlinePacedGovernor(Governor):
    """Slowest uniform operating point that still meets a per-run deadline.

    The governor starts at the top of the curve (no history — racing is the
    only safe opening) and, once it has seen an interval, re-plans at every
    kernel boundary: it bounds the remaining time at a candidate ratio ``r``
    by ``remaining_kernels × longest_window × (r_max / r) × safety`` — the
    longest window seen so far is never credited for the clock it ran at,
    and a slower clock is charged the full compute-bound stretch — then
    picks the slowest point whose bound still fits before the deadline.
    Whenever nothing fits, it jumps straight back to the top of the curve.

    The conservative bound is what backs the property test: for a feasible
    deadline (any slack over the all-out runtime on the suite's
    near-uniform kernels) the governor never misses.
    """

    deadline_cycles: float = math.inf
    safety: float = 1.5
    _total_kernels: int = field(default=0, repr=False)
    _kernels_done: int = field(default=0, repr=False)
    _longest_window: float = field(default=0.0, repr=False)
    _now: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not self.deadline_cycles > 0 or math.isnan(self.deadline_cycles):
            raise ConfigError(
                f"deadline_cycles must be positive, got {self.deadline_cycles!r}"
            )
        if not self.safety >= 1.0:
            raise ConfigError(
                f"safety factor must be at least 1.0, got {self.safety!r}"
            )

    def on_run_begin(self, total_kernels: int) -> None:
        self._total_kernels = total_kernels
        self._kernels_done = 0
        self._longest_window = 0.0

    def initial_point(self, gpm_id: int) -> OperatingPoint:
        return self.curve.points[-1]

    def _plan_point(self, now: float) -> OperatingPoint:
        remaining = max(0, self._total_kernels - self._kernels_done)
        if remaining == 0:
            # Nothing left to schedule: every point meets the deadline, and
            # the slowest one is this governor's answer to "any point".
            return self.curve.points[0]
        if self._longest_window <= 0.0:
            return self.curve.points[-1]
        top = self.curve.points[-1]
        top_ratio = self.curve.frequency_ratio(top)
        budget = self.deadline_cycles - now
        for point in self.curve.points:
            stretch = top_ratio / self.curve.frequency_ratio(point)
            bound = remaining * self._longest_window * stretch * self.safety
            if bound <= budget:
                return point
        return top

    def on_chip_interval(
        self,
        observations: list[GpmObservation],
        now: float,
        window_cycles: float,
    ) -> list[OperatingPoint]:
        self._kernels_done += 1
        self._longest_window = max(self._longest_window, window_cycles)
        self._now = now
        return super().on_chip_interval(observations, now, window_cycles)

    def decide(
        self, gpm_id: int, utilization: float, current: OperatingPoint
    ) -> OperatingPoint:
        """Per-GPM view: the chip-wide plan at the last observed time."""
        return self._plan_point(self._now)

    def decide_chip(
        self, observations: list[GpmObservation]
    ) -> list[OperatingPoint]:
        point = self._plan_point(self._now)
        return [point for _ in observations]
