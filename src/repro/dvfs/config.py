"""Clock domains and the DVFS configuration attached to a GPU.

The simulator keeps its timebase in *anchor* core cycles (the K40 boost
clock every latency and bandwidth figure was calibrated at).  A DVFS setting
therefore never changes what a "cycle" means; it changes *rates relative to
the anchor*:

* a core domain at frequency ratio ``r`` issues ``r`` times the instructions
  per anchor cycle and finishes fixed-core-cycle pipeline stages in ``1/r``
  anchor cycles;
* a DRAM domain at ratio ``r`` moves ``r`` times the bytes per anchor cycle
  and answers in ``1/r`` of its nominal anchor-cycle latency;
* the interconnect domain scales link serialization and propagation the same
  way.

At the anchor point every ratio is exactly 1.0, and multiplying or dividing
an IEEE double by 1.0 is exact — so threading the scales through the timing
layers unconditionally leaves anchor-point runs bit-identical to a build
without DVFS at all.

Domains: each GPM owns its *core* domain (SM issue plus the on-module cache
pipeline); *DRAM* and *interconnect* are chip-global domains, matching how
real parts rail their memory and I/O separately from the SM complex.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.dvfs.operating_point import (
    K40_OPERATING_POINT,
    K40_VF_CURVE,
    OperatingPoint,
    VfCurve,
)
from repro.errors import ConfigError


class ClockDomain(enum.Enum):
    """Independently scalable clock/voltage domains of the modeled GPU."""

    CORE = "core"                  # per-GPM: SM issue + cache pipeline
    DRAM = "dram"                  # chip-global: local DRAM stacks
    INTERCONNECT = "interconnect"  # chip-global: inter-GPM links


@dataclass(frozen=True)
class DomainScales:
    """Frequency and voltage ratios vs. the anchor, one pair per domain.

    These are the only numbers the timing and energy layers ever see; the
    operating points themselves stay in the configuration layer.
    """

    core_freq: float = 1.0
    core_volt: float = 1.0
    dram_freq: float = 1.0
    dram_volt: float = 1.0
    interconnect_freq: float = 1.0
    interconnect_volt: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "core_freq", "core_volt", "dram_freq", "dram_volt",
            "interconnect_freq", "interconnect_volt",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"scale {name!r} must be positive")

    @property
    def is_identity(self) -> bool:
        return (
            self.core_freq == 1.0
            and self.core_volt == 1.0
            and self.dram_freq == 1.0
            and self.dram_volt == 1.0
            and self.interconnect_freq == 1.0
            and self.interconnect_volt == 1.0
        )


#: The anchor point of every domain: scale nothing.
IDENTITY_SCALES = DomainScales()


def _ratios(curve: VfCurve, point: OperatingPoint) -> tuple[float, float]:
    if not curve.contains(point):
        raise ConfigError(
            f"operating point {point!r} lies outside its V/f curve span"
        )
    return curve.frequency_ratio(point), curve.voltage_ratio(point)


@dataclass(frozen=True)
class DvfsConfig:
    """Per-domain operating points for one simulated GPU.

    ``core`` applies to every GPM unless ``core_per_gpm`` overrides it with
    one point per module (per-GPM clock domains).  All points must lie on
    ``curve``, which also defines the anchor the ratios are taken against.

    ``leakage_fraction`` splits the platform constant power into a leakage
    share (scales with V) and an idle-clocking share (scales with f·V²); the
    default 0.5 keeps the anchor split exact (0.5 + 0.5 == 1.0 in float64).
    """

    core: OperatingPoint = K40_OPERATING_POINT
    dram: OperatingPoint = K40_OPERATING_POINT
    interconnect: OperatingPoint = K40_OPERATING_POINT
    core_per_gpm: tuple[OperatingPoint, ...] = ()
    curve: VfCurve = K40_VF_CURVE
    leakage_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.leakage_fraction <= 1.0:
            raise ConfigError(
                "leakage_fraction is a share in [0, 1];"
                f" got {self.leakage_fraction!r}"
            )
        for point in (self.core, self.dram, self.interconnect, *self.core_per_gpm):
            _ratios(self.curve, point)  # validates span membership

    # ---------------------------------------------------------------- lookup

    def core_point_for(self, gpm_id: int) -> OperatingPoint:
        """The core operating point of one GPM."""
        if self.core_per_gpm:
            if gpm_id >= len(self.core_per_gpm):
                raise ConfigError(
                    f"core_per_gpm has {len(self.core_per_gpm)} points but"
                    f" GPM {gpm_id} exists"
                )
            return self.core_per_gpm[gpm_id]
        return self.core

    def scales_for_gpm(self, gpm_id: int) -> DomainScales:
        """The ratio bundle the timing layer applies to one GPM."""
        core_f, core_v = _ratios(self.curve, self.core_point_for(gpm_id))
        dram_f, dram_v = _ratios(self.curve, self.dram)
        ic_f, ic_v = _ratios(self.curve, self.interconnect)
        return DomainScales(
            core_freq=core_f, core_volt=core_v,
            dram_freq=dram_f, dram_volt=dram_v,
            interconnect_freq=ic_f, interconnect_volt=ic_v,
        )

    def mean_core_ratios(self, num_gpms: int) -> tuple[float, float]:
        """Mean (f, V) core ratios across ``num_gpms`` GPMs (diagnostics).

        With a single chip-wide core point this is exact; with per-GPM points
        it is an equal-weight approximation — the energy model no longer uses
        it for pricing (per-GPM counter shards price each module exactly; see
        ``docs/POWER.md``), so this survives only for reporting.  A per-GPM
        point list that does not cover exactly ``num_gpms`` modules would
        silently mis-weight the mean, so it is rejected.
        """
        if self.core_per_gpm and len(self.core_per_gpm) != num_gpms:
            raise ConfigError(
                f"core_per_gpm has {len(self.core_per_gpm)} points but the"
                f" chip has {num_gpms} GPMs"
            )
        points = self.core_per_gpm or (self.core,)
        pairs = [_ratios(self.curve, point) for point in points]
        return (
            sum(f for f, _ in pairs) / len(pairs),
            sum(v for _, v in pairs) / len(pairs),
        )

    # ---------------------------------------------------------------- naming

    def label(self) -> str:
        """Identity suffix for config labels (``core@562MHz`` style)."""
        parts = []
        if self.core_per_gpm:
            clocks = "/".join(p.label() for p in self.core_per_gpm)
            parts.append(f"core[{clocks}]")
        else:
            parts.append(f"core@{self.core.label()}")
        if self.dram != K40_OPERATING_POINT:
            parts.append(f"dram@{self.dram.label()}")
        if self.interconnect != K40_OPERATING_POINT:
            parts.append(f"ic@{self.interconnect.label()}")
        return "+".join(parts)

    def fingerprint(self) -> dict:
        """Deterministic cache-key content for this DVFS setting.

        Includes the full curve grid: a governed (power-capped) run walks the
        whole ladder, so two configs agreeing on their static points but
        differing in the grid must never share a cache entry.
        """
        def _pf(point: OperatingPoint) -> dict:
            return {"f": point.frequency_hz, "v": point.voltage_v}

        payload = {
            "core": _pf(self.core),
            "dram": _pf(self.dram),
            "interconnect": _pf(self.interconnect),
            "leakage": self.leakage_fraction,
            "curve": {
                "anchor": self.curve.anchor_frequency_hz,
                "points": [_pf(p) for p in self.curve.points],
            },
        }
        if self.core_per_gpm:
            payload["core_per_gpm"] = [_pf(p) for p in self.core_per_gpm]
        return payload

    # -------------------------------------------------------------- builders

    @classmethod
    def core_only(
        cls, point: OperatingPoint, curve: VfCurve = K40_VF_CURVE
    ) -> "DvfsConfig":
        """Scale just the (chip-wide) core domain; DRAM and links stay put."""
        return cls(core=point, curve=curve)

    def with_core(self, point: OperatingPoint) -> "DvfsConfig":
        return replace(self, core=point, core_per_gpm=())
