"""Offline energy-sweet-spot search over the V/f grid.

For each (workload, GPU configuration) the search simulates every operating
point on a V/f curve — through the regular :class:`SweepRunner`, so results
land in the sweep cache and re-searches are free — prices each run with the
point-scaled :class:`~repro.core.energy_model.EnergyParams`, and reports the
point minimizing EDP (energy x delay) or ED²P (energy x delay²).

The physics that makes an *interior* optimum exist: below the sweet spot,
delay grows (even memory-bound workloads have compute phases) and the
platform's constant power integrates over that longer runtime; above it,
dynamic energy grows with V² while delay barely improves once the workload
is memory-bound.  Compute-bound workloads therefore peak near the top of the
curve, memory-bound ones well below it — the per-workload separation the
DVFS literature calls sweet-spot chasing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.energy_model import EnergyParams
from repro.dvfs.config import ClockDomain, DvfsConfig
from repro.dvfs.operating_point import K40_VF_CURVE, OperatingPoint, VfCurve
from repro.dvfs.selection import best_candidate
from repro.errors import ExperimentError
from repro.experiments.runner import SweepRunner
from repro.gpu.config import GpuConfig
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # deferred: repro.roofline is an optional fast path
    from repro.roofline.model import RooflinePredictor
    from repro.roofline.screen import ScreenDisposition

#: Supported optimization metrics.
METRICS = ("edp", "ed2p")


@dataclass(frozen=True)
class FrequencySample:
    """One simulated point of a sweet-spot curve."""

    point: OperatingPoint
    delay_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        return self.energy_j * self.delay_s

    @property
    def ed2p(self) -> float:
        return self.energy_j * self.delay_s**2

    def score(self, metric: str) -> float:
        if metric == "edp":
            return self.edp
        if metric == "ed2p":
            return self.ed2p
        raise ExperimentError(f"unknown sweet-spot metric {metric!r}")


@dataclass(frozen=True)
class SweetSpot:
    """The optimum of one (workload, configuration) frequency sweep."""

    workload: str
    config_label: str
    num_gpms: int
    metric: str
    samples: tuple[FrequencySample, ...]
    #: Which clock domain the sweep walked ("core", "dram", "interconnect").
    domain: str = "core"
    #: Roofline screening record when this sweep was screened (None for an
    #: exhaustive sweep): which points were predicted vs. simulated.
    disposition: "ScreenDisposition | None" = None

    @property
    def best(self) -> FrequencySample:
        return best_candidate(
            self.samples,
            score=lambda sample: sample.score(self.metric),
            tie_key=lambda sample: (
                sample.point.frequency_hz,
                sample.point.label(),
            ),
        )

    @property
    def point(self) -> OperatingPoint:
        return self.best.point

    @property
    def below_max_clock(self) -> bool:
        """True when the optimum sits strictly below the curve's top point."""
        top = max(sample.point.frequency_hz for sample in self.samples)
        return self.point.frequency_hz < top

    def sample_at(self, frequency_hz: float) -> FrequencySample:
        for sample in self.samples:
            if sample.point.frequency_hz == frequency_hz:
                return sample
        raise ExperimentError(
            f"no sample at {frequency_hz / 1e6:g} MHz for {self.workload}"
        )


def with_operating_point(
    config: GpuConfig,
    point: OperatingPoint,
    curve: VfCurve = K40_VF_CURVE,
    domain: ClockDomain = ClockDomain.CORE,
) -> GpuConfig:
    """A copy of ``config`` with one clock domain moved to ``point``.

    ``domain`` selects which :class:`~repro.dvfs.config.ClockDomain` the
    point applies to; the other domains stay at the anchor (or wherever the
    existing ``config.dvfs`` already put them).
    """
    base = config.dvfs if config.dvfs is not None else DvfsConfig(curve=curve)
    if domain is ClockDomain.CORE:
        dvfs = base.with_core(point)
    elif domain is ClockDomain.DRAM:
        dvfs = replace(base, dram=point)
    else:
        dvfs = replace(base, interconnect=point)
    return replace(config, dvfs=dvfs)


class SweetSpotSearch:
    """Sweeps a V/f curve per workload x configuration and picks the optimum."""

    def __init__(
        self,
        runner: SweepRunner,
        curve: VfCurve = K40_VF_CURVE,
        metric: str = "edp",
        points: tuple[OperatingPoint, ...] | None = None,
        domain: ClockDomain = ClockDomain.CORE,
        screen: str | None = None,
        top_k: int = 3,
        guard: int = 1,
        predictor: "RooflinePredictor | None" = None,
    ):
        if metric not in METRICS:
            raise ExperimentError(
                f"metric must be one of {METRICS}, got {metric!r}"
            )
        self.runner = runner
        self.curve = curve
        self.metric = metric
        self.domain = domain
        self.points = tuple(points) if points is not None else curve.points
        if not self.points:
            raise ExperimentError("sweet-spot search needs at least one point")
        for point in self.points:
            if not curve.contains(point):
                raise ExperimentError(
                    f"sweep point {point!r} lies outside the search curve"
                )
        if screen is not None:
            from repro.roofline.screen import validate_screen

            validate_screen(screen)
            if top_k < 1:
                raise ExperimentError(
                    f"screen top-k must be >= 1, got {top_k}"
                )
            if guard < 0:
                raise ExperimentError(
                    f"screen guard must be >= 0, got {guard}"
                )
        self.screen = screen
        self.top_k = top_k
        self.guard = guard
        self._predictor = predictor

    def _select_points(
        self, specs: list[WorkloadSpec], configs: list[GpuConfig]
    ) -> dict[tuple[str, str], tuple]:
        """Per (config label, workload): (points to simulate, disposition).

        Exact mode selects every point with no disposition; roofline mode
        ranks the grid analytically and keeps the top ``top_k + guard``.
        """
        if self.screen is None:
            return {
                (config.label(), spec.abbr): (self.points, None)
                for config in configs
                for spec in specs
            }
        from repro.roofline.model import RooflinePredictor
        from repro.roofline.screen import screen_operating_points

        predictor = self._predictor or RooflinePredictor()
        return {
            (config.label(), spec.abbr): screen_operating_points(
                predictor,
                spec,
                config,
                self.points,
                curve=self.curve,
                domain=self.domain,
                metric=self.metric,
                top_k=self.top_k,
                guard=self.guard,
            )
            for config in configs
            for spec in specs
        }

    def search(
        self, specs: list[WorkloadSpec], configs: list[GpuConfig]
    ) -> list[SweetSpot]:
        """Sweep every (workload, config) over the point grid.

        Results come back ordered by (config, workload) input order.  All
        simulations go through one :meth:`SweepRunner.run` call, so they
        parallelize and cache like any other sweep.

        With ``screen="roofline"`` only the analytically ranked top
        ``top_k + guard`` points per (workload, config) are simulated; the
        simulated points go through the *same* pointed configurations (hence
        the same cache keys) an exhaustive sweep would use, and each returned
        :class:`SweetSpot` carries the screening disposition.
        """
        pointed = {
            (config.label(), point.frequency_hz): with_operating_point(
                config, point, self.curve, domain=self.domain
            )
            for config in configs
            for point in self.points
        }
        selected = self._select_points(specs, configs)
        pairs = [
            (spec, pointed[(config.label(), point.frequency_hz)])
            for config in configs
            for spec in specs
            for point in selected[(config.label(), spec.abbr)][0]
        ]
        records = {
            (record.workload, record.config_label): record
            for record in self.runner.run(pairs)
        }

        spots: list[SweetSpot] = []
        for config in configs:
            for spec in specs:
                points, disposition = selected[(config.label(), spec.abbr)]
                samples = []
                for point in points:
                    cfg = pointed[(config.label(), point.frequency_hz)]
                    record = records[(spec.abbr, cfg.label())]
                    params = EnergyParams.for_operating_point(cfg)
                    samples.append(
                        FrequencySample(
                            point=point,
                            delay_s=record.seconds,
                            energy_j=record.energy(params).total,
                        )
                    )
                spots.append(
                    SweetSpot(
                        workload=spec.abbr,
                        config_label=config.label(),
                        num_gpms=config.num_gpms,
                        metric=self.metric,
                        samples=tuple(samples),
                        domain=self.domain.value,
                        disposition=disposition,
                    )
                )
        return spots

    def search_one(self, spec: WorkloadSpec, config: GpuConfig) -> SweetSpot:
        """Convenience wrapper for a single (workload, config) sweep."""
        return self.search([spec], [config])[0]
