"""Deterministic candidate ranking shared by exact search and screening.

The sweet-spot search and the roofline screen both reduce a scored set of
operating-point candidates to "the best one" (exact search) or "the top k
worth simulating" (screening).  Both must agree on one tie-break rule, or a
screened sweep could report a different winner than the exhaustive sweep it
claims to approximate whenever two points score equal.

The rule: ascending score, then ascending frequency, then label.  Lower
frequency wins a tie because the lower point draws less power for the same
score — the conservative choice for an energy study.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

from repro.errors import ExperimentError

T = TypeVar("T")

#: Tie-break key for one candidate: (frequency_hz, label).  Frequency comes
#: first so equal-scoring points resolve to the lower-power one; the label
#: makes the order total even across distinct curves at one frequency.
TieKey = Callable[[T], tuple[float, str]]


def rank_candidates(
    candidates: Sequence[T],
    score: Callable[[T], float],
    tie_key: TieKey,
) -> list[T]:
    """All candidates, best (lowest score) first, deterministically.

    Sorting is by ``(score, frequency, label)``; the input order never
    matters, so exact search and screening rank identically no matter how
    their grids were spelled.
    """
    if not candidates:
        raise ExperimentError("cannot rank an empty candidate set")
    return sorted(
        candidates, key=lambda item: (score(item), *tie_key(item))
    )


def best_candidate(
    candidates: Sequence[T],
    score: Callable[[T], float],
    tie_key: TieKey,
) -> T:
    """The single best candidate under the shared tie-break rule."""
    return rank_candidates(candidates, score, tie_key)[0]


def top_candidates(
    candidates: Sequence[T],
    k: int,
    score: Callable[[T], float],
    tie_key: TieKey,
) -> list[T]:
    """The ``k`` best candidates (all of them when ``k`` >= the set size)."""
    if k < 1:
        raise ExperimentError(f"top-k selection needs k >= 1, got {k}")
    return rank_candidates(candidates, score, tie_key)[:k]
