"""Per-GPM DVFS: operating points, clock domains, governors, sweet spots.

The subsystem opens the V/f axis the paper holds fixed: validated
:class:`VfCurve` tables anchored at the K40 boost point, a
:class:`DvfsConfig` threading per-domain (core / DRAM / interconnect)
operating points through the timing and energy layers, runtime
:class:`Governor` policies, and the offline sweet-spot search in
:mod:`repro.dvfs.sweetspot` (imported lazily there — it pulls in the sweep
runner, which this package root must not).

See ``docs/POWER.md`` for the scaling model and usage.
"""

from repro.dvfs.config import (
    ClockDomain,
    DomainScales,
    DvfsConfig,
    IDENTITY_SCALES,
)
from repro.dvfs.governor import (
    DEFAULT_GPM_ANCHOR_WATTS,
    Governor,
    GovernorDecision,
    GpmObservation,
    GpmPowerModel,
    PowerCapGovernor,
    StaticGovernor,
    UtilizationGovernor,
)
from repro.dvfs.operating_point import (
    K40_OPERATING_POINT,
    K40_VF_CURVE,
    OperatingPoint,
    VfCurve,
)
from repro.dvfs.residency import DvfsResidency, ResidencyHistogram

__all__ = [
    "ClockDomain",
    "DEFAULT_GPM_ANCHOR_WATTS",
    "DomainScales",
    "DvfsConfig",
    "DvfsResidency",
    "Governor",
    "GovernorDecision",
    "GpmObservation",
    "GpmPowerModel",
    "IDENTITY_SCALES",
    "K40_OPERATING_POINT",
    "K40_VF_CURVE",
    "OperatingPoint",
    "PowerCapGovernor",
    "ResidencyHistogram",
    "StaticGovernor",
    "UtilizationGovernor",
    "VfCurve",
]
