"""Per-domain operating-point residency: time-at-point histograms.

A governed run no longer has *one* operating point per domain — each GPM's
core domain walks the V/f ladder as the governor redistributes the chip
power budget.  Pricing such a run at any single point misstates its energy;
the faithful quantity is the *residency*: how many anchor cycles each clock
domain spent at each operating point.

With idle states configured (:mod:`repro.dvfs.idle`) a core domain can also
spend cycles *gated*: those land in sleep buckets keyed by
:class:`~repro.dvfs.idle.SleepState` alongside the operating-point buckets,
and active + gated buckets together partition the run.

:class:`ResidencyHistogram` is one domain's histogram; :class:`DvfsResidency`
bundles every domain of a run (per-GPM core plus the chip-global DRAM and
interconnect domains).  The energy model folds a residency into its pricing
via :meth:`repro.core.energy_model.EnergyParams.for_operating_point` — each
per-event cost becomes the time-weighted mean of its point-scaled values,
which is exact for the constant-rate approximation the global counters force
(see ``docs/POWER.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dvfs.idle import SleepState
from repro.dvfs.operating_point import OperatingPoint, VfCurve
from repro.errors import ConfigError


@dataclass
class ResidencyHistogram:
    """Anchor cycles spent at each operating point of one clock domain.

    ``cycles`` holds the awake buckets (one per operating point);
    ``sleep_cycles`` holds the gated buckets (one per sleep state).  The two
    together account every anchor cycle of the domain's window.
    """

    cycles: dict[OperatingPoint, float] = field(default_factory=dict)
    sleep_cycles: dict[SleepState, float] = field(default_factory=dict)

    def add(self, point: OperatingPoint, cycles: float) -> None:
        """Accumulate ``cycles`` anchor cycles of residency at ``point``."""
        if cycles < 0:
            raise ConfigError(f"residency cycles must be non-negative: {cycles!r}")
        if cycles == 0:
            return
        self.cycles[point] = self.cycles.get(point, 0.0) + cycles

    def add_sleep(self, state: SleepState, cycles: float) -> None:
        """Accumulate ``cycles`` anchor cycles spent gated in ``state``."""
        if cycles < 0:
            raise ConfigError(f"residency cycles must be non-negative: {cycles!r}")
        if cycles == 0:
            return
        self.sleep_cycles[state] = self.sleep_cycles.get(state, 0.0) + cycles

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values()) + sum(self.sleep_cycles.values())

    @property
    def active_cycles(self) -> float:
        return sum(self.cycles.values())

    @property
    def total_sleep_cycles(self) -> float:
        return sum(self.sleep_cycles.values())

    @staticmethod
    def _complement_shares(buckets: dict) -> dict:
        """Shares that exactly partition the bucket total.

        A single-bucket histogram yields exactly ``{bucket: 1.0}`` (a float
        divided by itself), so static residencies price bit-identically to
        the direct per-point scaling.

        Multi-bucket shares must exactly partition the run: each division
        rounds, so the naive shares can sum to 1.0 ± a few ulp.  The largest
        bucket is therefore priced as the complement of the others and placed
        *last* in the returned dict — summing the values in iteration order
        then computes ``s + fl(1.0 - s)``, which rounds to exactly 1.0
        (Sterbenz for s >= 0.5; within a quarter ulp of 1.0 otherwise).
        One complement over *all* buckets — active and sleep alike — keeps
        the invariant with any number of bucket kinds.
        """
        total = sum(buckets.values())
        if total <= 0:
            return {}
        if len(buckets) == 1:
            ((bucket, cycles),) = buckets.items()
            return {bucket: cycles / total}
        largest = max(buckets, key=lambda bucket: buckets[bucket])
        shares = {
            bucket: cycles / total
            for bucket, cycles in buckets.items()
            if bucket is not largest
        }
        shares[largest] = 1.0 - sum(shares.values())
        return shares

    def fractions(self) -> dict:
        """Time share per bucket (operating points *and* sleep states).

        Empty histograms have no fractions.  The shares partition the window
        exactly — see :meth:`_complement_shares`.
        """
        return self._complement_shares({**self.cycles, **self.sleep_cycles})

    def active_fractions(self) -> dict[OperatingPoint, float]:
        """Awake-time share per operating point, renormalized over awake time.

        Per-event costs (instructions, transfers) only accrue while the
        domain is awake, so their residency weighting ignores the gated
        buckets.  Without sleep buckets this is exactly :meth:`fractions`.
        """
        return self._complement_shares(dict(self.cycles))

    def weighted_mean(self, fn: Callable[[float, float], float], curve: VfCurve) -> float:
        """Awake-time-weighted mean of ``fn(freq_ratio, volt_ratio)``.

        An empty histogram means the domain never ran; return the anchor
        value ``fn(1.0, 1.0)`` so zero-length runs price like anchor runs.
        """
        fractions = self.active_fractions()
        if not fractions:
            return fn(1.0, 1.0)
        total = 0.0
        for point, weight in fractions.items():
            total += weight * fn(
                curve.frequency_ratio(point), curve.voltage_ratio(point)
            )
        return total

    def weighted_mean_with_sleep(
        self,
        fn: Callable[[float, float], float],
        curve: VfCurve,
        sleep_value: Callable[[SleepState], float],
    ) -> float:
        """Full-time-weighted mean: awake buckets via ``fn``, gated via
        ``sleep_value``.

        Per-*cycle* costs (stall power, constant power) accrue around the
        clock, so their weighting spans every bucket; a gated bucket
        contributes whatever residual the sleep state still burns.  Without
        sleep buckets this reduces bit-identically to :meth:`weighted_mean`.
        """
        fractions = self.fractions()
        if not fractions:
            return fn(1.0, 1.0)
        total = 0.0
        for bucket, weight in fractions.items():
            if isinstance(bucket, OperatingPoint):
                total += weight * fn(
                    curve.frequency_ratio(bucket), curve.voltage_ratio(bucket)
                )
            else:
                total += weight * sleep_value(bucket)
        return total

    @classmethod
    def single(cls, point: OperatingPoint, cycles: float) -> "ResidencyHistogram":
        """A one-bucket histogram: the whole window at one point."""
        histogram = cls()
        histogram.add(point, cycles)
        return histogram

    # ----------------------------------------------------------- serialization

    def to_json(self) -> list[dict]:
        """Stable JSON form: points sorted by frequency, then sleep states
        sorted by name.  Sleep-free histograms serialize byte-identically to
        the pre-idle format."""
        entries: list[dict] = [
            {
                "point": point.label(),
                "frequency_hz": point.frequency_hz,
                "voltage_v": point.voltage_v,
                "cycles": cycles,
            }
            for point, cycles in sorted(
                self.cycles.items(), key=lambda item: item[0].frequency_hz
            )
        ]
        entries.extend(
            {
                "sleep": state.name,
                "entry_latency_cycles": state.entry_latency_cycles,
                "exit_latency_cycles": state.exit_latency_cycles,
                "residual_fraction": state.residual_fraction,
                "cycles": cycles,
            }
            for state, cycles in sorted(
                self.sleep_cycles.items(), key=lambda item: item[0].name
            )
        )
        return entries

    @classmethod
    def from_json(cls, data: list[dict]) -> "ResidencyHistogram":
        histogram = cls()
        for entry in data:
            if "sleep" in entry:
                histogram.add_sleep(
                    SleepState(
                        name=entry["sleep"],
                        entry_latency_cycles=entry["entry_latency_cycles"],
                        exit_latency_cycles=entry["exit_latency_cycles"],
                        residual_fraction=entry["residual_fraction"],
                    ),
                    entry["cycles"],
                )
                continue
            histogram.add(
                OperatingPoint(
                    frequency_hz=entry["frequency_hz"],
                    voltage_v=entry["voltage_v"],
                    name=entry.get("point", ""),
                ),
                entry["cycles"],
            )
        return histogram


@dataclass
class DvfsResidency:
    """Every clock domain's residency for one run.

    ``core`` holds one histogram per GPM (core domains are per-module); the
    DRAM and interconnect domains are chip-global and hold one each.  For an
    ungoverned run every histogram has a single bucket spanning the whole
    run — see :meth:`static_run`.  Only core domains ever carry sleep
    buckets: DRAM and the interconnect stay powered for the chip.
    """

    core: tuple[ResidencyHistogram, ...]
    dram: ResidencyHistogram
    interconnect: ResidencyHistogram

    def __post_init__(self) -> None:
        if not self.core:
            raise ConfigError("a residency needs at least one core domain")

    @classmethod
    def static_run(
        cls,
        elapsed_cycles: float,
        core_points: list[OperatingPoint],
        dram_point: OperatingPoint,
        interconnect_point: OperatingPoint,
    ) -> "DvfsResidency":
        """The degenerate residency of a run that never changed points."""
        return cls(
            core=tuple(
                ResidencyHistogram.single(point, elapsed_cycles)
                for point in core_points
            ),
            dram=ResidencyHistogram.single(dram_point, elapsed_cycles),
            interconnect=ResidencyHistogram.single(
                interconnect_point, elapsed_cycles
            ),
        )

    @property
    def num_gpms(self) -> int:
        return len(self.core)

    @property
    def total_sleep_cycles(self) -> float:
        """Gated cycles summed over every core domain (0.0 without idle)."""
        return sum(hist.total_sleep_cycles for hist in self.core)

    def domain_fractions(self) -> dict[str, list[dict[str, float]]]:
        """Per-domain time shares keyed by bucket label (invariant checks)."""
        return {
            "core": [
                {bucket.label(): share for bucket, share in hist.fractions().items()}
                for hist in self.core
            ],
            "dram": [
                {point.label(): share
                 for point, share in self.dram.fractions().items()}
            ],
            "interconnect": [
                {point.label(): share
                 for point, share in self.interconnect.fractions().items()}
            ],
        }

    # ----------------------------------------------------------- serialization

    def to_json(self) -> dict:
        return {
            "core": [hist.to_json() for hist in self.core],
            "dram": self.dram.to_json(),
            "interconnect": self.interconnect.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "DvfsResidency":
        return cls(
            core=tuple(
                ResidencyHistogram.from_json(hist) for hist in data["core"]
            ),
            dram=ResidencyHistogram.from_json(data["dram"]),
            interconnect=ResidencyHistogram.from_json(data["interconnect"]),
        )
