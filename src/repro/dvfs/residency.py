"""Per-domain operating-point residency: time-at-point histograms.

A governed run no longer has *one* operating point per domain — each GPM's
core domain walks the V/f ladder as the governor redistributes the chip
power budget.  Pricing such a run at any single point misstates its energy;
the faithful quantity is the *residency*: how many anchor cycles each clock
domain spent at each operating point.

:class:`ResidencyHistogram` is one domain's histogram; :class:`DvfsResidency`
bundles every domain of a run (per-GPM core plus the chip-global DRAM and
interconnect domains).  The energy model folds a residency into its pricing
via :meth:`repro.core.energy_model.EnergyParams.for_operating_point` — each
per-event cost becomes the time-weighted mean of its point-scaled values,
which is exact for the constant-rate approximation the global counters force
(see ``docs/POWER.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dvfs.operating_point import OperatingPoint, VfCurve
from repro.errors import ConfigError


@dataclass
class ResidencyHistogram:
    """Anchor cycles spent at each operating point of one clock domain."""

    cycles: dict[OperatingPoint, float] = field(default_factory=dict)

    def add(self, point: OperatingPoint, cycles: float) -> None:
        """Accumulate ``cycles`` anchor cycles of residency at ``point``."""
        if cycles < 0:
            raise ConfigError(f"residency cycles must be non-negative: {cycles!r}")
        if cycles == 0:
            return
        self.cycles[point] = self.cycles.get(point, 0.0) + cycles

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    def fractions(self) -> dict[OperatingPoint, float]:
        """Time share per point; empty histograms have no fractions.

        A single-bucket histogram yields exactly ``{point: 1.0}`` (a float
        divided by itself), so static residencies price bit-identically to
        the direct per-point scaling.

        Multi-bucket shares must exactly partition the run: each division
        rounds, so the naive shares can sum to 1.0 ± a few ulp.  The largest
        bucket is therefore priced as the complement of the others and placed
        *last* in the returned dict — summing the values in iteration order
        then computes ``s + fl(1.0 - s)``, which rounds to exactly 1.0
        (Sterbenz for s >= 0.5; within a quarter ulp of 1.0 otherwise).
        """
        total = self.total_cycles
        if total <= 0:
            return {}
        if len(self.cycles) == 1:
            ((point, cycles),) = self.cycles.items()
            return {point: cycles / total}
        largest = max(self.cycles, key=lambda point: self.cycles[point])
        shares = {
            point: cycles / total
            for point, cycles in self.cycles.items()
            if point is not largest
        }
        shares[largest] = 1.0 - sum(shares.values())
        return shares

    def weighted_mean(self, fn: Callable[[float, float], float], curve: VfCurve) -> float:
        """Time-weighted mean of ``fn(freq_ratio, volt_ratio)`` over the points.

        An empty histogram means the domain never ran; return the anchor
        value ``fn(1.0, 1.0)`` so zero-length runs price like anchor runs.
        """
        fractions = self.fractions()
        if not fractions:
            return fn(1.0, 1.0)
        total = 0.0
        for point, weight in fractions.items():
            total += weight * fn(
                curve.frequency_ratio(point), curve.voltage_ratio(point)
            )
        return total

    @classmethod
    def single(cls, point: OperatingPoint, cycles: float) -> "ResidencyHistogram":
        """A one-bucket histogram: the whole window at one point."""
        histogram = cls()
        histogram.add(point, cycles)
        return histogram

    # ----------------------------------------------------------- serialization

    def to_json(self) -> list[dict]:
        """Stable JSON form, sorted by frequency."""
        return [
            {
                "point": point.label(),
                "frequency_hz": point.frequency_hz,
                "voltage_v": point.voltage_v,
                "cycles": cycles,
            }
            for point, cycles in sorted(
                self.cycles.items(), key=lambda item: item[0].frequency_hz
            )
        ]

    @classmethod
    def from_json(cls, data: list[dict]) -> "ResidencyHistogram":
        histogram = cls()
        for entry in data:
            histogram.add(
                OperatingPoint(
                    frequency_hz=entry["frequency_hz"],
                    voltage_v=entry["voltage_v"],
                    name=entry.get("point", ""),
                ),
                entry["cycles"],
            )
        return histogram


@dataclass
class DvfsResidency:
    """Every clock domain's residency for one run.

    ``core`` holds one histogram per GPM (core domains are per-module); the
    DRAM and interconnect domains are chip-global and hold one each.  For an
    ungoverned run every histogram has a single bucket spanning the whole
    run — see :meth:`static_run`.
    """

    core: tuple[ResidencyHistogram, ...]
    dram: ResidencyHistogram
    interconnect: ResidencyHistogram

    def __post_init__(self) -> None:
        if not self.core:
            raise ConfigError("a residency needs at least one core domain")

    @classmethod
    def static_run(
        cls,
        elapsed_cycles: float,
        core_points: list[OperatingPoint],
        dram_point: OperatingPoint,
        interconnect_point: OperatingPoint,
    ) -> "DvfsResidency":
        """The degenerate residency of a run that never changed points."""
        return cls(
            core=tuple(
                ResidencyHistogram.single(point, elapsed_cycles)
                for point in core_points
            ),
            dram=ResidencyHistogram.single(dram_point, elapsed_cycles),
            interconnect=ResidencyHistogram.single(
                interconnect_point, elapsed_cycles
            ),
        )

    @property
    def num_gpms(self) -> int:
        return len(self.core)

    def domain_fractions(self) -> dict[str, list[dict[str, float]]]:
        """Per-domain time shares keyed by point label (invariant checks)."""
        return {
            "core": [
                {point.label(): share for point, share in hist.fractions().items()}
                for hist in self.core
            ],
            "dram": [
                {point.label(): share
                 for point, share in self.dram.fractions().items()}
            ],
            "interconnect": [
                {point.label(): share
                 for point, share in self.interconnect.fractions().items()}
            ],
        }

    # ----------------------------------------------------------- serialization

    def to_json(self) -> dict:
        return {
            "core": [hist.to_json() for hist in self.core],
            "dram": self.dram.to_json(),
            "interconnect": self.interconnect.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "DvfsResidency":
        return cls(
            core=tuple(
                ResidencyHistogram.from_json(hist) for hist in data["core"]
            ),
            dram=ResidencyHistogram.from_json(data["dram"]),
            interconnect=ResidencyHistogram.from_json(data["interconnect"]),
        )
