"""DVFS governors: policies that pick core operating points at runtime.

A governor steers each GPM's *core* domain while a workload runs.  The
driver (:class:`~repro.gpu.multigpu.MultiGpu`) consults it at every kernel
boundary — the natural synchronization point of the bulk-synchronous
workloads — handing it the GPM's issue-stage utilization over the interval
just finished (the same busy/idle counters the ``MetricsRegistry`` profile
view reports).  The governor answers with the point to run the next interval
at and keeps a decision trace for analysis.

Three policies ship here:

* :class:`StaticGovernor` pins every GPM to one point (the building block of
  offline sweeps — :mod:`repro.dvfs.sweetspot` prefers static *configs* so
  the sweep cache applies, but the governor form exists for runtime use).
* :class:`UtilizationGovernor` is the classic interval-based ondemand rule:
  step up the V/f ladder when the SMs are issue-bound, step down when they
  mostly idle on memory — the behaviour that turns memory-bound phases into
  energy savings at near-zero delay cost.
* :class:`PowerCapGovernor` enforces a chip-level watt budget across all
  GPMs, waterfilling operating points by utilization each interval.  Unlike
  the per-GPM policies it decides for the whole chip at once, through the
  batch :meth:`Governor.on_chip_interval` entry point.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

from repro.dvfs.operating_point import K40_VF_CURVE, OperatingPoint, VfCurve
from repro.errors import ConfigError


@dataclass(frozen=True)
class GovernorDecision:
    """One governor consultation: what was observed and what was chosen."""

    at_cycle: float
    gpm_id: int
    window_cycles: float
    utilization: float
    point: OperatingPoint
    #: Chip-level worst-case power estimate for the chosen allocation (W);
    #: 0.0 for governors without a power model.
    estimated_chip_watts: float = 0.0


@dataclass(frozen=True)
class GpmObservation:
    """What the driver observed about one GPM over the interval just closed."""

    gpm_id: int
    utilization: float
    current: OperatingPoint


@dataclass
class Governor(abc.ABC):
    """Base class for per-GPM core-domain DVFS policies."""

    curve: VfCurve = field(default_factory=lambda: K40_VF_CURVE)
    trace: list[GovernorDecision] = field(default_factory=list, repr=False)

    @abc.abstractmethod
    def initial_point(self, gpm_id: int) -> OperatingPoint:
        """The point a GPM starts the workload at."""

    @abc.abstractmethod
    def decide(
        self, gpm_id: int, utilization: float, current: OperatingPoint
    ) -> OperatingPoint:
        """Pick the next interval's point from the last interval's load."""

    def on_run_begin(self, total_kernels: int) -> None:
        """Called once before the workload launches (kernel count known).

        Pacing policies need the run's shape up front; interval policies
        ignore it, so the default is a no-op.
        """

    # ------------------------------------------------------------- chip level

    def initial_points(self, num_gpms: int) -> list[OperatingPoint]:
        """The points every GPM starts the workload at (chip-wide view).

        Per-GPM policies delegate to :meth:`initial_point`; chip-level
        policies (the power-capping governor) override this to allocate a
        feasible starting distribution.
        """
        return [self.initial_point(gpm_id) for gpm_id in range(num_gpms)]

    def decide_chip(
        self, observations: list[GpmObservation]
    ) -> list[OperatingPoint]:
        """Pick every GPM's next point jointly (default: independent)."""
        return [
            self.decide(obs.gpm_id, obs.utilization, obs.current)
            for obs in observations
        ]

    def chip_watts_estimate(self, points: list[OperatingPoint]) -> float:
        """Worst-case chip power of an allocation (0.0 without a model)."""
        return 0.0

    def on_chip_interval(
        self,
        observations: list[GpmObservation],
        now: float,
        window_cycles: float,
    ) -> list[OperatingPoint]:
        """Driver entry point: decide for the chip, record, return points."""
        points = self.decide_chip(observations)
        estimated = self.chip_watts_estimate(points)
        for obs, point in zip(observations, points):
            self.trace.append(
                GovernorDecision(
                    at_cycle=now,
                    gpm_id=obs.gpm_id,
                    window_cycles=window_cycles,
                    utilization=obs.utilization,
                    point=point,
                    estimated_chip_watts=estimated,
                )
            )
        return points

    def on_interval(
        self,
        gpm_id: int,
        utilization: float,
        current: OperatingPoint,
        now: float,
        window_cycles: float,
    ) -> OperatingPoint:
        """Driver entry point: decide, record the decision, return the point."""
        point = self.decide(gpm_id, utilization, current)
        self.trace.append(
            GovernorDecision(
                at_cycle=now,
                gpm_id=gpm_id,
                window_cycles=window_cycles,
                utilization=utilization,
                point=point,
            )
        )
        return point

    def decisions_for(self, gpm_id: int) -> list[GovernorDecision]:
        """This GPM's slice of the decision trace, in time order."""
        return [d for d in self.trace if d.gpm_id == gpm_id]


@dataclass
class StaticGovernor(Governor):
    """Pin every GPM to one fixed operating point for the whole run."""

    point: OperatingPoint = field(default_factory=lambda: K40_VF_CURVE.anchor)

    def __post_init__(self) -> None:
        if not self.curve.contains(self.point):
            raise ConfigError(
                f"static point {self.point!r} lies outside the governor curve"
            )

    def initial_point(self, gpm_id: int) -> OperatingPoint:
        return self.point

    def decide(
        self, gpm_id: int, utilization: float, current: OperatingPoint
    ) -> OperatingPoint:
        return self.point


@dataclass
class UtilizationGovernor(Governor):
    """Interval-based ondemand policy over the issue-stage utilization.

    When a GPM's SMs were issue-busy at least ``high_watermark`` of the last
    interval, the core steps one rung up the curve (it is compute-bound:
    frequency buys delay).  When they were busy at most ``low_watermark``,
    it steps one rung down (it is memory/stall-bound: frequency buys nothing
    but V² energy).  In between, the point holds.
    """

    high_watermark: float = 0.75
    low_watermark: float = 0.35
    start: OperatingPoint | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_watermark < self.high_watermark <= 1.0:
            raise ConfigError(
                "watermarks must satisfy 0 <= low < high <= 1; got"
                f" low={self.low_watermark!r} high={self.high_watermark!r}"
            )
        if self.start is not None and not self.curve.contains(self.start):
            raise ConfigError(
                f"start point {self.start!r} lies outside the governor curve"
            )

    def initial_point(self, gpm_id: int) -> OperatingPoint:
        return self.start if self.start is not None else self.curve.anchor

    def decide(
        self, gpm_id: int, utilization: float, current: OperatingPoint
    ) -> OperatingPoint:
        if utilization >= self.high_watermark:
            return self.curve.step_up(current)
        if utilization <= self.low_watermark:
            return self.curve.step_down(current)
        return current


#: Default worst-case per-GPM power at the anchor point: a 250 W board
#: budget split over the four-module building block the paper scales from.
DEFAULT_GPM_ANCHOR_WATTS: float = 62.5


@dataclass(frozen=True)
class GpmPowerModel:
    """Worst-case per-GPM power as a function of its core operating point.

    The shape mirrors the energy model's constant-power split: an idle share
    (leakage ∝ V plus idle clocking ∝ f·V²) and a dynamic share (switching
    ∝ f·V²).  ``point_watts`` evaluates the *full-utilization* draw — the
    power-capping governor budgets against the worst case so a utilization
    spike inside an interval can never blow the cap.
    """

    anchor_watts: float = DEFAULT_GPM_ANCHOR_WATTS
    idle_fraction: float = 0.4
    leakage_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.anchor_watts <= 0:
            raise ConfigError(
                f"anchor_watts must be positive, got {self.anchor_watts!r}"
            )
        for name in ("idle_fraction", "leakage_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"{name} is a share in [0, 1]; got {value!r}"
                )

    def point_watts(self, curve: VfCurve, point: OperatingPoint) -> float:
        """Worst-case (full-utilization) watts of one GPM at ``point``.

        Strictly increasing along a validated V/f ladder — both the static
        and the dynamic share grow with frequency and voltage — which is
        what makes the waterfilling allocation's budget check sufficient.
        """
        freq = curve.frequency_ratio(point)
        volt = curve.voltage_ratio(point)
        static = (
            self.leakage_fraction * volt
            + (1.0 - self.leakage_fraction) * freq * (volt * volt)
        )
        dynamic = freq * (volt * volt)
        return self.anchor_watts * (
            self.idle_fraction * static + (1.0 - self.idle_fraction) * dynamic
        )

    def chip_watts(
        self, curve: VfCurve, points: list[OperatingPoint]
    ) -> float:
        """Worst-case chip power of one allocation (summed in GPM order)."""
        total = 0.0
        for point in points:
            total += self.point_watts(curve, point)
        return total


@dataclass
class PowerCapGovernor(Governor):
    """Chip-level power capping: waterfill points by utilization under a cap.

    Every interval the governor recomputes a *target* allocation: starting
    from the floor point, it raises GPMs one rung at a time — most-utilized
    first, ties broken by GPM id — as long as the chip's worst-case power
    stays within ``cap_watts``, never above ``ceiling`` (the anchor point by
    default, so an infinite cap reproduces the ungoverned run bit-for-bit).

    Two hysteresis mechanisms damp oscillation: utilization is smoothed with
    an exponential moving average (``smoothing``), and a GPM climbs at most
    one rung per interval toward its target.  Downward moves apply
    immediately — the cap is a hard constraint, so every chosen allocation
    satisfies ``chip_watts(chosen) <= cap_watts`` at every interval.
    """

    cap_watts: float = math.inf
    power_model: GpmPowerModel = field(default_factory=GpmPowerModel)
    floor: OperatingPoint | None = None
    ceiling: OperatingPoint | None = None
    smoothing: float = 0.5
    _smoothed: dict[int, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.cap_watts > 0:
            raise ConfigError(
                f"cap_watts must be positive, got {self.cap_watts!r}"
            )
        if not 0.0 < self.smoothing <= 1.0:
            raise ConfigError(
                f"smoothing must lie in (0, 1], got {self.smoothing!r}"
            )
        for name in ("floor", "ceiling"):
            point = getattr(self, name)
            if point is not None and not self.curve.contains(point):
                raise ConfigError(
                    f"{name} point {point!r} lies outside the governor curve"
                )
        if self.floor_point.frequency_hz > self.ceiling_point.frequency_hz:
            raise ConfigError(
                f"floor {self.floor_point!r} sits above ceiling"
                f" {self.ceiling_point!r}"
            )

    @property
    def floor_point(self) -> OperatingPoint:
        return self.floor if self.floor is not None else self.curve.points[0]

    @property
    def ceiling_point(self) -> OperatingPoint:
        return self.ceiling if self.ceiling is not None else self.curve.anchor

    # -------------------------------------------------------------- allocation

    def chip_watts_estimate(self, points: list[OperatingPoint]) -> float:
        return self.power_model.chip_watts(self.curve, points)

    def _waterfill(self, priorities: list[float]) -> list[OperatingPoint]:
        """Budget-feasible allocation: raise rungs by priority under the cap.

        Round-based waterfilling: each pass offers every GPM one rung, in
        descending priority order (ties by GPM id), accepting a raise only
        when the whole chip still fits the budget.  The returned allocation
        therefore always satisfies ``chip_watts(points) <= cap_watts`` —
        including at the all-floor start, which :meth:`initial_points`
        validates against the cap.
        """
        curve = self.curve
        ceiling_hz = self.ceiling_point.frequency_hz
        points = [self.floor_point] * len(priorities)
        order = sorted(
            range(len(priorities)), key=lambda idx: (-priorities[idx], idx)
        )
        raised = True
        while raised:
            raised = False
            for idx in order:
                current = points[idx]
                if current.frequency_hz >= ceiling_hz:
                    continue
                upper = curve.step_up(current)
                if upper.frequency_hz > ceiling_hz:
                    continue
                points[idx] = upper
                if self.power_model.chip_watts(curve, points) <= self.cap_watts:
                    raised = True
                else:
                    points[idx] = current
        return points

    def initial_points(self, num_gpms: int) -> list[OperatingPoint]:
        floor_watts = self.power_model.chip_watts(
            self.curve, [self.floor_point] * num_gpms
        )
        if floor_watts > self.cap_watts:
            raise ConfigError(
                f"cap {self.cap_watts:g} W is infeasible: {num_gpms} GPMs draw"
                f" {floor_watts:g} W even at the floor point"
                f" {self.floor_point.label()}"
            )
        # Uniform priorities: with no load history, waterfill round-robin.
        return self._waterfill([1.0] * num_gpms)

    def initial_point(self, gpm_id: int) -> OperatingPoint:
        """Single-GPM fallback (chip-level callers use initial_points)."""
        return self.initial_points(1)[0]

    # --------------------------------------------------------------- decisions

    def decide_chip(
        self, observations: list[GpmObservation]
    ) -> list[OperatingPoint]:
        priorities = []
        for obs in observations:
            previous = self._smoothed.get(obs.gpm_id, obs.utilization)
            smoothed = (
                self.smoothing * obs.utilization
                + (1.0 - self.smoothing) * previous
            )
            self._smoothed[obs.gpm_id] = smoothed
            priorities.append(smoothed)
        targets = self._waterfill(priorities)
        chosen: list[OperatingPoint] = []
        for obs, target in zip(observations, targets):
            current = obs.current
            if target.frequency_hz < current.frequency_hz:
                # Over-budget GPMs drop to target immediately: the cap is hard.
                chosen.append(target)
            elif target.frequency_hz > current.frequency_hz:
                # Climb one rung per interval (hysteresis against thrash);
                # step_up never overshoots target, so the budget still holds.
                chosen.append(self.curve.step_up(current))
            else:
                chosen.append(current)
        return chosen

    def decide(
        self, gpm_id: int, utilization: float, current: OperatingPoint
    ) -> OperatingPoint:
        """Per-GPM view of the chip decision (single-observation chip)."""
        return self.decide_chip(
            [GpmObservation(gpm_id, utilization, current)]
        )[0]
