"""DVFS governors: policies that pick core operating points at runtime.

A governor steers each GPM's *core* domain while a workload runs.  The
driver (:class:`~repro.gpu.multigpu.MultiGpu`) consults it at every kernel
boundary — the natural synchronization point of the bulk-synchronous
workloads — handing it the GPM's issue-stage utilization over the interval
just finished (the same busy/idle counters the ``MetricsRegistry`` profile
view reports).  The governor answers with the point to run the next interval
at and keeps a decision trace for analysis.

Two policies ship here:

* :class:`StaticGovernor` pins every GPM to one point (the building block of
  offline sweeps — :mod:`repro.dvfs.sweetspot` prefers static *configs* so
  the sweep cache applies, but the governor form exists for runtime use).
* :class:`UtilizationGovernor` is the classic interval-based ondemand rule:
  step up the V/f ladder when the SMs are issue-bound, step down when they
  mostly idle on memory — the behaviour that turns memory-bound phases into
  energy savings at near-zero delay cost.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.dvfs.operating_point import K40_VF_CURVE, OperatingPoint, VfCurve
from repro.errors import ConfigError


@dataclass(frozen=True)
class GovernorDecision:
    """One governor consultation: what was observed and what was chosen."""

    at_cycle: float
    gpm_id: int
    window_cycles: float
    utilization: float
    point: OperatingPoint


@dataclass
class Governor(abc.ABC):
    """Base class for per-GPM core-domain DVFS policies."""

    curve: VfCurve = field(default_factory=lambda: K40_VF_CURVE)
    trace: list[GovernorDecision] = field(default_factory=list, repr=False)

    @abc.abstractmethod
    def initial_point(self, gpm_id: int) -> OperatingPoint:
        """The point a GPM starts the workload at."""

    @abc.abstractmethod
    def decide(
        self, gpm_id: int, utilization: float, current: OperatingPoint
    ) -> OperatingPoint:
        """Pick the next interval's point from the last interval's load."""

    def on_interval(
        self,
        gpm_id: int,
        utilization: float,
        current: OperatingPoint,
        now: float,
        window_cycles: float,
    ) -> OperatingPoint:
        """Driver entry point: decide, record the decision, return the point."""
        point = self.decide(gpm_id, utilization, current)
        self.trace.append(
            GovernorDecision(
                at_cycle=now,
                gpm_id=gpm_id,
                window_cycles=window_cycles,
                utilization=utilization,
                point=point,
            )
        )
        return point

    def decisions_for(self, gpm_id: int) -> list[GovernorDecision]:
        """This GPM's slice of the decision trace, in time order."""
        return [d for d in self.trace if d.gpm_id == gpm_id]


@dataclass
class StaticGovernor(Governor):
    """Pin every GPM to one fixed operating point for the whole run."""

    point: OperatingPoint = field(default_factory=lambda: K40_VF_CURVE.anchor)

    def __post_init__(self) -> None:
        if not self.curve.contains(self.point):
            raise ConfigError(
                f"static point {self.point!r} lies outside the governor curve"
            )

    def initial_point(self, gpm_id: int) -> OperatingPoint:
        return self.point

    def decide(
        self, gpm_id: int, utilization: float, current: OperatingPoint
    ) -> OperatingPoint:
        return self.point


@dataclass
class UtilizationGovernor(Governor):
    """Interval-based ondemand policy over the issue-stage utilization.

    When a GPM's SMs were issue-busy at least ``high_watermark`` of the last
    interval, the core steps one rung up the curve (it is compute-bound:
    frequency buys delay).  When they were busy at most ``low_watermark``,
    it steps one rung down (it is memory/stall-bound: frequency buys nothing
    but V² energy).  In between, the point holds.
    """

    high_watermark: float = 0.75
    low_watermark: float = 0.35
    start: OperatingPoint | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_watermark < self.high_watermark <= 1.0:
            raise ConfigError(
                "watermarks must satisfy 0 <= low < high <= 1; got"
                f" low={self.low_watermark!r} high={self.high_watermark!r}"
            )
        if self.start is not None and not self.curve.contains(self.start):
            raise ConfigError(
                f"start point {self.start!r} lies outside the governor curve"
            )

    def initial_point(self, gpm_id: int) -> OperatingPoint:
        return self.start if self.start is not None else self.curve.anchor

    def decide(
        self, gpm_id: int, utilization: float, current: OperatingPoint
    ) -> OperatingPoint:
        if utilization >= self.high_watermark:
            return self.curve.step_up(current)
        if utilization <= self.low_watermark:
            return self.curve.step_down(current)
        return current
