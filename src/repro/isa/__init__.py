"""PTX-like instruction-set substrate.

GPUJoule works at the granularity of native ISA (PTX) instructions and memory
transactions, so the simulator's traces are expressed in the same vocabulary:

* :mod:`~repro.isa.opcodes` — the compute opcodes of Table Ib plus memory ops.
* :mod:`~repro.isa.instructions` — individual instruction records (used by the
  microbenchmark builders, which emit literal instruction loops).
* :mod:`~repro.isa.program` — warp programs as sequences of *segments*, the
  unit at which the discrete-event simulator advances a warp.
* :mod:`~repro.isa.kernel` — kernels (grids of CTAs) and whole workloads.
"""

from repro.isa.opcodes import MemSpace, Opcode, OpClass
from repro.isa.instructions import Instruction
from repro.isa.program import MemAccess, Segment, WarpProgram
from repro.isa.kernel import Kernel, KernelLaunch, Workload

__all__ = [
    "MemSpace",
    "Opcode",
    "OpClass",
    "Instruction",
    "MemAccess",
    "Segment",
    "WarpProgram",
    "Kernel",
    "KernelLaunch",
    "Workload",
]
