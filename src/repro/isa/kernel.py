"""Kernels, launches, and workloads.

A :class:`Kernel` is a grid of cooperative thread arrays (CTAs); every CTA
holds the same number of warps.  Warp programs are produced *lazily* by a
``program_factory(cta_id, warp_id)`` callable so that a 32-GPM run never holds
the full trace in memory — programs are generated when a CTA is dispatched to
an SM and discarded when it retires.

A :class:`Workload` is an ordered list of kernels (real applications launch
many kernels; software cache coherence acts at these boundaries) plus the
metadata the experiment drivers need (name, category).
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.isa.program import WarpProgram

ProgramFactory = Callable[[int, int], WarpProgram]


class WorkloadCategory(enum.Enum):
    """Table II classification: compute- vs memory-bandwidth-intensive."""

    COMPUTE = "C"
    MEMORY = "M"


@dataclass
class Kernel:
    """One kernel launch shape.

    Attributes:
        name: identifier used in per-kernel reports.
        num_ctas: grid size; fixed across scaling points (strong scaling).
        warps_per_cta: CTA size in warps.
        program_factory: builds the warp program for (cta_id, warp_id).
    """

    name: str
    num_ctas: int
    warps_per_cta: int
    program_factory: ProgramFactory

    def __post_init__(self) -> None:
        if self.num_ctas <= 0:
            raise TraceError(f"kernel {self.name!r}: num_ctas must be positive")
        if self.warps_per_cta <= 0:
            raise TraceError(f"kernel {self.name!r}: warps_per_cta must be positive")

    def warp_program(self, cta_id: int, warp_id: int) -> WarpProgram:
        """Materialize the program for one warp of one CTA."""
        if not 0 <= cta_id < self.num_ctas:
            raise TraceError(
                f"kernel {self.name!r}: cta_id {cta_id} out of range"
            )
        if not 0 <= warp_id < self.warps_per_cta:
            raise TraceError(
                f"kernel {self.name!r}: warp_id {warp_id} out of range"
            )
        return self.program_factory(cta_id, warp_id)

    def cta_programs(self, cta_id: int) -> list[WarpProgram]:
        """Materialize all of one CTA's warp programs, in warp order.

        Factories that support batched synthesis (``build_cta``) produce the
        whole CTA in one vectorized pass; plain ``(cta_id, warp_id)``
        callables fall back to one call per warp.
        """
        if not 0 <= cta_id < self.num_ctas:
            raise TraceError(
                f"kernel {self.name!r}: cta_id {cta_id} out of range"
            )
        build_cta = getattr(self.program_factory, "build_cta", None)
        if build_cta is not None:
            return build_cta(cta_id)
        return [
            self.program_factory(cta_id, warp_id)
            for warp_id in range(self.warps_per_cta)
        ]

    @property
    def total_warps(self) -> int:
        return self.num_ctas * self.warps_per_cta


@dataclass(frozen=True)
class KernelLaunch:
    """A kernel together with its position in the workload's launch stream."""

    kernel: Kernel
    index: int


@dataclass
class Workload:
    """A named sequence of kernel launches with Table II metadata.

    ``interleaved_base``: byte address of the start of the workload's shared
    (non-CTA-partitioned) allocations; the GPU stripes pages at or above this
    address across GPM memories instead of first-touch placing them.  ``None``
    means the workload has no shared allocations worth interleaving.
    """

    name: str
    kernels: list[Kernel]
    category: WorkloadCategory
    description: str = ""
    tags: tuple[str, ...] = field(default_factory=tuple)
    interleaved_base: int | None = None

    def __post_init__(self) -> None:
        if not self.kernels:
            raise TraceError(f"workload {self.name!r} has no kernels")

    @property
    def launches(self) -> list[KernelLaunch]:
        return [KernelLaunch(kernel, i) for i, kernel in enumerate(self.kernels)]

    @property
    def is_compute_intensive(self) -> bool:
        return self.category is WorkloadCategory.COMPUTE

    @property
    def is_memory_intensive(self) -> bool:
        return self.category is WorkloadCategory.MEMORY

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, category={self.category.value},"
            f" kernels={len(self.kernels)})"
        )
