"""Individual instruction records.

Warp programs in the performance simulator are segment-based (see
:mod:`repro.isa.program`), but the microbenchmark builders — the analogue of
the paper's Algorithm 1 inline-assembly loops — construct literal instruction
sequences.  :class:`Instruction` is that literal form, convertible into
segments for execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.isa.opcodes import MemSpace, Opcode


@dataclass(frozen=True)
class Instruction:
    """One warp-level instruction.

    Args:
        opcode: which operation this is.
        address: byte address of the (coalesced) warp access — memory ops only.
        size: bytes moved by the warp access — memory ops only.
    """

    opcode: Opcode
    address: int | None = None
    size: int | None = None

    def __post_init__(self) -> None:
        if self.opcode.is_memory:
            if self.address is None or self.size is None:
                raise TraceError(
                    f"memory instruction {self.opcode} requires address and size"
                )
            if self.address < 0:
                raise TraceError(f"negative address: {self.address!r}")
            if self.size <= 0:
                raise TraceError(f"non-positive access size: {self.size!r}")
        else:
            if self.address is not None or self.size is not None:
                raise TraceError(
                    f"non-memory instruction {self.opcode} cannot carry an address"
                )

    @property
    def mem_space(self) -> MemSpace | None:
        """Address space touched, or None for non-memory instructions."""
        if self.opcode in (Opcode.LDS, Opcode.STS):
            return MemSpace.SHARED
        if self.opcode in (Opcode.LDG, Opcode.STG):
            return MemSpace.GLOBAL
        return None

    @property
    def is_store(self) -> bool:
        return self.opcode in (Opcode.STG, Opcode.STS)

    def __repr__(self) -> str:
        if self.opcode.is_memory:
            return f"Instruction({self.opcode.name}, addr=0x{self.address:x}, size={self.size})"
        return f"Instruction({self.opcode.name})"
