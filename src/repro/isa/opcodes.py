"""Opcode definitions mirroring the PTX instructions of the paper's Table Ib.

Each compute opcode carries:

* an :class:`OpClass` (which functional unit executes it),
* a data width in bits,
* an *issue weight* — how many issue-slot units the instruction occupies,
  reflecting that double-precision and SFU operations issue at a fraction of
  the FP32 rate on the modeled (Kepler-class) machine.

Memory opcodes carry the address space they touch; their energy is accounted
per *transaction* by the memory hierarchy, not per instruction, exactly as the
GPUJoule model separates EPI from EPT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional-unit class an opcode executes on."""

    FP32 = "fp32"
    FP64 = "fp64"
    INT = "int"
    BITWISE = "bitwise"
    SFU = "sfu"
    MEMORY = "memory"
    CONTROL = "control"


class MemSpace(enum.Enum):
    """Address spaces distinguished by the memory hierarchy."""

    GLOBAL = "global"
    SHARED = "shared"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    op_class: OpClass
    width_bits: int
    issue_weight: float


class Opcode(enum.Enum):
    """The instruction vocabulary of the model.

    The compute entries are exactly the rows of Table Ib; memory and control
    entries cover the instructions the trace generators emit.
    """

    # 32-bit floating point
    FADD32 = "fadd32"
    FMUL32 = "fmul32"
    FFMA32 = "ffma32"
    # 32-bit integer
    IADD32 = "iadd32"
    ISUB32 = "isub32"
    IMUL32 = "imul32"
    IMAD32 = "imad32"
    # 32-bit bitwise
    AND32 = "and32"
    OR32 = "or32"
    XOR32 = "xor32"
    # 32-bit SFU / transcendental
    SIN32 = "sin32"
    COS32 = "cos32"
    SQRT32 = "sqrt32"
    LOG232 = "log232"
    EXP232 = "exp232"
    RCP32 = "rcp32"
    # 64-bit floating point
    FADD64 = "fadd64"
    FMUL64 = "fmul64"
    FFMA64 = "ffma64"
    # Memory
    LDG = "ldg"  # load from global memory
    STG = "stg"  # store to global memory
    LDS = "lds"  # load from shared memory
    STS = "sts"  # store to shared memory
    # Control
    BRA = "bra"

    @property
    def info(self) -> OpInfo:
        return _OP_INFO[self]

    @property
    def op_class(self) -> OpClass:
        return _OP_INFO[self].op_class

    @property
    def width_bits(self) -> int:
        return _OP_INFO[self].width_bits

    @property
    def issue_weight(self) -> float:
        return _OP_INFO[self].issue_weight

    @property
    def is_memory(self) -> bool:
        return _OP_INFO[self].op_class is OpClass.MEMORY

    @property
    def is_compute(self) -> bool:
        cls = _OP_INFO[self].op_class
        return cls is not OpClass.MEMORY and cls is not OpClass.CONTROL


_OP_INFO: dict[Opcode, OpInfo] = {
    Opcode.FADD32: OpInfo(OpClass.FP32, 32, 1.0),
    Opcode.FMUL32: OpInfo(OpClass.FP32, 32, 1.0),
    Opcode.FFMA32: OpInfo(OpClass.FP32, 32, 1.0),
    Opcode.IADD32: OpInfo(OpClass.INT, 32, 1.0),
    Opcode.ISUB32: OpInfo(OpClass.INT, 32, 1.0),
    Opcode.IMUL32: OpInfo(OpClass.INT, 32, 2.0),
    Opcode.IMAD32: OpInfo(OpClass.INT, 32, 2.0),
    Opcode.AND32: OpInfo(OpClass.BITWISE, 32, 1.0),
    Opcode.OR32: OpInfo(OpClass.BITWISE, 32, 1.0),
    Opcode.XOR32: OpInfo(OpClass.BITWISE, 32, 1.0),
    Opcode.SIN32: OpInfo(OpClass.SFU, 32, 4.0),
    Opcode.COS32: OpInfo(OpClass.SFU, 32, 4.0),
    Opcode.SQRT32: OpInfo(OpClass.SFU, 32, 4.0),
    Opcode.LOG232: OpInfo(OpClass.SFU, 32, 4.0),
    Opcode.EXP232: OpInfo(OpClass.SFU, 32, 4.0),
    Opcode.RCP32: OpInfo(OpClass.SFU, 32, 4.0),
    Opcode.FADD64: OpInfo(OpClass.FP64, 64, 3.0),
    Opcode.FMUL64: OpInfo(OpClass.FP64, 64, 3.0),
    Opcode.FFMA64: OpInfo(OpClass.FP64, 64, 3.0),
    Opcode.LDG: OpInfo(OpClass.MEMORY, 32, 1.0),
    Opcode.STG: OpInfo(OpClass.MEMORY, 32, 1.0),
    Opcode.LDS: OpInfo(OpClass.MEMORY, 32, 1.0),
    Opcode.STS: OpInfo(OpClass.MEMORY, 32, 1.0),
    Opcode.BRA: OpInfo(OpClass.CONTROL, 0, 1.0),
}

#: Compute opcodes that appear in Table Ib, in the table's row order; used by
#: the calibration flow and the Table Ib reproduction bench.
TABLE_1B_COMPUTE_OPCODES: tuple[Opcode, ...] = (
    Opcode.FADD32,
    Opcode.FMUL32,
    Opcode.FFMA32,
    Opcode.IADD32,
    Opcode.ISUB32,
    Opcode.AND32,
    Opcode.OR32,
    Opcode.XOR32,
    Opcode.SIN32,
    Opcode.COS32,
    Opcode.IMUL32,
    Opcode.IMAD32,
    Opcode.FADD64,
    Opcode.FMUL64,
    Opcode.FFMA64,
    Opcode.SQRT32,
    Opcode.LOG232,
    Opcode.EXP232,
    Opcode.RCP32,
)

#: All compute opcodes (for iteration by tooling/tests).
COMPUTE_OPCODES: tuple[Opcode, ...] = tuple(
    op for op in Opcode if op.is_compute
)

#: All memory opcodes.
MEMORY_OPCODES: tuple[Opcode, ...] = tuple(op for op in Opcode if op.is_memory)
