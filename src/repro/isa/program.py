"""Warp programs: the execution unit consumed by the performance simulator.

A warp program is a sequence of :class:`Segment` objects.  Each segment is a
run of compute instructions followed by a group of memory accesses the warp
issues together; the warp stalls at the end of the segment until all of its
accesses have returned (a per-segment dependence barrier).  This matches how
GPU compilers schedule loads early and consume them later, and gives the
simulator a natural memory-level-parallelism knob: the number of accesses per
segment is the MLP the warp exposes.

Segments keep *aggregate* compute counts (``{opcode: count}``) rather than
instruction lists, so a warp advances in O(1) events per segment instead of
per instruction — the key to simulating 32-GPM systems in pure Python.
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import MemSpace, Opcode


class MemAccess:
    """One coalesced warp-level memory access.

    Attributes:
        address: byte address (the hierarchy aligns it to its line size).
        size: bytes moved for the warp (128 for a fully coalesced access).
        is_store: True for stores.
        space: GLOBAL accesses traverse L1/L2/DRAM; SHARED accesses hit the
            on-SM scratchpad and never leave the SM.

    A plain slotted class rather than a dataclass: the generators construct
    one per access in the simulator's hot path.
    """

    __slots__ = ("address", "size", "is_store", "space")

    def __init__(
        self,
        address: int,
        size: int,
        is_store: bool = False,
        space: MemSpace = MemSpace.GLOBAL,
    ):
        if address < 0:
            raise TraceError(f"negative address: {address!r}")
        if size <= 0:
            raise TraceError(f"non-positive access size: {size!r}")
        self.address = address
        self.size = size
        self.is_store = is_store
        self.space = space

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemAccess):
            return NotImplemented
        return (
            self.address == other.address
            and self.size == other.size
            and self.is_store == other.is_store
            and self.space == other.space
        )

    def __hash__(self) -> int:
        return hash((self.address, self.size, self.is_store, self.space))

    def __repr__(self) -> str:
        return (
            f"MemAccess(address={self.address!r}, size={self.size!r},"
            f" is_store={self.is_store!r}, space={self.space!r})"
        )


class Segment:
    """A run of compute work followed by a barrier-ed group of memory accesses.

    ``issue_slots`` (issue-stage occupancy, including one slot per memory op)
    and ``total_instructions`` are computed once at construction — segments
    are created in the simulator's hot path and consumed exactly once.
    """

    __slots__ = ("compute", "accesses", "issue_slots", "total_instructions")

    def __init__(
        self,
        compute: dict[Opcode, int] | None = None,
        accesses: tuple[MemAccess, ...] = (),
    ):
        self.compute = compute if compute is not None else {}
        self.accesses = accesses
        slots = 0.0
        instructions = 0
        for opcode, count in self.compute.items():
            if not opcode.is_compute:
                raise TraceError(
                    f"segment compute counts may only hold compute opcodes,"
                    f" got {opcode}"
                )
            if count < 0:
                raise TraceError(
                    f"negative instruction count for {opcode}: {count}"
                )
            slots += count * opcode.issue_weight
            instructions += count
        self.issue_slots = slots + float(len(accesses))
        self.total_instructions = instructions + len(accesses)

    @classmethod
    def prebuilt(
        cls,
        compute: dict[Opcode, int],
        accesses: tuple[MemAccess, ...],
        issue_slots: float,
        total_instructions: int,
    ) -> "Segment":
        """Hot-path constructor for pre-validated, pre-aggregated parts.

        The workload generators validate their compute mix once per kernel
        and reuse the aggregate costs for every segment; re-deriving them per
        segment would dominate program materialization.
        """
        segment = object.__new__(cls)
        segment.compute = compute
        segment.accesses = accesses
        segment.issue_slots = issue_slots
        segment.total_instructions = total_instructions
        return segment

    @property
    def compute_instructions(self) -> int:
        """Total compute instructions in the segment."""
        return self.total_instructions - len(self.accesses)

    def __repr__(self) -> str:
        return (
            f"Segment({self.compute_instructions} compute,"
            f" {len(self.accesses)} accesses)"
        )


class WarpProgram:
    """An ordered, immutable sequence of segments executed by one warp."""

    __slots__ = ("segments",)

    def __init__(self, segments: list[Segment] | tuple[Segment, ...]):
        if not segments:
            raise TraceError("a warp program needs at least one segment")
        self.segments = tuple(segments)

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)

    @property
    def total_instructions(self) -> int:
        return sum(segment.total_instructions for segment in self.segments)

    @property
    def total_accesses(self) -> int:
        return sum(len(segment.accesses) for segment in self.segments)

    @classmethod
    def from_instructions(cls, instructions: list[Instruction]) -> "WarpProgram":
        """Build a program from a literal instruction list.

        Consecutive compute instructions fold into one segment; each memory
        instruction closes the current segment (so the literal form has MLP 1,
        the behaviour of a true dependent pointer chase — exactly what the
        memory microbenchmarks need).
        """
        if not instructions:
            raise TraceError("cannot build a program from zero instructions")
        segments: list[Segment] = []
        compute: dict[Opcode, int] = {}
        for instruction in instructions:
            if instruction.opcode.is_memory:
                access = MemAccess(
                    address=instruction.address,  # type: ignore[arg-type]
                    size=instruction.size,  # type: ignore[arg-type]
                    is_store=instruction.is_store,
                    space=instruction.mem_space or MemSpace.GLOBAL,
                )
                segments.append(Segment(compute=compute, accesses=(access,)))
                compute = {}
            elif instruction.opcode.is_compute:
                compute[instruction.opcode] = compute.get(instruction.opcode, 0) + 1
            # control instructions carry no cost in the energy model and are
            # folded away, mirroring the paper's instruction vocabulary
        if compute:
            segments.append(Segment(compute=compute))
        return cls(segments)
