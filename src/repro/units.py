"""Units, physical constants, and small numeric helpers shared across the package.

Every module in :mod:`repro` agrees on the following conventions:

* **time** inside the performance simulator is measured in *core clock cycles*
  (floats are allowed — bandwidth servers produce fractional completion times).
  Wall-clock seconds are obtained with :func:`cycles_to_seconds`.
* **energy** is always expressed in *joules*; per-event costs in the tables are
  stored in nanojoules or picojoules-per-bit and converted here, in one place.
* **bandwidth** configuration values are given in GB/s (decimal, 1e9 bytes) and
  converted to bytes/cycle for the simulator with :func:`gbps_to_bytes_per_cycle`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

#: Core clock of the modeled GPM, matching the NVIDIA Tesla K40 boost clock.
DEFAULT_CLOCK_HZ: float = 745.0e6

#: Decimal giga, used for GB/s bandwidth figures (as in vendor datasheets).
GIGA: float = 1.0e9

#: Binary sizes used for cache and memory capacities.
KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

#: Warp width of the modeled architecture.
WARP_SIZE: int = 32

#: Cache line size (bytes).  A fully coalesced warp access covers one line.
CACHE_LINE_BYTES: int = 128

#: Sector size (bytes).  L2<->L1 and DRAM<->L2 transactions move sectors.
SECTOR_BYTES: int = 32

#: Sectors per cache line.
SECTORS_PER_LINE: int = CACHE_LINE_BYTES // SECTOR_BYTES

#: Page size used by the first-touch placement policy (bytes).
PAGE_BYTES: int = 64 * KIB

NANO: float = 1.0e-9
PICO: float = 1.0e-12
MILLI: float = 1.0e-3


def nj(value_nanojoules: float) -> float:
    """Convert nanojoules to joules."""
    return value_nanojoules * NANO


def pj(value_picojoules: float) -> float:
    """Convert picojoules to joules."""
    return value_picojoules * PICO


def pj_per_bit_to_joules_per_byte(pj_per_bit: float) -> float:
    """Convert an energy-per-bit figure (pJ/bit) to joules per byte."""
    return pj_per_bit * PICO * 8.0


def cycles_to_seconds(cycles: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Convert a cycle count into wall-clock seconds."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz!r}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Convert wall-clock seconds into core clock cycles."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz!r}")
    return seconds * clock_hz


def gbps_to_bytes_per_cycle(
    gigabytes_per_second: float, clock_hz: float = DEFAULT_CLOCK_HZ
) -> float:
    """Convert a GB/s bandwidth figure into bytes per core clock cycle."""
    if gigabytes_per_second < 0:
        raise ValueError(
            f"bandwidth must be non-negative, got {gigabytes_per_second!r}"
        )
    return gigabytes_per_second * GIGA / clock_hz


def bytes_per_cycle_to_gbps(
    bytes_per_cycle: float, clock_hz: float = DEFAULT_CLOCK_HZ
) -> float:
    """Convert bytes per core clock cycle back into GB/s."""
    return bytes_per_cycle * clock_hz / GIGA


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Raises :class:`ValueError` on an empty iterable or non-positive entries;
    a silent 0/NaN here would corrupt every downstream summary row.
    """
    acc = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean requires positive values, got {value!r}")
        acc += math.log(value)
        count += 1
    if count == 0:
        raise ValueError("geomean of an empty sequence is undefined")
    return math.exp(acc / count)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty iterable."""
    total = 0.0
    count = 0
    for value in values:
        total += value
        count += 1
    if count == 0:
        raise ValueError("mean of an empty sequence is undefined")
    return total / count


def percent_change(new: float, old: float) -> float:
    """Relative change of ``new`` vs ``old`` in percent (positive = increase)."""
    if old == 0:
        raise ValueError("percent_change is undefined for a zero baseline")
    return (new - old) / old * 100.0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment!r}")
    return (value // alignment) * alignment


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
