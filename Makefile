# Convenience targets for the HPCA'19 multi-module GPU reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke perf-smoke perf-baseline differential reproduce figures figures-smoke examples trace-smoke service-smoke roofline-smoke idle-smoke clean-cache loc

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# One fast benchmark per family, timing disabled — a CI-sized check that the
# bench harness and its paper-shape assertions still hold.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest --benchmark-disable -q \
	  benchmarks/bench_config_tables.py \
	  benchmarks/bench_table1b.py \
	  benchmarks/bench_simulator.py \
	  benchmarks/bench_trace_overhead.py \
	  benchmarks/bench_sweetspot.py::test_sweetspot_smoke

# Simulator-throughput regression check: quick case, normalized events/sec
# compared against the committed baseline (see docs/PERFORMANCE.md).
perf-smoke:
	PYTHONPATH=src $(PYTHON) -m repro bench --quick \
	  --out .cache/BENCH_sim.json --check BENCH_sim.json --tolerance 0.2

# Sharded-engine bit-identity harness plus its perf smoke: the differential
# suite diffs sharded vs single-process results exactly, then the bench
# asserts sharded events/sec never falls below the single-engine column
# (see docs/PERFORMANCE.md).
differential:
	PYTHONPATH=src $(PYTHON) -m pytest tests/differential -q
	PYTHONPATH=src $(PYTHON) -m repro bench --quick \
	  --out .cache/BENCH_sim.json --sharded-smoke --tolerance 0.2

# Regenerate the committed throughput baseline (full sweep; quiet machine).
perf-baseline:
	PYTHONPATH=src $(PYTHON) -m repro bench --out BENCH_sim.json

# Regenerate every paper table/figure (fills .cache/ on first run).
reproduce:
	$(PYTHON) -m repro all

# Regenerate the committed full-tier figure logs in results/fig*/ (run
# this after any change that moves figure numbers; see EXPERIMENTS.md).
figures:
	PYTHONPATH=src $(PYTHON) -m repro figures

# Figure-harness smoke: the quick tier (shrunken workloads, reduced grid)
# regenerates every figure into gitignored quick*.txt files, then the
# workload/figure property tests assert the phase-schedule invariants and
# the llmstudy governor direction (see docs/WORKLOADS.md).
figures-smoke:
	PYTHONPATH=src $(PYTHON) -m repro figures --quick
	PYTHONPATH=src $(PYTHON) -m pytest tests/workloads/test_llm.py \
	  tests/experiments/test_llm_study.py tests/roofline/test_screen_fallback.py -q

# Capture a small Chrome trace and validate it (see docs/OBSERVABILITY.md).
# PYTHONPATH=src keeps this working on boxes that skipped `make install`.
trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro trace Stream --ctas 32 --gpms 4 --out .cache/trace-smoke.json
	PYTHONPATH=src $(PYTHON) -m repro.tools.validate_trace .cache/trace-smoke.json

# Sweep-service end-to-end check: spin up a 2-worker service, assert the
# miss -> hit -> rejected-infeasible-cap loop and its exact metric counters
# (see docs/SERVICE.md).
service-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.tools.service_smoke

# Roofline fast-path check: the committed error-bound manifest must hold
# against a fresh golden re-simulation, the screened-sweep contract tests
# must pass, and the screened-vs-exhaustive bench must clear its >= 5x bar
# (see docs/MODELING.md).
roofline-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.tools.roofline_bounds
	PYTHONPATH=src $(PYTHON) -m pytest tests/roofline -q
	PYTHONPATH=src $(PYTHON) -m pytest --benchmark-disable -q \
	  benchmarks/bench_roofline.py

# Idle-subsystem wall: the differential idle-off bit-identity suite, the
# Hypothesis property wall for sleep states and governors, then a 2-point
# governor comparison that must reproduce the headline race-to-idle win on
# the bursty workload (see docs/POWER.md).
idle-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/differential/test_idle_identity.py \
	  tests/dvfs/test_idle_properties.py -q
	PYTHONPATH=src $(PYTHON) -m repro idlestudy --quick

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/calibrate_gpujoule.py
	$(PYTHON) examples/interconnect_design_space.py
	$(PYTHON) examples/datacenter_upgrade.py

clean-cache:
	rm -rf .cache results

loc:
	@echo "src:";        find src -name '*.py' | xargs wc -l | tail -1
	@echo "tests:";      find tests -name '*.py' | xargs wc -l | tail -1
	@echo "benchmarks:"; find benchmarks -name '*.py' | xargs wc -l | tail -1
	@echo "examples:";   find examples -name '*.py' | xargs wc -l | tail -1
