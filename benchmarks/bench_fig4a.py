"""Figure 4a: mixed-microbenchmark validation of the calibrated model."""

from benchmarks.conftest import publish
from repro.experiments import fig4_validation as fig4


def test_fig4a_microbenchmark_validation(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: fig4.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "fig4a_validation", result.render_4a())

    # Paper shape: refined-model errors within a single-digit band
    # (paper: +2.5% / -6%); the naive pass fails by an order of magnitude.
    assert result.fig4a.within(-8.0, 4.0)
    assert result.fig4a.mean_absolute_error < 6.0
    assert result.fig4a_naive.mean_absolute_error > 10.0
