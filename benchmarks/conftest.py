"""Shared bench plumbing.

Every benchmark regenerates one paper table/figure: it runs the experiment
(through the sweep cache — the first invocation simulates, later ones replay),
prints the same rows/series the paper reports, writes them under
``results/``, and asserts the paper's qualitative shape.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import SweepRunner

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


@pytest.fixture(scope="session")
def runner() -> SweepRunner:
    """One cached sweep runner shared by every bench in the session."""
    return SweepRunner()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, rendered: str) -> None:
    """Print a figure's rows and persist them under results/."""
    print()
    print(rendered)
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
