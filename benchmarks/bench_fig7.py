"""Figure 7: incremental speedup and component energy growth per step."""

from benchmarks.conftest import publish
from repro.experiments import fig7_incremental as fig7


def test_fig7_incremental_scaling(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: fig7.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "fig7_incremental", result.render())

    steps = {step.num_gpms: step for step in result.steps}
    # Paper shape 1: the first doubling is near-ideal (paper: 1.868x)...
    assert steps[2].incremental_speedup > 1.6
    # ...and increments decay toward the 16->32 step (paper: 1.47x).
    assert steps[32].incremental_speedup < steps[2].incremental_speedup
    assert steps[32].incremental_speedup > 0.95
    # Paper shape 2: a monolithic (NUMA-free) GPU keeps scaling at 16->32
    # (paper: 1.81x) — the gap isolates NUMA as the bottleneck.
    assert result.monolithic_16_to_32 > steps[32].incremental_speedup
    # Paper shape 3: at the 16->32 step the dominant energy-growth component
    # is the constant overhead (plus exposed idle pipelines), not compute.
    growth = steps[32].component_increase_percent
    assert growth["constant"] > growth["sm_busy"]
    assert growth["constant"] > growth["dram_to_l2"]
    # Paper quotes +15.7% total energy at 16->32; require the same regime.
    assert 0.0 < steps[32].energy_increase_percent < 45.0
