"""Sweep-service overhead benchmarks (not a paper figure).

The service promises that its scheduling machinery is cheap relative to
simulation: a cache-hit lookup is an in-memory dict probe plus manifest
assembly, and a submit->result round trip adds queue/admission overhead on
top of the simulation itself.  These benchmarks pin both::

    pytest benchmarks/bench_service.py --benchmark-only

* ``test_cache_hit_lookup`` — steady-state latency of submitting a recipe
  whose result is already in the store (no engine work).
* ``test_submit_uncached_overhead`` — full submit->simulate->result round
  trip through the service thread on a tiny workload, i.e. the ceiling on
  per-job service overhead.
* ``test_http_cache_hit`` — the same hit served over the local HTTP front,
  pricing the wire protocol.
"""

from __future__ import annotations

import pytest

from repro.service.client import ServiceClient
from repro.service.job import request_from_recipe
from repro.service.server import ServiceConfig, ServiceThread

RECIPE = {"workload": "Stream", "ctas": 8, "gpms": 1}


@pytest.fixture(scope="module")
def service_thread(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("service-bench-cache")
    with ServiceThread(ServiceConfig(workers=2, cache_dir=cache_dir)) as thread:
        yield thread


def test_cache_hit_lookup(benchmark, service_thread):
    request = request_from_recipe(RECIPE)
    warm = service_thread.submit(request)  # populate the store
    assert warm.cache in ("miss", "hit")

    outcome = benchmark(lambda: service_thread.submit(request))
    assert outcome.cache == "hit"
    assert outcome.record == warm.record


def test_submit_uncached_overhead(benchmark, service_thread):
    # A fresh key every round: vary CTAs so no submission ever hits.
    counter = iter(range(10_000))

    def submit_fresh():
        ctas = 4 + next(counter)
        return service_thread.submit(
            request_from_recipe({**RECIPE, "ctas": ctas})
        )

    outcome = benchmark(submit_fresh)
    assert outcome.cache == "miss"


def test_http_cache_hit(benchmark, service_thread):
    client = ServiceClient(
        service_thread.host, service_thread.port, client_id="bench"
    )
    warm = client.submit_recipe(RECIPE)
    assert warm["cache"] in ("miss", "hit")

    outcome = benchmark(lambda: client.submit_recipe(RECIPE))
    assert outcome["cache"] == "hit"
    assert outcome["record"] == warm["record"]
