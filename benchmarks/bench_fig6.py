"""Figure 6: EDPSE vs GPM count on the baseline on-package (2x-BW) design."""

from benchmarks.conftest import publish
from repro.experiments import fig6_edpse_onpackage as fig6
from repro.isa.kernel import WorkloadCategory


def test_fig6_edpse_on_package(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: fig6.run(runner), rounds=1, iterations=1
    )
    publish(
        results_dir,
        "fig6_edpse_onpackage",
        result.render() + "\n\n" + result.render_per_workload(),
    )

    by_count = {row.num_gpms: row.values for row in result.rows}
    # Paper shape 1: compute-intensive workloads exceed 100% at small counts.
    assert by_count[2]["compute"] > 100.0
    # Paper shape 2: memory-intensive always below compute-intensive.
    for values in by_count.values():
        assert values["memory"] < values["compute"]
    # Paper shape 3: the all-workload mean declines monotonically...
    means = [by_count[n]["all"] for n in (2, 4, 8, 16, 32)]
    assert means == sorted(means, reverse=True)
    # ...from near the paper's 94% peak to below the 50% bar only past 16 GPM.
    assert means[0] > 80.0
    assert by_count[16]["all"] > fig6.PAPER_THRESHOLD
    assert by_count[32]["all"] < fig6.PAPER_THRESHOLD
    # Paper's terminal value is 36%; we require the same collapse regime.
    assert 20.0 < by_count[32]["all"] < 55.0
