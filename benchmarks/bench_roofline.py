"""Roofline fast path: screened-vs-exhaustive wall clock and agreement.

The tentpole claim in numbers: on a dense V/f x GPM grid, screening with
the closed-form predictor and simulating only the top-k+guard points per
curve cuts sweep wall-clock by >= 5x while reporting the same best
operating point.  Both arms run with ``use_cache=False`` so the comparison
measures engine time, not cache replays.

The grid is a 20-point ladder interpolated over the K40 curve span — the
regime screening exists for: dense enough that exhaustive simulation is
expensive and neighbouring points are nearly tied, so only a calibrated
analytic model can afford to rank all of them.
"""

import time

from repro.dvfs.operating_point import K40_VF_CURVE
from repro.dvfs.sweetspot import SweetSpotSearch
from repro.experiments.runner import SweepRunner, SweepSettings
from repro.gpu.config import table_iii_config
from repro.workloads.suite import shrunken_spec

#: 20 evenly spaced frequencies across the K40 span, voltages interpolated
#: off the table.  Table frequencies keep their table identity.
_LO = K40_VF_CURVE.min_frequency_hz
_HI = K40_VF_CURVE.max_frequency_hz
_N_POINTS = 20
GRID_POINTS = tuple(
    K40_VF_CURVE.point_at(
        _LO + i * (_HI - _LO) / (_N_POINTS - 1),
        name=f"dense-{round((_LO + i * (_HI - _LO) / (_N_POINTS - 1)) / 1e6)}",
    )
    for i in range(_N_POINTS)
)
GPM_COUNTS = (1, 2, 4)
WORKLOADS = ("LuleshUns", "Nekbone-12")
TOP_K = 1
GUARD = 1


def _runner() -> SweepRunner:
    # No cache on either arm: the point is simulated wall-clock, and the two
    # arms share cache keys by design so a shared cache would zero the
    # second arm's cost.
    return SweepRunner(SweepSettings(use_cache=False, processes=1))


def test_roofline_screen_speedup(benchmark, results_dir):
    specs = [
        shrunken_spec(name, total_ctas=48, kernels=1) for name in WORKLOADS
    ]
    configs = [table_iii_config(n) for n in GPM_COUNTS]

    start = time.perf_counter()
    exhaustive = SweetSpotSearch(_runner(), points=GRID_POINTS).search(
        specs, configs
    )
    exhaustive_s = time.perf_counter() - start

    def screened_run():
        return SweetSpotSearch(
            _runner(),
            points=GRID_POINTS,
            screen="roofline",
            top_k=TOP_K,
            guard=GUARD,
        ).search(specs, configs)

    # Timed by hand (not via benchmark.stats) so the smoke run with
    # --benchmark-disable still measures and asserts the speedup.
    start = time.perf_counter()
    screened = benchmark.pedantic(screened_run, rounds=1, iterations=1)
    screened_s = time.perf_counter() - start

    curves = len(specs) * len(configs)
    simulated = sum(len(spot.samples) for spot in screened)
    scored = sum(spot.disposition.scored_points for spot in screened)
    speedup = exhaustive_s / screened_s
    lines = [
        f"grid: {len(GRID_POINTS)} V/f points x {len(GPM_COUNTS)} GPM counts"
        f" x {len(specs)} workloads ({curves} curves)",
        f"exhaustive: {len(GRID_POINTS) * curves} simulations,"
        f" {exhaustive_s:.2f}s",
        f"screened:   {simulated} simulations ({scored} scored),"
        f" {screened_s:.2f}s",
        f"speedup:    {speedup:.1f}x",
    ]
    print()
    print("\n".join(lines))
    (results_dir / "roofline_screen.txt").write_text("\n".join(lines) + "\n")

    # Same winner on every curve — the screen is a filter, not a substitute.
    exact_best = {
        (spot.config_label, spot.workload): spot.point.label()
        for spot in exhaustive
    }
    for spot in screened:
        assert (
            spot.point.label() == exact_best[(spot.config_label, spot.workload)]
        )
        assert spot.disposition.simulated_points == TOP_K + GUARD

    # The acceptance bar: screening pays for itself >= 5x on a dense grid.
    assert speedup >= 5.0, f"screened speedup only {speedup:.1f}x"
