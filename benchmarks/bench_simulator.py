"""Raw simulator throughput benchmarks (not a paper figure).

These time the substrate itself — useful for tracking performance regressions
in the discrete-event core, since every paper figure costs dozens of
simulations.
"""

import dataclasses

from repro.gpu.config import BandwidthSetting, table_iii_config
from repro.gpu.simulator import simulate
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec


def _small(abbr: str, ctas: int = 256):
    spec = get_spec(abbr)
    factor = max(1, spec.total_ctas // ctas)
    return dataclasses.replace(
        spec,
        total_ctas=ctas,
        kernels=1,
        footprint_bytes=max(spec.footprint_bytes // factor, ctas * 128),
        shared_footprint_bytes=max(
            spec.shared_footprint_bytes // factor, 128 * 128
        ),
    )


def test_simulator_throughput_single_gpm(benchmark):
    workload = build_workload(_small("Stream"))
    config = table_iii_config(1)
    result = benchmark(lambda: simulate(workload, config))
    assert result.counters.total_instructions > 0


def test_simulator_throughput_ring_8gpm(benchmark):
    workload = build_workload(_small("Lulesh-150"))
    config = table_iii_config(8, BandwidthSetting.BW_2X)
    result = benchmark(lambda: simulate(workload, config))
    assert result.counters.inter_gpm_bytes > 0


def test_trace_generation_throughput(benchmark):
    from repro.workloads.generator import WarpProgramBuilder

    spec = get_spec("Lulesh-190")
    builder = WarpProgramBuilder(spec, kernel_index=0)

    def build_many():
        return [builder(cta, warp) for cta in range(64) for warp in range(4)]

    programs = benchmark(build_many)
    assert len(programs) == 256
