"""Sweet-spot study: EDPSE vs. core frequency and per-workload V/f optima."""

from benchmarks.conftest import publish
from repro.dvfs.operating_point import K40_VF_CURVE
from repro.dvfs.sweetspot import SweetSpotSearch
from repro.experiments import sweetspot_study
from repro.experiments.runner import SweepRunner, SweepSettings
from repro.gpu.config import table_iii_config
from repro.isa.kernel import WorkloadCategory
from repro.workloads.suite import WORKLOAD_SPECS, shrunken_spec


def test_sweetspot_smoke(benchmark, tmp_path):
    """Fast smoke: one shrunken memory-bound workload over four points."""
    runner = SweepRunner(SweepSettings(cache_dir=tmp_path, processes=1))
    points = tuple(
        K40_VF_CURVE.point_at(mhz * 1e6) for mhz in (324, 562, 745, 875)
    )
    search = SweetSpotSearch(runner, metric="edp", points=points)
    spec = shrunken_spec("Stream", total_ctas=24, kernels=1)
    spot = benchmark.pedantic(
        lambda: search.search_one(spec, table_iii_config(2)),
        rounds=1,
        iterations=1,
    )
    # The acceptance shape in miniature: a DRAM-bound workload's EDP optimum
    # sits strictly inside the V/f ladder.
    assert spot.below_max_clock


def test_sweetspot_study(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: sweetspot_study.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "sweetspot_study", result.render())

    counts = sweetspot_study.STUDY_GPM_COUNTS
    anchor_hz = sweetspot_study.ANCHOR_FREQUENCY_HZ
    # The baseline is itself: 1-GPM at the anchor is 100% efficient.
    assert abs(result.edpse[anchor_hz][1] - 100.0) < 1e-6
    # Acceptance: at least one memory-bound Table II workload has its EDP
    # optimum strictly below the max clock on every GPM count.
    memory_bound = [
        abbr for abbr in result.spots[1]
        if WORKLOAD_SPECS[abbr].category is WorkloadCategory.MEMORY
    ]
    assert any(
        all(
            result.spot(abbr, n).below_max_clock
            for n in counts
        )
        for abbr in memory_bound
    )
    # Memory-bound workloads settle at or below compute-bound clocks on the
    # biggest configuration (frequency buys them no delay, only V^2 energy).
    compute_bound = [
        abbr for abbr in result.spots[1]
        if WORKLOAD_SPECS[abbr].category is WorkloadCategory.COMPUTE
    ]
    mean_hz = lambda group, n: sum(
        result.optimal_frequency_hz(abbr, n) for abbr in group
    ) / len(group)
    assert mean_hz(memory_bound, counts[-1]) <= mean_hz(
        compute_bound, counts[-1]
    )
