"""Observability overhead benchmarks (not a paper figure).

The observability layer promises near-zero cost when off: every emission
site guards on ``tracer.enabled``, so an untraced run pays one attribute
load and branch per site execution.  These benchmarks pin that promise —
compare ``test_simulate_untraced`` (implicit NullTracer) against
``test_simulate_null_tracer`` (explicit NullTracer, identical path) and
``test_simulate_chrome_tracer`` (full event recording) with::

    pytest benchmarks/bench_trace_overhead.py --benchmark-only \
        --benchmark-group-by=param
"""

from repro.gpu.config import table_iii_config
from repro.gpu.simulator import simulate
from repro.trace import ChromeTracer, MetricsRegistry, NullTracer
from repro.workloads.generator import build_workload
from repro.workloads.suite import shrunken_spec


def _pair():
    return build_workload(shrunken_spec("Lulesh-150", total_ctas=256)), (
        table_iii_config(4)
    )


def test_simulate_untraced(benchmark):
    workload, config = _pair()
    result = benchmark(lambda: simulate(workload, config))
    assert result.counters.total_instructions > 0


def test_simulate_null_tracer(benchmark):
    workload, config = _pair()
    result = benchmark(
        lambda: simulate(workload, config, tracer=NullTracer())
    )
    assert result.counters.total_instructions > 0


def test_simulate_chrome_tracer(benchmark):
    workload, config = _pair()

    def run():
        return simulate(
            workload, config, tracer=ChromeTracer(), metrics=MetricsRegistry()
        )

    result = benchmark(run)
    assert result.counters.total_instructions > 0
