"""Discrete-event core microbenchmarks (not a paper figure).

These isolate the engine hot paths the full-simulator numbers blend
together: timer-heap dispatch of same-timestamp batches, the zero-delay
now-queue, and the ``AllOf`` counting barrier.  ``repro bench`` (see
``repro.tools.bench_engine`` and docs/PERFORMANCE.md) measures the same
machinery end to end on real workloads; run these when a regression there
needs localizing.
"""

from repro.sim.engine import AllOf, Engine, Event, Process, Timeout


def _timer_storm(num_processes: int, ticks: int) -> Engine:
    """Many processes waiting on coincident timers (heap batch dispatch)."""
    engine = Engine()

    def body(_engine):
        for _ in range(ticks):
            yield Timeout(1.0)

    for _ in range(num_processes):
        Process(engine, body(engine))
    engine.run()
    return engine


def _zero_delay_chain(length: int) -> Engine:
    """A chain of zero-delay waits (pure now-queue traffic, heap untouched)."""
    engine = Engine()

    def body(_engine):
        for _ in range(length):
            yield Timeout(0.0)

    Process(engine, body(engine))
    engine.run()
    return engine


def _barrier_storm(num_waiters: int, fanin: int) -> Engine:
    """Processes blocked on AllOf barriers released by one producer."""
    engine = Engine()
    events = [Event(engine) for _ in range(fanin)]

    def waiter(_engine):
        yield AllOf(events)

    def producer(_engine):
        for event in events:
            yield Timeout(1.0)
            event.succeed()

    for _ in range(num_waiters):
        Process(engine, waiter(engine))
    Process(engine, producer(engine))
    engine.run()
    return engine


def test_engine_timer_batch_dispatch(benchmark):
    engine = benchmark(lambda: _timer_storm(num_processes=200, ticks=50))
    assert engine.events_processed >= 200 * 50


def test_engine_now_queue_chain(benchmark):
    engine = benchmark(lambda: _zero_delay_chain(length=20_000))
    # Zero-delay traffic must never touch the timer heap.
    assert engine.now == 0.0
    assert engine.events_processed >= 20_000


def test_engine_allof_barrier(benchmark):
    engine = benchmark(lambda: _barrier_storm(num_waiters=100, fanin=64))
    assert engine.now == 64.0


def test_quick_case_events_per_sec(benchmark):
    """End-to-end throughput of the bench harness's quick case."""
    from repro.tools.bench_engine import QUICK_CASE, run_case

    measured = benchmark.pedantic(
        lambda: run_case(QUICK_CASE, repeats=1), rounds=1, iterations=1
    )
    assert measured["events"] > 0
    assert measured["events_per_sec"] > 0
