"""Figure 2: the energy cost of on-board strong scaling (the motivator)."""

from benchmarks.conftest import publish
from repro.experiments import fig2_energy_scaling as fig2


def test_fig2_energy_of_strong_scaling(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: fig2.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "fig2_energy_scaling", result.render())

    energies = {row.num_gpms: row.values["energy"] for row in result.rows}
    # Paper shape: energy rises monotonically with capability...
    series = [energies[n] for n in (2, 4, 8, 16, 32)]
    assert series == sorted(series)
    # ...starting near 1x and reaching the ~2x regime at 32x capability
    # (our ring model congests somewhat harder than the paper's: 2.85x).
    assert energies[2] < 1.4
    assert 1.5 < energies[32] < 3.2
