"""Figure 8: EDPSE as a function of inter-GPM bandwidth settings."""

from benchmarks.conftest import publish
from repro.experiments import fig8_bandwidth as fig8
from repro.gpu.config import BandwidthSetting


def test_fig8_bandwidth_settings(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: fig8.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "fig8_bandwidth", result.render())

    # Paper shape 1: EDPSE is monotone in bandwidth at every GPM count
    # (within 1%: at trivial counts the link is not the bottleneck and the
    # settings tie).
    for n in (2, 4, 8, 16, 32):
        e1 = result.edpse(BandwidthSetting.BW_1X, n)
        e2 = result.edpse(BandwidthSetting.BW_2X, n)
        e4 = result.edpse(BandwidthSetting.BW_4X, n)
        assert e1 <= e2 * 1.01 and e2 <= e4 * 1.01, f"not monotone at {n}-GPM"
    # Paper shape 2: at 32 GPMs, 4x the bandwidth buys ~3x the EDPSE.
    gain = result.edpse(BandwidthSetting.BW_4X, 32) / result.edpse(
        BandwidthSetting.BW_1X, 32
    )
    assert gain > 1.8
    # Paper shape 3: bandwidth matters more at high GPM counts than low.
    gain_at_2 = result.edpse(BandwidthSetting.BW_4X, 2) / result.edpse(
        BandwidthSetting.BW_1X, 2
    )
    assert gain > gain_at_2
