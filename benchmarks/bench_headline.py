"""Section VII headline: the path from 2x-energy scaling to efficient scaling."""

from benchmarks.conftest import publish
from repro.experiments import headline


def test_headline_energy_reduction(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: headline.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "headline", result.render())

    # Paper: the 32-GPM on-board baseline consumes ~2x the 1-GPM energy
    # (our ring congests harder: 2.85x — see EXPERIMENTS.md).
    assert 1.5 < result.energy_onboard_1x < 3.2
    # Paper: 4x bandwidth alone cuts 32-GPM energy by 27.4% on average.
    assert result.bandwidth_only_saving_percent > 12.0
    # Paper: plus on-package amortization, the total reduction reaches ~45%.
    assert result.total_saving_percent > result.bandwidth_only_saving_percent
    assert result.total_saving_percent > 30.0
    # Paper: the fixed design still strong-scales (~18x at 32 GPMs).
    assert result.speedup_onpackage_4x > 10.0
    # The end state: energy growth tamed from ~2x toward ~1.1x.
    assert result.energy_onpackage_4x < 1.6
