"""Figure 4b: per-application validation of GPUJoule on the K40 platform."""

from benchmarks.conftest import publish
from repro.experiments import fig4_validation as fig4


def test_fig4b_application_validation(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: fig4.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "fig4b_validation", result.render_4b())

    report = result.fig4b
    assert len(report.cases) == 18
    # Paper: 9.4% mean absolute error across the suite.
    assert report.mean_absolute_error < 18.0
    # Paper: four outliers driven by two mechanisms — low memory-subsystem
    # utilization (RSBench, CoMD) and sensor resolution (BFS, MiniAMR).
    outliers = report.outliers(threshold_percent=25.0)
    for name in fig4.PAPER_OUTLIERS:
        assert name in outliers, f"{name} should be an outlier"
    # The sensor-resolution outliers read LOW power -> the model appears to
    # OVER-estimate; the low-utilization outliers are UNDER-estimates.
    assert report.cases["BFS"] > 0 and report.cases["MiniAMR"] > 0
    assert report.cases["RSBench"] < 0 and report.cases["CoMD"] < 0
