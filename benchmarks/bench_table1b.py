"""Table Ib: EPI/EPT values recovered by the calibration campaign."""

from benchmarks.conftest import publish
from repro.core.epi_tables import EPI_TABLE_NJ, TransactionKind
from repro.experiments import table1b_epi_ept as table1b
from repro.isa.opcodes import TABLE_1B_COMPUTE_OPCODES


def test_table1b_calibration(benchmark, results_dir):
    result = benchmark.pedantic(table1b.run, rounds=1, iterations=1)
    publish(results_dir, "table1b_epi_ept", result.render())

    model, silicon = result.model, result.silicon
    # Calibration must recover the silicon's ground truth within 5%...
    for opcode in TABLE_1B_COMPUTE_OPCODES:
        truth = silicon.true_epi_nj(opcode)
        assert abs(model.epi_nj[opcode] - truth) / truth < 0.05
    for kind in TransactionKind:
        truth = silicon.true_ept_nj(kind)
        assert abs(model.ept_nj[kind] - truth) / truth < 0.05
    # ...and the truth itself sits near the paper's published values, so the
    # recovered table tracks Table Ib within the modeled silicon spread.
    for opcode in TABLE_1B_COMPUTE_OPCODES:
        paper = EPI_TABLE_NJ[opcode]
        assert abs(model.epi_nj[opcode] - paper) / paper < 0.30
