"""Extension/ablation benches: the paper's Section V-E directions, quantified.

These go beyond the paper's evaluation: link compression, locality-mechanism
knockouts, power gating, and the ED^iPSE metric family.
"""

from benchmarks.conftest import publish
from repro.experiments import (
    compression_study,
    edip_study,
    locality_ablation,
    powergate_study,
)


def test_link_compression_extension(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: compression_study.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "compression_study", result.render())

    off = compression_study_point(result, 1.0)
    two_x = compression_study_point(result, 2.0)
    # Compression behaves as a bandwidth upgrade on the starved ring:
    # faster, cheaper, higher EDPSE — despite the codec energy.
    assert two_x[0] >= off[0] * 0.98        # speedup not hurt
    assert two_x[1] <= off[1] * 1.02        # energy not hurt
    assert two_x[2] > off[2]                # EDPSE improves


def compression_study_point(result, ratio):
    return result.by_ratio[ratio]


def test_locality_mechanism_ablation(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: locality_ablation.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "locality_ablation", result.render())

    baseline = result.by_arm["first-touch + contiguous"]
    striped = result.by_arm["striped placement"]
    scattered = result.by_arm["round-robin CTAs"]
    # Striping destroys ALL locality: remote traffic approaches (N-1)/N and
    # both time and energy inflate substantially.
    assert striped[0] > 3 * baseline[0]
    assert striped[0] > 0.5
    assert striped[1] > 1.1 and striped[2] > 1.05
    # Round-robin CTAs keep private arrays local (first touch still works)
    # but turn every halo access remote — a milder, still-visible knockout.
    assert scattered[0] > 1.5 * baseline[0]
    assert scattered[1] > 1.0 and scattered[2] > 1.0


def test_power_gating_extension(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: powergate_study.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "powergate_study", result.render())

    none_energy, none_edpse = result.by_setting[(0.0, False)]
    stall_energy, stall_edpse = result.by_setting[(0.9, False)]
    sleep_energy, sleep_edpse = result.by_setting[(0.9, True)]
    # Gating monotonically recovers energy and EDPSE...
    assert stall_energy < none_energy and stall_edpse > none_edpse
    assert sleep_energy < stall_energy and sleep_edpse > stall_edpse
    # ...but even aggressive gating cannot restore ideal efficiency: the
    # starved design still wastes the *time* (paper: fix bandwidth first).
    assert sleep_edpse < 75.0


def test_edipse_metric_weighting(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: edip_study.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "edip_study", result.render())

    for n in (2, 8, 32):
        pe = result.metric(n, 0)
        edpse = result.metric(n, 1)
        ed2pse = result.metric(n, 2)
        # Heavier delay weighting can only punish sub-linear scaling more.
        assert ed2pse <= edpse * 1.01 or pe > 100.0
    # The qualitative story is i-invariant: every metric declines with N.
    for i in (0, 1, 2):
        series = [result.metric(n, i) for n in (2, 4, 8, 16, 32)]
        assert series == sorted(series, reverse=True), f"i={i}"


def test_onpackage_topology_comparison(benchmark, runner, results_dir):
    from repro.experiments import topology_study

    result = benchmark.pedantic(
        lambda: topology_study.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "topology_study", result.render())

    # At 8 GPMs the planar topologies are close; at 32 the torus's halved
    # hop count recovers much of the switch's advantage over the ring.
    ring_32 = result.edpse("Ring", 32)
    torus_32 = result.edpse("2D torus", 32)
    switch_32 = result.edpse("Switch", 32)
    assert torus_32 > ring_32
    assert switch_32 >= torus_32 * 0.9   # torus approaches the switch
    assert torus_32 - ring_32 > 0.3 * (switch_32 - ring_32)
