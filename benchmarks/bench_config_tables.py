"""Tables Ia/II/III/IV: the experimental-setup tables, derived live."""

from benchmarks.conftest import publish
from repro.experiments import config_tables
from repro.gpu.config import BandwidthSetting, table_iii_config, table_iv_interconnect
from repro.workloads.suite import SCALING_SUBSET, WORKLOAD_SPECS


def test_config_tables(benchmark, results_dir):
    result = benchmark.pedantic(config_tables.run, rounds=1, iterations=1)
    publish(results_dir, "config_tables", result.render())

    # Table II: 18 applications, 14 in the scaling subset.
    assert len(WORKLOAD_SPECS) == 18
    assert len(SCALING_SUBSET) == 14

    # Table III: resources scale linearly with module count.
    for n in (1, 2, 4, 8, 16, 32):
        config = table_iii_config(n)
        assert config.total_sms == 16 * n
        assert config.total_dram_bandwidth_gbps == 256.0 * n

    # Table IV: the three I/O settings hold their DRAM ratios.
    assert table_iv_interconnect(
        BandwidthSetting.BW_1X
    ).per_gpm_bandwidth_gbps == 128.0
    assert table_iv_interconnect(
        BandwidthSetting.BW_2X
    ).per_gpm_bandwidth_gbps == 256.0
    assert table_iv_interconnect(
        BandwidthSetting.BW_4X
    ).per_gpm_bandwidth_gbps == 512.0
