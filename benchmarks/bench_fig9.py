"""Figure 9: on-board ring vs high-radix switch EDPSE."""

from benchmarks.conftest import publish
from repro.experiments import fig9_switch as fig9


def test_fig9_switch_vs_ring(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: fig9.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "fig9_switch", result.render())

    ring_1x = result.studies["Ring (1x-BW)"]
    switch_1x = result.studies["Switch (1x-BW)"]
    switch_2x = result.studies["Switch (2x-BW)"]
    # Paper shape 1: with identical link bandwidth, the switch beats the
    # ring at scale (paper: ~2x at 32 GPMs) by removing hop amplification.
    assert switch_1x.mean_edpse(32) > 1.4 * ring_1x.mean_edpse(32)
    # Paper shape 2: the advantage grows with GPM count.
    advantage = [
        switch_1x.mean_edpse(n) / ring_1x.mean_edpse(n) for n in (4, 16, 32)
    ]
    assert advantage[-1] > advantage[0]
    # Paper shape 3: switch at 2x-BW dominates both 1x series.
    assert switch_2x.mean_edpse(32) >= switch_1x.mean_edpse(32)
