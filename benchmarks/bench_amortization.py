"""Section V-C point study: constant-energy amortization on-package."""

from benchmarks.conftest import publish
from repro.experiments import amortization_study as study


def test_constant_energy_amortization(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: study.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "amortization_study", result.render())

    energy_0, edpse_0 = result.by_rate[0.0]
    energy_25, edpse_25 = result.by_rate[0.25]
    energy_50, edpse_50 = result.by_rate[0.5]
    # Paper shape: monotone — more sharing, less energy, more EDPSE.
    assert energy_50 < energy_25 < energy_0
    assert edpse_50 > edpse_25 > edpse_0
    # Paper magnitudes: 50% amortization saves 22.3% energy; 25% saves 10.4%.
    saving_50 = (1.0 - energy_50 / energy_0) * 100.0
    saving_25 = (1.0 - energy_25 / energy_0) * 100.0
    assert 15.0 < saving_50 < 35.0
    assert 7.0 < saving_25 < 20.0
    # ~half the amortization gives ~half the saving.
    assert abs(saving_25 - saving_50 / 2) < 4.0
