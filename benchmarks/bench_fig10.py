"""Figure 10: decomposed speedup and energy across the full design sweep."""

from benchmarks.conftest import publish
from repro.experiments import fig10_speedup_energy as fig10
from repro.gpu.config import BandwidthSetting


def test_fig10_speedup_energy_decomposition(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: fig10.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "fig10_speedup_energy", result.render())

    bw1, bw2, bw4 = (
        BandwidthSetting.BW_1X,
        BandwidthSetting.BW_2X,
        BandwidthSetting.BW_4X,
    )
    # Paper shape 1: at 8+ GPMs, speedup is governed by inter-GPM bandwidth.
    for n in (8, 16, 32):
        assert result.speedup(bw1, n) < result.speedup(bw2, n) < result.speedup(bw4, n)
    # Paper shape 2 (the striking comparison): a 16-GPM/2x-BW design beats a
    # 32-GPM/1x-BW design while consuming roughly half the energy.
    assert result.speedup(bw2, 16) > result.speedup(bw1, 32)
    assert result.energy(bw2, 16) < 0.75 * result.energy(bw1, 32)
    # Paper shape 3: 1x on-board -> 4x on-package at 32 GPMs cuts energy
    # substantially (paper: ~45% including amortization).
    reduction = 1.0 - result.energy(bw4, 32) / result.energy(bw1, 32)
    assert reduction > 0.25
