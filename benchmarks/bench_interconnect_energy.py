"""Section V-C point study: EDPSE sensitivity to interconnect energy/bit."""

from benchmarks.conftest import publish
from repro.experiments import interconnect_energy_study as study


def test_interconnect_energy_sensitivity(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: study.run(runner), rounds=1, iterations=1
    )
    publish(results_dir, "interconnect_energy_study", result.render())

    base = result.edpse_by_multiplier[1.0]
    # Paper shape 1: quadrupling the link energy/bit barely moves EDPSE
    # (paper <1%; our dimensionally-scaled traces carry proportionally more
    # remote traffic, so we allow a few percent — still an order of
    # magnitude below the bandwidth lever tested next).
    worst = result.edpse_by_multiplier[4.0]
    energy_axis_impact = abs(worst - base) / base * 100.0
    assert energy_axis_impact < 6.0
    # EDPSE can only go down as the link gets more expensive.
    assert result.edpse_by_multiplier[2.0] <= base
    assert worst <= result.edpse_by_multiplier[2.0]
    # Paper shape 2: spending 4x energy/bit to DOUBLE bandwidth *raises*
    # EDPSE (paper: +8.8%) — the counter-intuitive architectural trade.
    tradeoff_gain = (result.edpse_tradeoff - base) / base * 100.0
    assert tradeoff_gain > 4.0
    # The whole point: the bandwidth lever dwarfs the energy-axis cost.
    assert tradeoff_gain > energy_axis_impact
