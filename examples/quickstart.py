#!/usr/bin/env python3
"""Quickstart: simulate one workload, price it with GPUJoule, compute EDPSE.

This walks the three layers of the library:

1. build a Table II workload as a synthetic trace,
2. simulate it on 1-GPM and 4-GPM configurations,
3. price both runs with the GPUJoule energy model and compare them with the
   paper's EDP Scaling Efficiency metric.

Run:  python examples/quickstart.py
"""

from repro import BandwidthSetting, simulate, table_iii_config
from repro.core import EnergyModel, EnergyParams, ScalingPoint
from repro.workloads import build_workload, get_spec


def main() -> None:
    # 1. A workload from the Table II suite. `get_spec` exposes the knobs
    #    (instruction mix, footprint, sharing); `build_workload` turns them
    #    into kernels of lazily generated warp programs.
    spec = get_spec("Hotspot")
    workload = build_workload(spec)
    print(f"workload: {spec.name} ({spec.abbr}), category {spec.category.value}")
    print(f"  {spec.total_ctas} CTAs x {spec.warps_per_cta} warps,"
          f" {spec.kernels} kernels")
    print(f"  footprint {spec.footprint_bytes >> 20} MiB,"
          f" memory intensity {spec.memory_intensity:.2f} accesses/instr")

    # 2. Simulate on the 1-GPM baseline and a 4-GPM on-package design.
    points = {}
    for num_gpms in (1, 4):
        config = table_iii_config(num_gpms, BandwidthSetting.BW_2X)
        result = simulate(workload, config)
        params = EnergyParams.for_config(config)
        breakdown = EnergyModel(params).evaluate(result.counters, result.seconds)
        points[num_gpms] = ScalingPoint(
            n=num_gpms, delay_s=result.seconds, energy_j=breakdown.total
        )
        print(f"\n{config.label()}:")
        print(f"  {result.cycles:,.0f} cycles = {result.seconds * 1e6:.1f} us")
        print(f"  SM utilization {result.sm_utilization:.1%},"
              f" L2 hit rate {result.counters.l2_hit_rate:.1%},"
              f" remote traffic {result.counters.remote_fraction:.1%}")
        print(f"  energy {breakdown.total * 1e3:.2f} mJ"
              f" (constant {breakdown.fraction('constant'):.0%},"
              f" compute {breakdown.fraction('sm_busy'):.0%},"
              f" DRAM {breakdown.fraction('dram_to_l2'):.0%})")

    # 3. The paper's metric: did quadrupling the hardware pay off?
    base, scaled = points[1], points[4]
    print(f"\nscaling 1-GPM -> 4-GPM:")
    print(f"  speedup          {scaled.speedup_over(base):5.2f}x")
    print(f"  energy ratio     {scaled.energy_ratio_over(base):5.2f}x")
    print(f"  EDPSE            {scaled.edpse_over(base):5.1f}%"
          f"  (100% = ideal linear scaling)")
    print(f"  parallel eff.    {scaled.parallel_efficiency_over(base):5.1f}%")


if __name__ == "__main__":
    main()
