#!/usr/bin/env python3
"""Calibrate a GPUJoule model from scratch against (synthetic) silicon.

Reproduces the Figure 3 methodology end to end:

1. run single-instruction microbenchmarks for every Table Ib opcode and read
   the power sensor -> EPIs (Eq. 5);
2. run a low-occupancy loop to expose and calibrate the stall-energy term;
3. run the pointer-chase ladder to calibrate per-level EPTs, subtracting
   the already-known backgrounds;
4. validate on the five mixed microbenchmarks of Figure 4a — and show what
   happens when the refinement loop is skipped.

Run:  python examples/calibrate_gpujoule.py
"""

from repro.core.epi_tables import EPI_TABLE_NJ, EPT_TABLE, TransactionKind
from repro.core.refinement import CalibrationCampaign
from repro.isa.opcodes import TABLE_1B_COMPUTE_OPCODES
from repro.microbench.mixed import fig4a_suite
from repro.power.meter import PowerMeter
from repro.power.silicon import SiliconGpu


def main() -> None:
    # A seeded "chip": its true energies deviate from the nominal Table Ib
    # values the way a real part deviates from a datasheet.
    silicon = SiliconGpu(seed=40)
    campaign = CalibrationCampaign(PowerMeter(silicon))

    print("calibrating EPIs, stall energy, and EPTs (Figure 3 flow)...\n")
    model = campaign.calibrate(refine=True)

    print(f"{'opcode':<22} {'paper':>7} {'calibrated':>11} {'truth':>7}")
    print("-" * 50)
    for opcode in TABLE_1B_COMPUTE_OPCODES[:8]:
        print(f"{opcode.name:<22} {EPI_TABLE_NJ[opcode]:>7.2f}"
              f" {model.epi_nj[opcode]:>11.3f}"
              f" {silicon.true_epi_nj(opcode):>7.3f}")
    print("  ... (all 19 Table Ib opcodes are calibrated)")
    print()
    for kind in TransactionKind:
        paper_nj = EPT_TABLE[kind][0]
        print(f"{kind.value:<22} {paper_nj:>7.2f}"
              f" {model.ept_nj[kind]:>11.3f}"
              f" {silicon.true_ept_nj(kind):>7.3f}")
    print(f"{'EPStall (nJ/cyc)':<22} {'-':>7} {model.ep_stall_nj:>11.3f}"
          f" {silicon.effects.true_stall_nj:>7.3f}")

    print("\nvalidating on the Figure 4a mixed microbenchmarks...")
    refined_report = campaign.validate(model, fig4a_suite())
    naive = campaign.calibrate(refine=False)
    naive_report = campaign.validate(naive, fig4a_suite())
    print(f"\n{'benchmark':<28} {'refined':>9} {'naive':>9}")
    print("-" * 48)
    for name in refined_report.cases:
        print(f"{name:<28} {refined_report.cases[name]:>8.2f}%"
              f" {naive_report.cases[name]:>8.2f}%")
    print(f"\nmean |error|: refined {refined_report.mean_absolute_error:.2f}%"
          f" vs naive {naive_report.mean_absolute_error:.2f}%")
    print("The naive first pass mis-attributes stall energy to the EPTs —"
          " the reason the paper's methodology iterates (Figure 3, box 3).")


if __name__ == "__main__":
    main()
