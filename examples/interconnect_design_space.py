#!/usr/bin/env python3
"""Design-space walk: how interconnect choices shape a 16-GPM GPU.

The paper's central architectural argument is that inter-GPM *bandwidth* and
*topology* dominate multi-module energy efficiency while the link's intrinsic
energy per bit barely matters.  This example reproduces that argument on a
single workload by sweeping:

* the Table IV bandwidth settings (1x / 2x / 4x),
* ring vs high-radix switch topologies,
* link signaling energy from 0.54 pJ/b (on-package) to 40 pJ/b (4x on-board),

and reporting speedup, energy, and EDPSE for each design.

Run:  python examples/interconnect_design_space.py
"""

from repro import BandwidthSetting, IntegrationDomain, TopologyKind
from repro import simulate, table_iii_config
from repro.core import EnergyModel, EnergyParams, ScalingPoint
from repro.workloads import build_workload, get_spec

NUM_GPMS = 16
WORKLOAD = "Lulesh-150"   # memory-intensive: sensitive to the network


def run_design(workload, bandwidth, topology, link_pj_per_bit=None):
    config = table_iii_config(
        NUM_GPMS,
        bandwidth,
        domain=IntegrationDomain.ON_BOARD,
        topology=topology,
    )
    result = simulate(workload, config)
    params = EnergyParams.for_config(config)
    if link_pj_per_bit is not None:
        params = params.with_link_energy(link_pj_per_bit)
    energy = EnergyModel(params).total_energy(result.counters, result.seconds)
    return result, energy


def main() -> None:
    workload = build_workload(get_spec(WORKLOAD))

    baseline_config = table_iii_config(1)
    baseline_run = simulate(workload, baseline_config)
    baseline_energy = EnergyModel(
        EnergyParams.for_config(baseline_config)
    ).total_energy(baseline_run.counters, baseline_run.seconds)
    base = ScalingPoint(n=1, delay_s=baseline_run.seconds,
                        energy_j=baseline_energy)
    print(f"{WORKLOAD} on a {NUM_GPMS}-GPM on-board GPU"
          f" (baseline: 1-GPM, {baseline_run.seconds * 1e6:.0f} us)\n")

    print(f"{'design':<28} {'speedup':>8} {'energy':>7} {'EDPSE':>7}")
    print("-" * 55)
    designs = [
        ("ring, 1x-BW", BandwidthSetting.BW_1X, TopologyKind.RING, None),
        ("ring, 2x-BW", BandwidthSetting.BW_2X, TopologyKind.RING, None),
        ("ring, 4x-BW", BandwidthSetting.BW_4X, TopologyKind.RING, None),
        ("switch, 1x-BW", BandwidthSetting.BW_1X, TopologyKind.SWITCH, None),
        ("switch, 2x-BW", BandwidthSetting.BW_2X, TopologyKind.SWITCH, None),
        # The counter-intuitive trade: 4x the pJ/bit for 2x the bandwidth.
        ("ring, 2x-BW @ 40 pJ/b", BandwidthSetting.BW_2X,
         TopologyKind.RING, 40.0),
        ("ring, 1x-BW @ 40 pJ/b", BandwidthSetting.BW_1X,
         TopologyKind.RING, 40.0),
    ]
    for label, bandwidth, topology, pj_bit in designs:
        result, energy = run_design(workload, bandwidth, topology, pj_bit)
        point = ScalingPoint(n=NUM_GPMS, delay_s=result.seconds,
                             energy_j=energy)
        print(f"{label:<28} {point.speedup_over(base):>7.2f}x"
              f" {point.energy_ratio_over(base):>6.2f}x"
              f" {point.edpse_over(base):>6.1f}%")

    print(
        "\nReading the table: quadrupling link *energy* (the 40 pJ/b rows)"
        "\ncosts this traffic-heavy workload a few EDPSE points, while"
        "\ndoubling link *bandwidth* or replacing the ring with a switch"
        "\ngains multiples of that — even paying 40 pJ/b for 2x-BW beats the"
        "\nefficient 1x-BW link. Spend energy on bandwidth, not on shaving"
        "\npJ/bit (Section V-C)."
    )


if __name__ == "__main__":
    main()
