#!/usr/bin/env python3
"""Datacenter upgrade study: is a bigger multi-module GPU worth its energy?

The paper's motivating scenario (Section II): a cloud operator running near
its facility power envelope considers upgrading from a single-module GPU to
an 8x multi-module part.  Time-to-solution improves — but joules-per-solution
may not, and the facility bills joules.

This example evaluates the upgrade across the mixed production workload of
the Table II scaling subset and reports, per workload and in aggregate:
time-to-solution, energy-per-solution, and whether the design clears a 50 %
EDPSE bar (the paper's suggested justification threshold).

Run:  python examples/datacenter_upgrade.py            (takes ~1 minute)
      python examples/datacenter_upgrade.py Stream CoMD   (subset)
"""

import sys

from repro import BandwidthSetting, simulate, table_iii_config
from repro.core import EnergyModel, EnergyParams, ScalingPoint
from repro.units import geomean, mean
from repro.workloads import SCALING_SUBSET, build_workload, get_spec

UPGRADE_GPMS = 8
EDPSE_BAR = 50.0


def evaluate(abbr: str):
    workload = build_workload(get_spec(abbr))
    points = {}
    for n in (1, UPGRADE_GPMS):
        config = table_iii_config(n, BandwidthSetting.BW_2X)
        result = simulate(workload, config)
        energy = EnergyModel(EnergyParams.for_config(config)).total_energy(
            result.counters, result.seconds
        )
        points[n] = ScalingPoint(n=n, delay_s=result.seconds, energy_j=energy)
    return points[1], points[UPGRADE_GPMS]


def main() -> None:
    selection = sys.argv[1:] or list(SCALING_SUBSET)[:6]
    print(f"upgrade study: 1-GPM -> {UPGRADE_GPMS}-GPM (on-package, 2x-BW)")
    print(f"workloads: {', '.join(selection)}\n")
    print(f"{'workload':<12} {'speedup':>8} {'energy':>8} {'EDPSE':>8}  verdict")
    print("-" * 56)

    speedups, energies, efficiencies = [], [], []
    for abbr in selection:
        base, upgraded = evaluate(abbr)
        speedup = upgraded.speedup_over(base)
        energy = upgraded.energy_ratio_over(base)
        efficiency = upgraded.edpse_over(base)
        speedups.append(speedup)
        energies.append(energy)
        efficiencies.append(efficiency)
        verdict = "worth it" if efficiency >= EDPSE_BAR else "NOT worth it"
        print(f"{abbr:<12} {speedup:>7.2f}x {energy:>7.2f}x"
              f" {efficiency:>7.1f}%  {verdict}")

    print("-" * 56)
    print(f"{'aggregate':<12} {geomean(speedups):>7.2f}x"
          f" {mean(energies):>7.2f}x {mean(efficiencies):>7.1f}%")
    print(
        f"\nA fleet admin reading this: every workload above the {EDPSE_BAR:.0f}%"
        "\nbar converts the extra rack power into proportional throughput;"
        "\nworkloads below it burn energy on idle GPMs waiting for remote"
        "\nmemory (Section V-B) — consider the 4x-BW part or a switch fabric"
        "\nbefore scaling out further."
    )


if __name__ == "__main__":
    main()
