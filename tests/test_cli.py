"""CLI surface: argument handling and experiment registry."""

import pytest

from repro.cli import _EXPERIMENTS, main


class TestRegistry:
    def test_every_design_md_experiment_is_registered(self):
        expected = {
            "table1b", "fig2", "fig4", "fig6", "fig7", "fig8", "fig9",
            "fig10", "interconnect-energy", "amortization", "headline",
        }
        assert expected <= set(_EXPERIMENTS)

    def test_extensions_registered(self):
        assert {
            "compression", "locality", "powergate", "edip", "sweetspot",
            "idle",
        } <= set(_EXPERIMENTS)


class TestArguments:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["not-an-experiment"])
        assert excinfo.value.code != 0

    def test_help_shows_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "experiment" in out
        assert "--no-cache" in out

    def test_multiple_experiments_accepted(self, capsys):
        # 'tables' needs no simulation, so running it twice (deduplicated)
        # exercises the multi-experiment path cheaply.
        assert main(["tables", "tables"]) == 0
        out = capsys.readouterr().out
        assert out.count("Table III: simulated multi-module GPU") == 1


class TestDvfsSubcommand:
    def test_sweeps_the_ladder_and_reports_the_spot(self, capsys):
        assert main(["dvfs", "Stream", "--gpms", "2", "--ctas", "16"]) == 0
        out = capsys.readouterr().out
        assert "V/f sweep (edp)" in out
        assert "k40-boost" in out and "(anchor)" in out
        assert "<- sweet spot" in out
        assert "sweet spot:" in out

    def test_governed_flag_prints_decisions(self, capsys):
        assert main(
            ["dvfs", "Stream", "--gpms", "2", "--ctas", "16",
             "--kernels", "2", "--governed"]
        ) == 0
        out = capsys.readouterr().out
        assert "governed run:" in out
        assert "gpm0" in out and "gpm1" in out

    def test_ed2p_metric_accepted(self, capsys):
        assert main(
            ["dvfs", "BPROP", "--gpms", "1", "--ctas", "16",
             "--metric", "ed2p"]
        ) == 0
        assert "V/f sweep (ed2p)" in capsys.readouterr().out

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["dvfs", "NotAWorkload"])
        assert excinfo.value.code != 0

    def test_governor_flag_prints_idle_run(self, capsys):
        assert main(
            ["dvfs", "Stream", "--gpms", "2", "--ctas", "16",
             "--kernels", "2", "--governor", "race-to-idle"]
        ) == 0
        out = capsys.readouterr().out
        assert "idle run (idle[race-to-idle]):" in out
        assert "gated cycles" in out

    def test_infeasible_cap_exits_with_one_line_error(self, capsys):
        # 4 GPMs draw far more than 1 W even at the ladder floor: the CLI
        # must reject the budget up front with a single stderr line and a
        # nonzero exit code, not a traceback after the ladder sweep.
        assert main(
            ["dvfs", "Stream", "--gpms", "4", "--ctas", "16",
             "--cap-watts", "1"]
        ) == 2
        captured = capsys.readouterr()
        assert "infeasible" in captured.err
        assert "Traceback" not in captured.err
        assert captured.err.strip().count("\n") == 0
        assert "V/f sweep" not in captured.out


class TestUnifiedErrorHandling:
    """Every subcommand maps ConfigError to one stderr line + exit 2."""

    @pytest.mark.parametrize(
        ("name", "argv"),
        [
            ("run", ["run", "Stream", "--ctas", "0"]),
            ("trace", ["trace", "Stream", "--ctas", "0"]),
            ("profile", ["profile", "Stream", "--ctas", "0"]),
            ("dvfs", ["dvfs", "Stream", "--ctas", "0"]),
            (
                "dvfs",
                ["dvfs", "Stream", "--gpms", "4", "--ctas", "16",
                 "--cap-watts", "1"],
            ),
            # Malformed idle knobs: each must die in IdleConfig/SleepState
            # validation (or the upfront deadline-feasibility check) before
            # any simulation, through the same one-line guard.
            (
                "dvfs",
                ["dvfs", "Stream", "--gpms", "4", "--ctas", "16",
                 "--entry-latency-cycles", "-5"],
            ),
            (
                "dvfs",
                ["dvfs", "Stream", "--gpms", "4", "--ctas", "16",
                 "--governor", "gate-only", "--residual", "1.5"],
            ),
            (
                "dvfs",
                ["dvfs", "Stream", "--gpms", "4", "--ctas", "16",
                 "--governor", "gate-only",
                 "--exit-latency-cycles", "99999999"],
            ),
            (
                "dvfs",
                # A deadline without the paced governor owns nothing.
                ["dvfs", "Stream", "--gpms", "4", "--ctas", "16",
                 "--deadline-us", "5"],
            ),
            (
                "dvfs",
                # Shorter than the roofline bound at f_max: rejected before
                # the ladder sweep, like an infeasible --cap-watts.
                ["dvfs", "Stream", "--gpms", "4", "--ctas", "16",
                 "--governor", "deadline-paced", "--deadline-us", "0.001"],
            ),
            (
                "dvfs",
                # A cap and a deadline cannot both own the point policy.
                ["dvfs", "Stream", "--gpms", "4", "--ctas", "16",
                 "--cap-watts", "200", "--governor", "deadline-paced",
                 "--deadline-us", "100"],
            ),
            (
                "profile",
                ["profile", "Stream", "--gpms", "4", "--ctas", "16",
                 "--residual", "-0.1"],
            ),
            ("capsweep", ["capsweep", "--quick", "--shards", "0"]),
            ("serve", ["serve", "--shards", "0"]),
            ("serve", ["serve", "--aging-seconds", "0"]),
            (
                "submit",
                # Port 1 is never listening: the client's connection error
                # surfaces through the same guard.
                ["submit", "Stream", "--ctas", "8", "--port", "1"],
            ),
            # Malformed phase/tenant recipes: rejected by eager local
            # admission validation (no server contact, no engine time).
            (
                "submit",
                # Unknown phase name.
                ["submit", "--phases", "refill:8:1", "--port", "1"],
            ),
            (
                "submit",
                # Zero-CTA decode phase.
                ["submit", "--phases", "decode:0:1", "--port", "1"],
            ),
            (
                "submit",
                # Malformed schedule text (missing the ctas field).
                ["submit", "--phases", "decode", "--port", "1"],
            ),
            (
                "submit",
                # Duplicate tenant client ids.
                ["submit", "--phases", "decode:8:1", "--tenants", "a,a",
                 "--port", "1"],
            ),
            (
                "submit",
                # Tenants without a phase schedule own nothing.
                ["submit", "Stream", "--tenants", "a,b", "--port", "1"],
            ),
            (
                "submit",
                # A schedule and a named workload cannot both win.
                ["submit", "Stream", "--phases", "decode:8:1",
                 "--port", "1"],
            ),
            ("figures", ["figures", "--quick", "--shards", "0"]),
            ("sweetspot", ["sweetspot", "--shards", "0"]),
        ],
    )
    def test_config_errors_are_one_line_exit_2(self, capsys, name, argv):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith(f"repro {name}: ")
        assert "Traceback" not in captured.err
        assert captured.err.strip().count("\n") == 0

    def test_serve_and_submit_are_dispatched(self, capsys):
        # --help exits 0 through argparse, proving the subcommands exist.
        for name in ("serve", "submit", "idlestudy", "figures"):
            with pytest.raises(SystemExit) as excinfo:
                main([name, "--help"])
            assert excinfo.value.code == 0
            assert f"repro {name}" in capsys.readouterr().out


class TestProfileSubcommand:
    def test_profile_reports_per_gpm_energy(self, capsys):
        assert main(["profile", "Stream", "--gpms", "2", "--ctas", "16"]) == 0
        out = capsys.readouterr().out
        assert "energy" in out
        assert "core scale" in out
        # One attribution row per GPM.
        assert len([
            line for line in out.splitlines()
            if line.strip().startswith(("0 ", "1 "))
        ]) >= 2
