"""Bidirectional ring topology: routing, congestion, accounting."""

import pytest

from repro.errors import ConfigError
from repro.interconnect.ring import RingTopology
from repro.sim.engine import Engine
from repro.units import gbps_to_bytes_per_cycle


def make_ring(num_gpms=8, bw=256.0, latency=10.0):
    return RingTopology(
        Engine(),
        num_gpms,
        per_gpm_bandwidth_gbps=bw,
        link_latency_cycles=latency,
        energy_pj_per_bit=0.54,
    )


class TestRouting:
    def test_hop_counts_shortest_path(self):
        ring = make_ring(8)
        assert ring.hop_count(0, 1) == 1
        assert ring.hop_count(0, 7) == 1      # wraps counter-clockwise
        assert ring.hop_count(0, 4) == 4      # diameter
        assert ring.hop_count(2, 6) == 4
        assert ring.hop_count(6, 2) == 4

    def test_route_length_matches_hop_count(self):
        ring = make_ring(8)
        for src in range(8):
            for dst in range(8):
                if src == dst:
                    continue
                links, switch = ring.route(src, dst)
                assert len(links) == ring.hop_count(src, dst)
                assert switch == 0

    def test_route_is_connected(self):
        ring = make_ring(6)
        links, _ = ring.route(1, 4)
        # consecutive links share endpoints
        for first, second in zip(links, links[1:]):
            assert first.dst == second.src

    def test_link_count(self):
        ring = make_ring(8)
        assert len(ring.links()) == 16  # N clockwise + N counter-clockwise

    def test_per_gpm_bandwidth_split(self):
        ring = make_ring(4, bw=256.0)
        for link in ring.links():
            assert link.config.bandwidth_gbps == pytest.approx(128.0)


class TestTransfers:
    def test_transfer_accounting(self):
        ring = make_ring(8)
        result = ring.transfer(0, 4, 1024)
        assert result.hops == 4
        assert ring.traffic.messages == 1
        assert ring.traffic.bytes_injected == 1024
        assert ring.traffic.byte_hops == 4096

    def test_transfer_latency_scales_with_hops(self):
        rate = gbps_to_bytes_per_cycle(128.0)
        ring = make_ring(8, latency=10.0)
        near = ring.transfer(0, 1, 128)
        far = ring.transfer(2, 6, 128)   # disjoint links: no queueing
        assert near.hops == 1 and far.hops == 4
        assert near.completion_time == pytest.approx(128 / rate + 10.0)
        assert far.completion_time == pytest.approx(128 / rate + 40.0)

    def test_congestion_on_shared_link(self):
        ring = make_ring(4, bw=256.0)
        rate = gbps_to_bytes_per_cycle(128.0)
        first = ring.transfer(0, 1, 10_000)
        second = ring.transfer(0, 1, 10_000)
        assert second.completion_time - first.completion_time == pytest.approx(
            10_000 / rate
        )

    def test_opposite_directions_do_not_contend(self):
        ring = make_ring(4)
        forward = ring.transfer(0, 1, 100_000)
        backward = ring.transfer(1, 0, 100_000)
        assert backward.completion_time == pytest.approx(forward.completion_time)

    def test_self_transfer_rejected(self):
        ring = make_ring(4)
        with pytest.raises(ConfigError):
            ring.transfer(2, 2, 128)

    def test_out_of_range_rejected(self):
        ring = make_ring(4)
        with pytest.raises(ConfigError):
            ring.transfer(0, 4, 128)

    def test_bottleneck_utilization(self):
        ring = make_ring(4)
        ring.transfer(0, 1, 100_000)
        assert ring.max_utilization(elapsed=1.0) == 1.0


class TestValidation:
    def test_needs_two_gpms(self):
        with pytest.raises(ConfigError):
            make_ring(1)

    def test_needs_positive_bandwidth(self):
        with pytest.raises(ConfigError):
            make_ring(4, bw=0.0)
